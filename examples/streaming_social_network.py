#!/usr/bin/env python3
"""Streaming influence tracking on a temporal interaction network.

The paper's motivation (Section 1): when bursts of interactions arrive,
core numbers must be updated fast enough to keep up with the stream —
e.g. to spot emerging dense communities spreading (mis)information.

This example replays a synthetic temporal stream (the stand-in for the
KONECT DBLP/Flickr/StackOverflow graphs) in windows:

* each window's edges are applied as one parallel batch (OurI);
* a sliding expiry removes interactions older than the retention horizon
  (OurR), so the "dense core" tracks *recent* activity;
* after every window we report the k-core influencer set (vertices at the
  current max core) and how it shifts.

Run:  python examples/streaming_social_network.py
"""

import os
from collections import deque

from repro import DynamicGraph, ParallelOrderMaintainer, temporal_stream

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
WINDOW = 150 if _QUICK else 400          # edges applied per batch
RETENTION = 4 if _QUICK else 8           # windows kept before expiry
WORKERS = 8
STREAM_LEN = 900 if _QUICK else 6000


def top_core_vertices(maintainer, limit=8):
    cores = maintainer.cores()
    kmax = max(cores.values())
    members = sorted(u for u, k in cores.items() if k == kmax)
    return kmax, members[:limit], len(members)


def main() -> None:
    stream = temporal_stream(n=1500, m=STREAM_LEN, seed=42, burst=0.45)
    maintainer = ParallelOrderMaintainer(DynamicGraph(), num_workers=WORKERS)
    live_windows: deque = deque()

    print(f"replaying {len(stream)} interactions in windows of {WINDOW}\n")
    total_insert_time = 0.0
    total_remove_time = 0.0
    for start in range(0, len(stream) - WINDOW + 1, WINDOW):
        window = stream[start : start + WINDOW]
        batch = [
            (u, v)
            for u, v, _t in window
            if not maintainer.graph.has_edge(u, v)
        ]
        res = maintainer.insert_edges(batch)
        total_insert_time += res.makespan
        live_windows.append(batch)

        # expire the oldest window beyond the retention horizon
        if len(live_windows) > RETENTION:
            expired = live_windows.popleft()
            gone = [e for e in expired if maintainer.graph.has_edge(*e)]
            res_rm = maintainer.remove_edges(gone)
            total_remove_time += res_rm.makespan

        kmax, sample, size = top_core_vertices(maintainer)
        print(
            f"t={start + WINDOW:>5}: graph m={maintainer.graph.num_edges:>5}  "
            f"max-core k={kmax:>2}  core size={size:>4}  sample={sample}"
        )

    maintainer.check()
    print("\nfinal state verified against a fresh decomposition")
    print(
        f"simulated parallel time: insert={total_insert_time:.0f}, "
        f"expire={total_remove_time:.0f} work units with {WORKERS} workers"
    )


if __name__ == "__main__":
    main()
