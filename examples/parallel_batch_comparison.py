#!/usr/bin/env python3
"""Head-to-head: OurI/OurR vs the prior parallel methods (JEI/JER, MI/MR).

Reproduces, at example scale, the paper's central comparison (Figure 4 /
Table 2): on a graph where every vertex has the same core number (the BA
stand-in), the level-parallel baselines collapse to sequential execution
while Parallel-Order keeps scaling.

Run:  python examples/parallel_batch_comparison.py [dataset]
      (dataset defaults to "BA"; try "RMAT" or "roadNet-CA")
"""

import sys

from repro import (
    DynamicGraph,
    JoinEdgeSetMaintainer,
    MatchingMaintainer,
    ParallelOrderMaintainer,
    load_dataset,
)
from repro.bench.workloads import dataset_workload
from repro.bench.reporting import render_series

ALGOS = {
    "Our": ParallelOrderMaintainer,
    "JE": JoinEdgeSetMaintainer,
    "M": MatchingMaintainer,
}
import os

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
WORKER_COUNTS = (1, 4) if _QUICK else (1, 2, 4, 8, 16)
BATCH = 150 if _QUICK else 600


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "BA"
    edges, batch = dataset_workload(dataset, BATCH, seed=0)
    print(
        f"dataset {dataset}: m={len(edges)} edges, batch={len(batch)} "
        f"(removed then re-inserted, as in the paper)\n"
    )

    insert_series = {}
    remove_series = {}
    for name, cls in ALGOS.items():
        ins, rem = {}, {}
        for p in WORKER_COUNTS:
            m = cls(DynamicGraph(edges), num_workers=p)
            rem[p] = m.remove_edges(batch).makespan
            ins[p] = m.insert_edges(batch).makespan
            m.check()
        insert_series[name + "I"] = ins
        remove_series[name + "R"] = rem

    print("insertion time (work units) by worker count:")
    print(render_series(insert_series, title="algo \\ P"))
    print("\nremoval time (work units) by worker count:")
    print(render_series(remove_series, title="algo \\ P"))

    p_hi = WORKER_COUNTS[-1]
    oi = insert_series["OurI"]
    je = insert_series["JEI"]
    print(
        f"\nOurI speedup 1->{p_hi} workers: {oi[1] / oi[p_hi]:.1f}x   "
        f"JEI speedup: {je[1] / je[p_hi]:.1f}x"
    )
    print(
        f"OurI vs JEI at {p_hi} workers: {je[p_hi] / oi[p_hi]:.1f}x faster"
    )
    if dataset == "BA":
        print(
            "\n(BA has a single core value, so JEI/MI cannot parallelize "
            "at all — the paper's 289x headline case)"
        )


if __name__ == "__main__":
    main()
