#!/usr/bin/env python3
"""Super-spreader monitoring on a dynamic contact network.

k-core shells identify super-spreaders better than raw degree (Kitsak et
al.; cited context of the paper's intro: "urgently address new pandemic
super-spreading events").  This example simulates a contact network under
an intervention policy:

1. build a contact graph and find the innermost core (the likely
   super-spreading set);
2. repeatedly apply an *intervention batch* — removing contact edges
   around the densest shell (quarantine) — with OurR, and a *reopening
   batch* re-adding a sample of old contacts with OurI;
3. watch the max-core shrink under intervention and recover on reopening,
   with core numbers maintained incrementally the whole time.

Run:  python examples/contagion_monitoring.py
"""

import os
import random

from repro import DynamicGraph, ParallelOrderMaintainer, erdos_renyi

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
_N = 800 if _QUICK else 3000
_M = 1600 if _QUICK else 6000


def contact_network(seed: int = 13):
    """Sparse background contacts + one planted dense gathering."""
    rng = random.Random(seed)
    edges = set(erdos_renyi(_N, _M, seed=seed))
    hotspot = rng.sample(range(_N), 50)
    for i, u in enumerate(hotspot):
        for v in hotspot[i + 1 :]:
            if rng.random() < 0.45:
                edges.add((u, v) if u < v else (v, u))
    return sorted(edges)


def innermost_shell(m):
    cores = m.cores()
    kmax = max(cores.values())
    return kmax, [u for u, k in cores.items() if k == kmax]


def main() -> None:
    rng = random.Random(13)
    edges = contact_network(seed=13)
    m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=8)

    kmax, shell = innermost_shell(m)
    print(f"contact graph: m={m.graph.num_edges}, innermost core k={kmax}, "
          f"|shell|={len(shell)}")

    removed_log = []
    for round_no in range(1, 6):
        # --- intervention: cut contacts incident to the densest shell ---
        kmax, shell = innermost_shell(m)
        shell_set = set(shell)
        candidates = sorted(
            {
                (u, v) if u < v else (v, u)
                for u in shell_set
                for v in m.graph.neighbors(u)
            }
        )
        rng.shuffle(candidates)
        batch = candidates[: min(400, len(candidates))]
        res = m.remove_edges(batch)
        removed_log.extend(batch)
        k_after, shell_after = innermost_shell(m)
        print(
            f"round {round_no}: quarantined {len(batch):>3} contacts "
            f"(sim time {res.makespan:>8.0f})  k: {kmax} -> {k_after}, "
            f"shell size {len(shell)} -> {len(shell_after)}"
        )

    # --- reopening: restore a sample of removed contacts ----------------
    rng.shuffle(removed_log)
    reopen = [e for e in removed_log[: len(removed_log) // 2]
              if not m.graph.has_edge(*e)]
    res = m.insert_edges(reopen)
    k_final, shell_final = innermost_shell(m)
    print(
        f"\nreopening restored {len(reopen)} contacts "
        f"(sim time {res.makespan:.0f}): k={k_final}, |shell|={len(shell_final)}"
    )
    m.check()
    print("maintained cores verified against a fresh decomposition")


if __name__ == "__main__":
    main()
