#!/usr/bin/env python3
"""Quickstart: maintain core numbers while a graph changes.

Builds a small social-style graph, computes the core decomposition, then
keeps core numbers current through edge insertions and removals with the
sequential Order maintainer (OI/OR) — and shows a parallel batch with
OurI/OurR on the simulated multicore.

Run:  python examples/quickstart.py
"""

from repro import (
    DynamicGraph,
    OrderMaintainer,
    ParallelOrderMaintainer,
    core_decomposition,
    powerlaw_cluster,
)


def main() -> None:
    # --- 1. build a graph and decompose it ----------------------------
    import os

    quick = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
    edges = powerlaw_cluster(n=600 if quick else 2000, k=4, p_triangle=0.4, seed=7)
    graph = DynamicGraph(edges)
    decomp = core_decomposition(graph)
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")
    print(f"max core number: {decomp.max_core}")
    print(f"core histogram (core -> #vertices): {decomp.histogram()}")

    # --- 2. single-edge maintenance (the Order algorithm) --------------
    m = OrderMaintainer(graph)
    u, v = 0, 1999
    if not graph.has_edge(u, v):
        stats = m.insert_edge(u, v)
        print(f"\ninserted ({u},{v}): {len(stats.v_star)} vertices changed core")
    hub = max(graph.vertices(), key=graph.degree)
    nbr = next(iter(graph.neighbors(hub)))
    stats = m.remove_edge(hub, nbr)
    print(f"removed ({hub},{nbr}): {len(stats.v_star)} vertices changed core")
    m.check()  # differential check vs. from-scratch BZ
    print("invariants verified against a fresh decomposition")

    # --- 3. a parallel batch on the simulated multicore ----------------
    batch = edges[-200:] if quick else edges[-500:]
    for workers in (1, 4, 16):
        pm = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=workers)
        t_rm = pm.remove_edges(batch).makespan
        t_in = pm.insert_edges(batch).makespan
        print(
            f"P={workers:2d}: remove batch {t_rm:>10.0f} work-units, "
            f"insert batch {t_in:>10.0f} work-units"
        )
    print("\n(1-worker time == sequential OI/OR; the drop with P is the "
          "parallel speedup of the paper's OurI/OurR)")


if __name__ == "__main__":
    main()
