#!/usr/bin/env python3
"""Weighted cores on a transaction network (the paper's finance use case).

k-core robustness analysis of financial networks (Burleson-Lesser et al.,
cited in the paper's intro) weighs links by exposure, not mere existence.
This example maintains *weighted* core numbers — the extension the paper's
conclusion proposes — over a synthetic interbank-exposure network:

1. build a network whose edge weights model exposure sizes;
2. identify the systemically dense core (top weighted-core institutions);
3. stream exposure changes (new deals / unwinds) through the incremental
   maintainer, watching the core set respond — including multi-level
   jumps from single heavy edges, the weighted case's hallmark.

Run:  python examples/weighted_transactions.py
"""

import os
import random

from repro.weighted import WeightedCoreMaintainer, WeightedDynamicGraph

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
N_BANKS = 80 if _QUICK else 300
N_DEALS = 120 if _QUICK else 600
SEED = 99


def exposure_network(rng: random.Random):
    """Tiered interbank network: a dense money-center tier with heavy
    mutual exposures, a regional tier, and a periphery."""
    centers = list(range(10))
    regionals = list(range(10, N_BANKS // 3))
    periphery = list(range(N_BANKS // 3, N_BANKS))
    edges = []
    seen = set()

    def add(u, v, w):
        if u != v and (min(u, v), max(u, v)) not in seen:
            seen.add((min(u, v), max(u, v)))
            edges.append((u, v, w))

    for i, u in enumerate(centers):
        for v in centers[i + 1 :]:
            add(u, v, rng.randint(5, 9))
    for u in regionals:
        for v in rng.sample(centers, 3):
            add(u, v, rng.randint(2, 6))
        for v in rng.sample(regionals, 2):
            add(u, v, rng.randint(1, 4))
    for u in periphery:
        for v in rng.sample(regionals, 2):
            add(u, v, rng.randint(1, 3))
    return edges


def top_tier(m, limit=6):
    cores = m.cores()
    kmax = max(cores.values())
    tier = sorted(u for u, c in cores.items() if c == kmax)
    return kmax, tier[:limit], len(tier)


def main() -> None:
    rng = random.Random(SEED)
    g = WeightedDynamicGraph(exposure_network(rng))
    m = WeightedCoreMaintainer(g)
    kmax, tier, size = top_tier(m)
    print(f"exposure network: n={g.num_vertices}, m={g.num_edges}")
    print(f"systemic core: weighted-k={kmax}, members={size}, sample={tier}\n")

    banks = list(g.vertices())
    jumps = 0
    for deal in range(N_DEALS):
        if rng.random() < 0.55 or g.num_edges < 50:
            u, v = rng.sample(banks, 2)
            if g.has_edge(u, v):
                continue
            w = rng.choice([1, 1, 2, 3, 8])  # occasional jumbo deal
            before = m.core(u)
            m.insert_edge(u, v, w)
            if m.core(u) - before > 1:
                jumps += 1
        else:
            all_edges = list(g.edges())
            u, v, _w = all_edges[rng.randrange(len(all_edges))]
            m.remove_edge(u, v)
        if (deal + 1) % (N_DEALS // 5) == 0:
            kmax, tier, size = top_tier(m)
            print(
                f"after {deal + 1:>4} deals: weighted-k={kmax:>3}  "
                f"core size={size:>3}  sample={tier}"
            )

    m.check()
    print(f"\n{jumps} deals moved a bank's core by more than one level "
          "(the weighted case's multi-level jumps)")
    print("weighted cores verified against a full recomputation")


if __name__ == "__main__":
    main()
