#!/usr/bin/env python
"""Coverage regression gate for the serving + parallel layers.

Runs the fault/service/parallel test slice under a line tracer and
fails (exit 1) if statement coverage of ``repro.service`` or
``repro.parallel`` drops more than ``--slack`` percentage points below
the committed baseline (``COVERAGE_BASELINE.json``).

The collector is deliberately dependency-free: a ``sys.settrace`` hook
restricted to the two target packages plus an AST statement count for
the denominator.  That makes the number identical in every environment
(the hermetic CI container has no ``coverage`` package), at the price of
being a *statement* metric, not branch coverage — fine for a ratchet.

Usage::

    python scripts/coverage_gate.py            # gate against baseline
    python scripts/coverage_gate.py --update   # re-record the baseline
    python scripts/coverage_gate.py --report   # per-module table only
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
BASELINE_PATH = os.path.join(ROOT, "COVERAGE_BASELINE.json")

#: the packages the gate protects (ISSUE: service durability + the
#: parallel maintenance core under it)
TARGETS = {
    "repro.service": os.path.join(SRC, "repro", "service"),
    "repro.parallel": os.path.join(SRC, "repro", "parallel"),
    "repro.analysis": os.path.join(SRC, "repro", "analysis"),
    "repro.replication": os.path.join(SRC, "repro", "replication"),
}

#: the deterministic test slice that drives the targets — a fixed list,
#: so the percentage means the same thing in every run
GATE_TESTS = [
    "tests/test_engine_recovery.py",
    "tests/test_sharding.py",
    "tests/test_sharding_recovery.py",
    "tests/test_process_backend.py",
    "tests/test_replication.py",
    "tests/test_faults_determinism.py",
    "tests/test_faults_differential.py",
    "tests/test_service_engine.py",
    "tests/test_service_batcher.py",
    "tests/test_service_snapshots.py",
    "tests/test_service_differential.py",
    "tests/test_queryplane.py",
    "tests/test_traffic_window.py",
    "tests/test_traffic_stateful.py",
    "tests/test_traffic_differential.py",
    "tests/test_stream.py",
    "tests/test_parallel_insert.py",
    "tests/test_parallel_remove.py",
    "tests/test_parallel_differential.py",
    "tests/test_parallel_om.py",
    "tests/test_scheduling.py",
    "tests/test_sim_runtime.py",
    "tests/test_sim_machine_edges.py",
    "tests/test_threads.py",
    "tests/test_locks_load_bearing.py",
    "tests/test_analysis_lint.py",
    "tests/test_analysis_races.py",
    "tests/test_static_framework.py",
    "tests/test_static_mutants.py",
]


def executable_lines(path: str) -> set:
    """Line numbers of executable statements, approximated from the AST.

    Docstring-expression statements are excluded; ``def``/``class``
    headers count (they execute at import).  The approximation only has
    to be *stable*, since baseline and gate use the same function.
    """
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    lines = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            continue  # docstring
        lines.add(node.lineno)
    return lines


def collect(pytest_args):
    """Run pytest under a targets-only line tracer.

    Returns ``(exit_code, {abspath: covered_line_set})``.
    """
    prefixes = tuple(os.path.join(p, "") for p in TARGETS.values())
    covered = {}
    #: code objects whose every line has been seen — stop tracing them,
    #: which removes the per-line overhead from hot loops after warm-up
    saturated = set()
    wanted = {}

    def local_factory(code, lines):
        want = wanted.get(code)
        if want is None:
            want = wanted[code] = {
                ln for _s, _e, ln in code.co_lines() if ln is not None
            }

        def local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
                if want <= lines:
                    saturated.add(code)
                    return None
            return local
        return local

    def tracer(frame, event, arg):
        code = frame.f_code
        if code in saturated:
            return None
        fn = code.co_filename
        if not fn.startswith(prefixes):
            return None
        lines = covered.setdefault(fn, set())
        lines.add(frame.f_lineno)
        return local_factory(code, lines)

    import pytest

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        rc = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return rc, covered


def measure(covered):
    """Fold the trace into ``{package: {percent, covered, executable}}``."""
    out = {}
    for pkg, pkg_dir in TARGETS.items():
        total = hit = 0
        modules = {}
        for dirpath, _dirnames, filenames in os.walk(pkg_dir):
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                exe = executable_lines(path)
                got = covered.get(path, set()) & exe
                total += len(exe)
                hit += len(got)
                rel = os.path.relpath(path, SRC)
                modules[rel] = round(100.0 * len(got) / len(exe), 1) if exe else 100.0
        out[pkg] = {
            "percent": round(100.0 * hit / total, 2) if total else 100.0,
            "covered": hit,
            "executable": total,
            "modules": modules,
        }
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--update", action="store_true",
                    help="re-record COVERAGE_BASELINE.json instead of gating")
    ap.add_argument("--report", action="store_true",
                    help="print the per-module table and exit 0")
    ap.add_argument("--slack", type=float, default=2.0,
                    help="allowed drop in percentage points (default 2.0)")
    ap.add_argument("pytest_args", nargs="*",
                    help="extra pytest args appended to the gate slice")
    args = ap.parse_args(argv)

    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    os.chdir(ROOT)
    pytest_args = ["-q", "-p", "no:cacheprovider", *GATE_TESTS,
                   *args.pytest_args]
    rc, covered = collect(pytest_args)
    if rc != 0:
        print(f"coverage gate: test run failed (pytest exit {rc})")
        return int(rc) or 1
    result = measure(covered)

    for pkg, cell in result.items():
        print(f"{pkg}: {cell['percent']}% "
              f"({cell['covered']}/{cell['executable']} statements)")
        if args.report:
            for mod, pct in sorted(cell["modules"].items()):
                print(f"    {pct:6.1f}%  {mod}")
    if args.report:
        return 0

    if args.update:
        slim = {
            pkg: {k: v for k, v in cell.items() if k != "modules"}
            for pkg, cell in result.items()
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(slim, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {os.path.relpath(BASELINE_PATH, ROOT)}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print("no COVERAGE_BASELINE.json — run with --update first")
        return 1
    with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failed = False
    for pkg, cell in result.items():
        floor = baseline.get(pkg, {}).get("percent", 0.0) - args.slack
        verdict = "ok" if cell["percent"] >= floor else "REGRESSED"
        print(f"{pkg}: {cell['percent']}% vs baseline "
              f"{baseline.get(pkg, {}).get('percent', '?')}% "
              f"(floor {floor:.2f}%) -> {verdict}")
        failed |= verdict != "ok"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
