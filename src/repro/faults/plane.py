"""Deterministic fault-injection plane.

The serving engine's correctness story (k-order locking, conditional
locks, the ``V+`` search set) is exercised by the rest of the suite only
on *clean* executions.  This module makes failures first-class: a
:class:`FaultPlane` watches every event a worker yields to an execution
backend (:class:`~repro.parallel.runtime.SimMachine` or
:class:`~repro.parallel.threads.ThreadMachine`) and deterministically
decides whether to inject one of three faults at that point:

``crash``
    The worker dies on the spot — mid-edge, possibly holding locks.  The
    backend force-releases its locks (the simulated runtime's analogue of
    robust-mutex recovery) and lets the survivors run on; shared state
    may now be arbitrarily corrupted, which is exactly what the serving
    engine's journal/replay layer (:mod:`repro.service.journal`) has to
    survive.

``stall``
    The worker is descheduled for a burst of simulated time (GC pause,
    preemption, page fault).  Stalls perturb timing but never
    correctness — differential tests assert cores are unchanged under
    stall-only schedules.

``acquire-timeout``
    A ``("try", key)`` CAS is forced to fail even if the lock is free
    (lock-service timeout).  The paper's protocol already tolerates
    failed CAS attempts, so timeouts must never change results either.

Determinism
-----------
Decisions are a pure integer hash of ``(seed, worker, n, kind)`` where
``n`` is the worker's own event counter.  Two consequences, both load-
bearing:

* the same seed reproduces the same fault schedule byte-for-byte
  (:meth:`FaultPlane.schedule_bytes` / :meth:`digest` — the determinism
  regression test), and
* the schedule does not depend on the *global* interleaving, so the
  thread backend — where interleavings are genuinely nondeterministic —
  injects the same per-worker faults as the simulator.

The only global state is the crash budget (``max_crashes``), consumed in
arrival order; under threads it is guarded by the plane's mutex.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FaultSpec",
    "FaultPlane",
    "FaultEvent",
    "WorkerCrashed",
    "BatchCrashed",
    "CRASH",
    "STALL",
    "TIMEOUT",
]

CRASH = "crash"
STALL = "stall"
TIMEOUT = "acquire-timeout"

#: event kinds a crash may be injected at (any point that costs time —
#: the worker is "between instructions")
_CRASHABLE = ("tick", "try", "release", "spin")
#: event kinds a stall may be injected at
_STALLABLE = ("tick", "spin")

_MASK = (1 << 64) - 1


def _mix(*parts: int) -> int:
    """SplitMix64-style avalanche over a tuple of ints — a stable,
    platform-independent hash (``hash()`` is salted per process, which
    would break cross-run determinism)."""
    h = 0x9E3779B97F4A7C15
    for p in parts:
        h = (h ^ (p & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK
        h ^= h >> 31
    return h


def _unit(*parts: int) -> float:
    """Deterministic uniform draw in [0, 1) from the hash stream."""
    return _mix(*parts) / float(1 << 64)


class WorkerCrashed(RuntimeError):
    """Injected into a worker generator to kill it mid-operation."""


class BatchCrashed(RuntimeError):
    """A parallel batch lost at least one worker to an injected crash.

    The maintainer's shared state must be considered corrupt: the dead
    worker may have been mid-splice.  Raised by the batch facades so the
    serving engine can discard the state and re-run recovery from the
    journal.  ``report`` carries the partial
    :class:`~repro.parallel.runtime.SimReport` (or
    :class:`~repro.parallel.threads.ThreadReport`) of the doomed run.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class FaultSpec:
    """Rates and shape of the fault schedule.

    Rates are per *candidate event* (every event for crashes, ``try``
    events for timeouts, ``tick``/``spin`` for stalls) and are evaluated
    independently.  ``max_crashes`` caps total injected crashes — the
    chaos workloads set it to ~10% of the worker pool so every batch
    keeps a quorum of survivors.  ``stall_ticks`` is the length of one
    injected stall in ``spin``-cost units.
    """

    crash_rate: float = 0.0
    stall_rate: float = 0.0
    timeout_rate: float = 0.0
    stall_ticks: int = 8
    max_crashes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "stall_rate", "timeout_rate"):
            r = getattr(self, name)
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {r}")
        if self.stall_ticks < 1:
            raise ValueError("stall_ticks must be >= 1")
        if self.max_crashes is not None and self.max_crashes < 0:
            raise ValueError("max_crashes must be >= 0 or None")

    @property
    def active(self) -> bool:
        return bool(self.crash_rate or self.stall_rate or self.timeout_rate)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the plane's schedule."""

    worker: int
    index: int        # the worker's own event counter at injection
    event: str        # the yielded event kind ("tick", "try", ...)
    action: str       # CRASH / STALL / TIMEOUT
    run: int          # which machine run (batch) the fault landed in


class FaultPlane:
    """Seeded decision oracle shared by one engine (or one test).

    The plane is long-lived: per-worker event counters keep advancing
    across batches, so a retried batch sees *fresh* draws — a crashed
    batch does not deterministically crash again on retry.  ``begin_run``
    is called by a machine at the start of each run and bumps the run
    counter used both for schedule attribution and to give each run its
    own hash stream.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        if isinstance(spec, FaultPlane):  # pragma: no cover - defensive
            raise TypeError("FaultPlane given where FaultSpec expected")
        self.spec = spec
        self.seed = seed
        self.events: List[FaultEvent] = []
        self.crashes = 0
        self.stalls = 0
        self.timeouts = 0
        self.run = 0
        self._counters: Dict[int, int] = {}
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Mark the start of one machine run (one parallel batch)."""
        self.run += 1
        self._counters = {}

    def decide(self, wid: int, kind: str) -> Optional[Tuple[str, int]]:
        """Decision for worker ``wid``'s next event of ``kind``.

        Returns ``None`` (no fault), ``(CRASH, 0)``, ``(STALL, ticks)``
        or ``(TIMEOUT, 0)``.  Thread-safe; deterministic per
        ``(seed, run, wid, per-worker index, kind)``.
        """
        spec = self.spec
        n = self._counters.get(wid, 0)
        self._counters[wid] = n + 1
        base = (self.seed, self.run, wid, n)
        if (
            spec.crash_rate
            and kind in _CRASHABLE
            and _unit(1, *base) < spec.crash_rate
        ):
            with self._mutex:
                budget = (
                    spec.max_crashes is None or self.crashes < spec.max_crashes
                )
                if budget:
                    self.crashes += 1
                    self._record(wid, n, kind, CRASH)
                    return (CRASH, 0)
        if spec.timeout_rate and kind == "try" and _unit(2, *base) < spec.timeout_rate:
            with self._mutex:
                self.timeouts += 1
                self._record(wid, n, kind, TIMEOUT)
            return (TIMEOUT, 0)
        if spec.stall_rate and kind in _STALLABLE and _unit(3, *base) < spec.stall_rate:
            with self._mutex:
                self.stalls += 1
                self._record(wid, n, kind, STALL)
            return (STALL, spec.stall_ticks)
        return None

    def _record(self, wid: int, n: int, kind: str, action: str) -> None:
        self.events.append(
            FaultEvent(worker=wid, index=n, event=kind, action=action, run=self.run)
        )

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes,
            "stalls": self.stalls,
            "timeouts": self.timeouts,
            "events": len(self.events),
        }

    def schedule(self) -> List[Dict[str, object]]:
        """The injected-fault schedule as plain dicts (stable field order)."""
        return [
            {
                "run": e.run,
                "worker": e.worker,
                "index": e.index,
                "event": e.event,
                "action": e.action,
            }
            for e in self.events
        ]

    def schedule_bytes(self) -> bytes:
        """Canonical byte encoding of the schedule — two runs with the
        same seed over the same workload must produce *identical* bytes
        (the determinism regression test diffs these directly)."""
        return b"\n".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")).encode()
            for row in self.schedule()
        )

    def digest(self) -> str:
        """SHA-256 of :meth:`schedule_bytes`."""
        return hashlib.sha256(self.schedule_bytes()).hexdigest()


def as_plane(faults, seed: int = 0) -> Optional[FaultPlane]:
    """Coerce a config value — ``None`` | :class:`FaultSpec` |
    :class:`FaultPlane` — into a plane (or ``None``)."""
    if faults is None:
        return None
    if isinstance(faults, FaultPlane):
        return faults
    if isinstance(faults, FaultSpec):
        return FaultPlane(faults, seed=seed) if faults.active else None
    raise TypeError(f"faults must be FaultSpec or FaultPlane, got {faults!r}")


#: salt separating each shard's derived hash stream (docs/sharding.md)
SHARD_SALT = 0x5AA5D1CE
#: salt for the router's own 2PC crash-window plane
ROUTER_SALT = 0x2FA5E7E1


def derive_plane(faults, member: int, seed: int = 0,
                 salt: int = SHARD_SALT) -> Optional[FaultPlane]:
    """An independently-seeded plane for one member of a sharded engine.

    Each shard worker (and the router itself, with ``ROUTER_SALT``)
    must draw from its *own* deterministic stream: sharing one plane
    would make shard A's injections depend on how many events shard B
    happened to process first — interleaving-dependent, so no longer
    reproducible.  Mixing ``(salt, member)`` into the seed keeps every
    member's schedule a pure function of ``(spec, seed, member)``.

    Accepts the same values as :func:`as_plane`; a ``FaultPlane`` input
    contributes its spec and seed (the per-member plane is always a
    fresh object — planes hold per-run counters that must not be
    shared across processes).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlane):
        spec, base = faults.spec, faults.seed
    elif isinstance(faults, FaultSpec):
        spec, base = faults, seed
    else:
        raise TypeError(
            f"faults must be FaultSpec or FaultPlane, got {faults!r}"
        )
    if not spec.active:
        return None
    return FaultPlane(spec, seed=base ^ _mix(salt, member))
