"""Deterministic fault injection + crash-recovery support.

``repro.faults`` is the failure plane of the reproduction: a seeded
:class:`FaultPlane` injects ``crash`` / ``stall`` / ``acquire-timeout``
events into both execution backends, and :class:`BatchCrashed` is the
signal the serving engine's WAL/replay layer recovers from.  See
``docs/faults.md`` for the taxonomy and the recovery protocol.
"""

from repro.faults.plane import (
    CRASH,
    STALL,
    TIMEOUT,
    BatchCrashed,
    FaultEvent,
    FaultPlane,
    FaultSpec,
    ROUTER_SALT,
    SHARD_SALT,
    WorkerCrashed,
    as_plane,
    derive_plane,
)

__all__ = [
    "CRASH",
    "STALL",
    "TIMEOUT",
    "BatchCrashed",
    "FaultEvent",
    "FaultPlane",
    "FaultSpec",
    "ROUTER_SALT",
    "SHARD_SALT",
    "WorkerCrashed",
    "as_plane",
    "derive_plane",
]
