"""k-order bookkeeping shared by all order-based maintenance algorithms.

The k-order (Definition 3.5) is the total order ``O = O_0 O_1 O_2 ...``
over all vertices: vertices with smaller core numbers first, and within one
core value ``k`` the segment ``O_k`` is a valid BZ peeling order.

The whole order lives in **one** OM list (as in the paper, where
``Order(x, y)`` is a pure label comparison), with a permanent *anchor item*
at the head of every segment::

    [anchor_0] v v v [anchor_1] v v [anchor_2] ...

Anchors make "insert at the head of O_{K+1}" and "append at the tail of
O_{K-1}" plain ``insert_after`` calls, and — crucially for the parallel
algorithms — they keep ``precedes`` a label-only comparison that never
reads core numbers, so a concurrent core update cannot tear an order
comparison in half (the paper's Algorithm 4 protocol covers the labels;
core values are read separately under their own rules).

:class:`KOrder` also owns the authoritative ``core`` map; the maintenance
algorithms read and write core numbers through it so order and cores
cannot drift apart.  Orienting each edge from the earlier to the later
endpoint yields the DAG of Section 3.1; ``post``/``pre`` are computed on
the fly from adjacency plus order (the paper stores no explicit DAG
either).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.storage import make_vertex_map, raw_get, raw_map
from repro.om.list_labels import OMItem
from repro.om.parallel_om import ParallelOMList

Vertex = Hashable

__all__ = ["KOrder"]


class _Anchor:
    """Payload marking the permanent head-of-segment items."""

    __slots__ = ("k",)

    def __init__(self, k: int) -> None:
        self.k = k

    def __repr__(self) -> str:  # pragma: no cover
        return f"<anchor O_{self.k}>"


class KOrder:
    """Single-list k-order with per-core anchors + authoritative core map."""

    __slots__ = ("om", "core", "items", "anchors", "max_level", "mutex", "trace")

    def __init__(self, capacity: int = 64) -> None:
        self.om = ParallelOMList(capacity=capacity)
        self.core: Dict[Vertex, int] = {}
        self.items: Dict[Vertex, OMItem] = {}
        self.anchors: Dict[int, OMItem] = {}
        self.max_level = -1
        # Set by the thread backend: serializes *structural* OM mutations
        # (splices and relabels), standing in for the internal
        # synchronization of the parallel OM structure [11].  Order
        # comparisons stay lock-free (status-counter protocol), as in the
        # paper.  Under the step-atomic simulator it stays None.
        self.mutex = None
        # Optional RaceDetector hook (repro.analysis.instrument_state):
        # order positions are traced as ("order", v) locations — plain
        # for lock-protected comparisons and moves, relaxed for the
        # Algorithm 4 status-validated protocol reads.
        self.trace = None
        self._ensure_level(0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_decomposition(
        cls,
        core: Dict[Vertex, int],
        order: List[Vertex],
        capacity: int = 64,
        graph=None,
    ) -> "KOrder":
        """Build the order from a BZ peel sequence (non-decreasing cores).

        ``graph`` selects the per-vertex storage: flat slot maps over an
        array substrate, plain dicts otherwise (or when omitted).
        """
        ko = cls(capacity=capacity)
        ko.core = make_vertex_map(graph, core)
        ko.items = make_vertex_map(graph)
        for u in order:
            ku = ko.core[u]
            ko._ensure_levels_through(ku)
            item = OMItem(u)
            ko.items[u] = item
            ko.om.insert_tail(item)
        return ko

    def _ensure_level(self, k: int) -> None:
        """Create the anchor for level ``k``; levels are contiguous, so a
        new anchor can only extend the top (``k == max_level + 1``)."""
        if k in self.anchors:
            return
        if k != self.max_level + 1:
            raise AssertionError(
                f"anchor levels must be contiguous: have 0..{self.max_level}, "
                f"asked for {k}"
            )
        a = OMItem(_Anchor(k))
        self.om.insert_tail(a)
        self.anchors[k] = a
        self.max_level = k

    def _ensure_levels_through(self, k: int) -> None:
        while self.max_level < k:
            self._ensure_level(self.max_level + 1)

    def add_vertex(self, u: Vertex, k: int = 0) -> None:
        """Register a brand-new vertex with core ``k`` at the tail of O_k."""
        if u in self.items:
            raise ValueError(f"vertex already in k-order: {u!r}")
        self._ensure_levels_through(k)
        self.core[u] = k
        item = OMItem(u)
        self.items[u] = item
        self._insert_segment_tail(item, k)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def item(self, u: Vertex) -> OMItem:
        return self.items[u]

    def status(self, u: Vertex) -> int:
        """The vertex's status counter ``u.s`` (paper Algorithm 4/5).
        A relaxed read for the race detector: status counters exist
        precisely to validate racy observations."""
        tr = self.trace
        if tr is not None:
            tr.read(("order", u), relaxed=True)
        return self.items[u].s

    def core_relaxed(self, u: Vertex, default: Optional[int] = None) -> Optional[int]:
        """Racy read of an (unlocked) vertex's core number.

        The parallel algorithms read neighbor cores without locks by
        design — conditional locks (Algorithm 2) and the t protocol
        re-validate whatever was observed — so these reads are recorded
        as *relaxed* for the race detector instead of through the traced
        ``core`` dict."""
        tr = self.trace
        if tr is not None:
            tr.read(("core", u), relaxed=True)
        return raw_get(self.core, u, default)

    def precedes(self, u: Vertex, v: Vertex) -> bool:
        """Strict k-order comparison ``u < v``: pure label comparison on the
        global list (the paper's ``Order``).  Callers in parallel code
        must hold both vertices' locks (use :meth:`precedes_concurrent`
        otherwise); the race detector checks exactly that."""
        if u == v:
            return False
        tr = self.trace
        if tr is not None:
            tr.read(("order", u))
            tr.read(("order", v))
            return self.om.order(self.items[u], self.items[v])
        items = raw_map(self.items)
        return self.om.order(items[u], items[v])

    def precedes_concurrent(
        self, u: Vertex, v: Vertex, on_spin: Optional[Callable[[], None]] = None
    ) -> bool:
        """Algorithm 4: order comparison safe against in-flight moves."""
        if u == v:
            return False
        tr = self.trace
        if tr is not None:
            tr.read(("order", u), relaxed=True)
            tr.read(("order", v), relaxed=True)
            return self.om.order_concurrent(self.items[u], self.items[v], on_spin)
        # Hot path (untraced): index the raw item storage directly, like
        # ``precedes`` — this comparison dominates every Forward scan.
        items = raw_map(self.items)
        return self.om.order_concurrent(items[u], items[v], on_spin)

    def labels(self, u: Vertex) -> tuple:
        """Current ``(top, bottom)`` OM labels of ``u`` (relaxed read:
        consumers re-validate via the status/version protocol)."""
        tr = self.trace
        if tr is not None:
            tr.read(("order", u), relaxed=True)
        it = self.items[u]
        return it.group.label, it.label  # type: ignore[union-attr]

    def post(self, graph: DynamicGraph, u: Vertex, k: Optional[int] = None) -> List[Vertex]:
        """DAG successors of ``u``: neighbors ordered after ``u``,
        optionally filtered to core number ``k``."""
        if self.trace is None:
            # Hot path: index the raw storage directly (neighbors always
            # have core/items entries; u is never its own neighbor).
            core, items, order = raw_map(self.core), raw_map(self.items), self.om.order
            it_u = items[u]
            if k is None:
                return [v for v in graph.neighbors(u) if order(it_u, items[v])]
            return [
                v
                for v in graph.neighbors(u)
                if core[v] == k and order(it_u, items[v])
            ]
        out = []
        for v in graph.neighbors(u):
            if k is not None and self.core[v] != k:
                continue
            if self.precedes(u, v):
                out.append(v)
        return out

    def pre(self, graph: DynamicGraph, u: Vertex, k: Optional[int] = None) -> List[Vertex]:
        """DAG predecessors of ``u``: neighbors ordered before ``u``,
        optionally filtered to core number ``k``."""
        if self.trace is None:
            core, items, order = raw_map(self.core), raw_map(self.items), self.om.order
            it_u = items[u]
            if k is None:
                return [v for v in graph.neighbors(u) if order(items[v], it_u)]
            return [
                v
                for v in graph.neighbors(u)
                if core[v] == k and order(items[v], it_u)
            ]
        out = []
        for v in graph.neighbors(u):
            if k is not None and self.core[v] != k:
                continue
            if self.precedes(v, u):
                out.append(v)
        return out

    def count_post(self, graph: DynamicGraph, u: Vertex) -> int:
        """Steady-state remaining out-degree: ``|{v in adj : u < v}|``.

        Parallel callers hold ``u``'s lock but scan *unlocked* neighbors;
        the laziness discipline (materialize under lock, invalidate on
        change) tolerates the staleness, so the neighbor comparisons are
        relaxed reads for the race detector."""
        tr = self.trace
        if tr is not None:
            tr.read(("order", u), relaxed=True)
            items, order = self.items, self.om.order
            n = 0
            for v in graph.neighbors(u):
                tr.read(("order", v), relaxed=True)
                if order(items[u], items[v]):
                    n += 1
            return n
        items, order = raw_map(self.items), self.om.order
        it_u = items[u]
        return sum(1 for v in graph.neighbors(u) if order(it_u, items[v]))

    def sequence(self, k: int) -> List[Vertex]:
        """The vertices of segment ``O_k`` in order."""
        a = self.anchors.get(k)
        if a is None:
            return []
        out: List[Vertex] = []
        x = self.om.successor(a)
        while x is not None and not isinstance(x.payload, _Anchor):
            out.append(x.payload)
            x = self.om.successor(x)
        return out

    def full_sequence(self) -> List[Vertex]:
        """The whole k-order ``O_0 O_1 O_2 ...`` (anchors omitted)."""
        return [x.payload for x in self.om if not isinstance(x.payload, _Anchor)]

    @property
    def version(self) -> int:
        """Relabel version of the underlying OM list (Appendix E's
        ``O_k.ver``)."""
        return self.om.version

    @property
    def relabels_in_progress(self) -> int:
        """Appendix E's ``O_k.cnt``."""
        return self.om.relabels_in_progress

    # ------------------------------------------------------------------
    # mutation (all wrapped in the status protocol so concurrent readers
    # under the simulated/thread machines can detect moves)
    # ------------------------------------------------------------------
    def _move(self, u: Vertex, action) -> None:
        tr = self.trace
        if tr is not None:
            # a splice is a write of u's order position; the mover must
            # hold u's lock (checked by the detector's lockset analysis)
            tr.write(("order", u))
        item = self.items[u]
        if self.mutex is not None:
            with self.mutex:
                item.s += 1
                try:
                    action(item)
                finally:
                    item.s += 1
            return
        item.s += 1
        try:
            action(item)
        finally:
            item.s += 1

    def _insert_segment_tail(self, item: OMItem, k: int) -> None:
        nxt = self.anchors.get(k + 1)
        if nxt is None:
            self.om.insert_tail(item)
        else:
            self.om.insert_before(nxt, item)

    def set_core(self, u: Vertex, k: int) -> None:
        """Update the authoritative core number of ``u``.  Reposition
        (delete + insert_head/insert_tail) is managed separately."""
        self.core[u] = k

    def delete(self, u: Vertex) -> None:
        """Unlink ``u`` from the order (status-protected)."""

        def action(item: OMItem) -> None:
            self.om.delete(item)

        self._move(u, action)

    def insert_after_vertex(self, anchor: Vertex, u: Vertex) -> None:
        """Re-insert the (currently unlinked) ``u`` right after ``anchor``."""

        def action(item: OMItem) -> None:
            self.om.insert_after(self.items[anchor], item)

        self._move(u, action)

    def move_after_vertex(self, anchor: Vertex, u: Vertex) -> None:
        """Unlink ``u`` and re-insert right after ``anchor`` as one
        status-protected move (Backward's re-threading)."""

        def action(item: OMItem) -> None:
            self.om.delete(item)
            self.om.insert_after(self.items[anchor], item)

        self._move(u, action)

    def promote_head(self, u: Vertex, new_k: int) -> None:
        """Insertion end phase, first candidate: one status window covering
        unlink + core bump + splice at the head of O_{new_k}
        (Algorithm 5 line 16's ``<w.s++>; Delete; Insert; <w.s++>``)."""
        self._ensure_levels_through(new_k)

        def action(item: OMItem) -> None:
            self.om.delete(item)
            self.core[u] = new_k
            self.om.insert_after(self.anchors[new_k], item)

        self._move(u, action)

    def promote_after(self, anchor: Vertex, u: Vertex, new_k: int) -> None:
        """Insertion end phase, subsequent candidates: splice right after
        the previously promoted ``anchor`` (which must already be at core
        ``new_k``), as one status window."""
        if self.core[anchor] != new_k:
            raise ValueError("promote_after anchor must already be promoted")

        def action(item: OMItem) -> None:
            self.om.delete(item)
            self.core[u] = new_k
            self.om.insert_after(self.items[anchor], item)

        self._move(u, action)

    def demote_tail(self, u: Vertex, new_k: int) -> None:
        """Removal drop: one status window covering unlink + core drop +
        append at the tail of O_{new_k}.

        The paper's Algorithm 6 unlinks at drop time (line 24) but appends
        only in the end phase (line 17).  We append *at drop time*: with
        concurrent workers, end-phase appends can interleave against drop
        causality (x dropped because y dropped, yet x gets appended first),
        which breaks the valid-peel-order invariant ``d_out^+ <= core``.
        Drop-time appends are causally ordered — when x drops, every
        neighbor that will end up after x still has core >= K, so x's
        successor count is bounded by the observed ``mcd < K`` — and in a
        sequential run the resulting arrangement is identical (drop order
        equals end-phase order).  See DESIGN.md.
        """
        self._ensure_levels_through(new_k)

        def action(item: OMItem) -> None:
            self.om.delete(item)
            self.core[u] = new_k
            self._insert_segment_tail(item, new_k)

        self._move(u, action)

    def insert_head(self, u: Vertex) -> None:
        """Place the (currently unlinked) ``u`` at the head of its core's
        segment — the insertion end phase's move to the beginning of
        O_{K+1} (Algorithm 5 line 16 / Algorithm 7 line 10)."""
        k = self.core[u]
        self._ensure_levels_through(k)

        def action(item: OMItem) -> None:
            self.om.insert_after(self.anchors[k], item)

        self._move(u, action)

    def insert_tail(self, u: Vertex) -> None:
        """Append the (currently unlinked) ``u`` at the tail of its core's
        segment — the removal end phase's append to O_{K-1}
        (Algorithm 6 line 17 / Algorithm 10 line 11)."""
        k = self.core[u]
        self._ensure_levels_through(k)

        def action(item: OMItem) -> None:
            self._insert_segment_tail(item, k)

        self._move(u, action)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_valid(self, graph: DynamicGraph) -> None:
        """Assert the k-order invariants the maintenance algorithms rely on.

        (1) the OM list is internally consistent;
        (2) anchors appear in level order and every vertex lies in the
            segment of its core number;
        (3) ``d_out^+(u) <= core(u)`` for every vertex — the
            characterization of a valid peeling order.
        """
        self.om.check_invariants()
        current = -1
        seen = set()
        for x in self.om:
            if isinstance(x.payload, _Anchor):
                assert x.payload.k == current + 1, (
                    f"anchor {x.payload.k} out of sequence after {current}"
                )
                current = x.payload.k
            else:
                u = x.payload
                assert self.core[u] == current, (
                    f"{u!r} in segment O_{current} but core={self.core[u]}"
                )
                assert u not in seen, f"{u!r} appears twice"
                seen.add(u)
        assert seen == set(self.core), "k-order does not cover all vertices"
        for u in graph.vertices():
            d_out = self.count_post(graph, u)
            assert d_out <= self.core[u], (
                f"d_out^+({u!r})={d_out} > core={self.core[u]}"
            )
