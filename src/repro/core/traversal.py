"""Sequential Traversal core maintenance — TI/TR (Sariyüce et al., VLDBJ'16).

The baseline the paper compares against (and that JEI/JER and MI/MR
parallelize).  Characteristics that matter for the evaluation's shape:

* **Insertion (TI)** explores the whole *reachable pure-core region* of the
  root: a DFS over core-K vertices pruned by mcd/pcd, followed by a peel
  phase.  Its searched set ``V+`` is usually much larger than the Order
  algorithm's (the paper's |V+|/|V*| discussion in Section 3), and its size
  fluctuates heavily between edges — the instability shown in Figure 7.
* **Removal (TR)** propagates mcd deficits like OR, but Traversal keeps no
  k-order and, standalone, no cross-operation mcd cache, so every
  operation recomputes its support counts from scratch.
* Only core numbers are maintained (no k-order).

Definitions (Section 3.1 / [27]):

* ``mcd(v) = |{w in adj(v) : core(w) >= core(v)}|``
* ``pcd(v) = |{w in adj(v) : core(w) > core(v)
              or (core(w) = core(v) and mcd(w) > core(v))}|``

Instrumentation: every operation accumulates abstract *work units* (one
unit per adjacency-entry touch) into ``stats.work`` — the common currency
the benchmark harness uses to compare all algorithms on the simulated
machine.

Batch baselines (JEI/JER, MI/MR) pass a persistent :class:`TraversalMemo`:
mcd/pcd values then survive across edges of a batch, with *conservative
invalidation* after each processed edge (everything whose value could have
changed — endpoints, promoted/demoted vertices, and their 1- and 2-hop
dependents — is evicted).  That cache reuse is the "avoid repeated
computations" advantage the paper credits those methods with; correctness
is unaffected because invalidation is a superset of the true dependency
set.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set

from repro.core.state import InsertStats, RemoveStats
from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable

__all__ = ["TraversalMemo", "traversal_insert_edge", "traversal_remove_edge"]

#: charged on a cache hit instead of a full O(deg) recompute
_CACHE_HIT_COST = 0.25


class TraversalMemo:
    """mcd/pcd memoization with work accounting.

    ``persistent=False`` (the default for standalone TI/TR) recomputes from
    scratch every operation; ``persistent=True`` (the batch baselines)
    keeps values across operations and relies on
    :meth:`invalidate_after_op` being called after each edge.
    """

    __slots__ = ("graph", "core", "persistent", "_mcd", "_pcd", "work")

    def __init__(
        self,
        graph: DynamicGraph,
        core: Dict[Vertex, int],
        persistent: bool = False,
    ) -> None:
        self.graph = graph
        self.core = core
        self.persistent = persistent
        self._mcd: Dict[Vertex, int] = {}
        self._pcd: Dict[Vertex, int] = {}
        self.work = 0.0

    # ------------------------------------------------------------------
    def reset_op(self) -> None:
        """Start a new operation: transient memos are cleared."""
        if not self.persistent:
            self._mcd.clear()
            self._pcd.clear()

    def mcd(self, v: Vertex) -> int:
        got = self._mcd.get(v)
        if got is not None:
            self.work += _CACHE_HIT_COST
            return got
        cv = self.core[v]
        got = sum(1 for w in self.graph.neighbors(v) if self.core[w] >= cv)
        self.work += self.graph.degree(v)
        self._mcd[v] = got
        return got

    def pcd(self, v: Vertex) -> int:
        got = self._pcd.get(v)
        if got is not None:
            self.work += _CACHE_HIT_COST
            return got
        cv = self.core[v]
        got = 0
        for w in self.graph.neighbors(v):
            cw = self.core[w]
            if cw > cv or (cw == cv and self.mcd(w) > cv):
                got += 1
        self.work += self.graph.degree(v)
        self._pcd[v] = got
        return got

    # ------------------------------------------------------------------
    def invalidate_after_op(self, endpoints, changed) -> None:
        """Conservative eviction after one edge operation.

        ``changed`` = vertices whose core number changed (V* of the op).
        mcd depends on own core, neighbor cores and own adjacency: evict
        ``M = endpoints ∪ changed ∪ N(changed)``.  pcd additionally
        depends on neighbors' mcd: evict ``M ∪ N(M)``.
        """
        if not self.persistent:
            return
        g = self.graph
        m: Set[Vertex] = set(endpoints)
        m.update(changed)
        for w in changed:
            m.update(g.neighbors(w))
        p: Set[Vertex] = set(m)
        for w in m:
            if g.has_vertex(w):
                p.update(g.neighbors(w))
        for w in m:
            self._mcd.pop(w, None)
        for w in p:
            self._pcd.pop(w, None)
        # eviction bookkeeping is real work too
        self.work += len(p) * 0.25


def traversal_insert_edge(
    graph: DynamicGraph,
    core: Dict[Vertex, int],
    a: Vertex,
    b: Vertex,
    memo: Optional[TraversalMemo] = None,
) -> InsertStats:
    """TI: insert edge ``(a, b)``, update ``core`` in place.

    Returns instrumentation: ``V+`` = visited set, ``V*`` = promoted set,
    ``work`` = abstract work units consumed.
    """
    for x in (a, b):
        if x not in core:
            graph.add_vertex(x)
            core[x] = 0
    if graph.has_edge(a, b):
        raise ValueError(f"edge already present: ({a!r}, {b!r})")
    graph.add_edge(a, b)
    if memo is None:
        memo = TraversalMemo(graph, core, persistent=False)
    memo.reset_op()
    work0 = memo.work
    # the new edge itself dirties the endpoints' neighborhoods
    memo.invalidate_after_op((a, b), ())

    r = a if core[a] <= core[b] else b
    K = core[r]

    cd: Dict[Vertex, int] = {r: memo.pcd(r)}
    visited: Dict[Vertex, None] = {r: None}
    stack: List[Vertex] = [r]
    while stack:
        w = stack.pop()
        memo.work += 1
        if cd[w] > K:
            memo.work += graph.degree(w)
            for x in graph.neighbors(w):
                if core[x] == K and x not in visited and memo.mcd(x) > K:
                    visited[x] = None
                    cd[x] = memo.pcd(x)
                    stack.append(x)

    # Peel phase: evict visited vertices whose support cannot exceed K.
    evicted: Set[Vertex] = set()
    queue: deque = deque(w for w in visited if cd[w] <= K)
    queued: Set[Vertex] = set(queue)
    while queue:
        w = queue.popleft()
        evicted.add(w)
        if memo.mcd(w) <= K:
            continue  # w was never counted in neighbors' pcd
        memo.work += graph.degree(w)
        for x in graph.neighbors(w):
            if core[x] == K and x in visited and x not in evicted:
                cd[x] -= 1
                if cd[x] <= K and x not in queued:
                    queue.append(x)
                    queued.add(x)

    stats = InsertStats()
    stats.v_plus = list(visited)
    for w in visited:
        if w not in evicted:
            core[w] = K + 1
            stats.v_star.append(w)
    memo.invalidate_after_op((a, b), stats.v_star)
    stats.work = memo.work - work0 + 2.0  # + fixed edge overhead
    return stats


def traversal_remove_edge(
    graph: DynamicGraph,
    core: Dict[Vertex, int],
    a: Vertex,
    b: Vertex,
    memo: Optional[TraversalMemo] = None,
) -> RemoveStats:
    """TR: remove edge ``(a, b)``, update ``core`` in place.

    mcd-deficit propagation; support counts come from the (per-op or
    persistent) memo.
    """
    if not graph.has_edge(a, b):
        raise KeyError(f"edge not present: ({a!r}, {b!r})")
    if memo is None:
        memo = TraversalMemo(graph, core, persistent=False)
    memo.reset_op()
    work0 = memo.work

    K = min(core[a], core[b])
    # Materialize endpoint support *before* the removal, then account for
    # the lost edge manually (mirrors OR's bookkeeping).  The memo's
    # cached values may not include this op's own drops yet, which is fine
    # pre-removal.
    mcd: Dict[Vertex, int] = {a: memo.mcd(a), b: memo.mcd(b)}
    graph.remove_edge(a, b)
    if core[b] >= core[a]:
        mcd[a] -= 1
    if core[a] >= core[b]:
        mcd[b] -= 1

    stats = RemoveStats()
    dropped: Set[Vertex] = set()
    r: deque = deque()

    def drop(x: Vertex) -> None:
        core[x] = K - 1
        dropped.add(x)
        r.append(x)
        stats.v_star.append(x)

    for x in (a, b):
        if core[x] == K and mcd[x] < K:
            drop(x)

    while r:
        w = r.popleft()
        memo.work += graph.degree(w)
        for x in graph.neighbors(w):
            if core[x] != K:
                continue
            if x not in mcd:
                # First touch this op: count supporters at level K.  A
                # dropped neighbor still counts while it has not yet
                # propagated to x (it is queued, or it is w itself, about
                # to decrement below).
                cnt = 0
                for y in graph.neighbors(x):
                    if core[y] >= K:
                        cnt += 1
                    elif core[y] == K - 1 and (y == w or y in r):
                        cnt += 1
                memo.work += graph.degree(x)
                mcd[x] = cnt
            mcd[x] -= 1
            if mcd[x] < K:
                drop(x)

    memo.invalidate_after_op((a, b), stats.v_star)
    stats.work = memo.work - work0 + 2.0
    return stats
