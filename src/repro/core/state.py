"""Shared mutable state for order-based core maintenance.

One :class:`OrderState` instance holds everything the Order algorithms
(sequential OI/OR and the parallel OurI/OurR) read and write:

* the dynamic graph;
* the :class:`~repro.core.korder.KOrder` (per-k OM lists + core numbers);
* ``d_out`` — remaining out-degrees ``d_out^+`` (Definition 3.7), kept
  *lazily*: ``None`` means "unknown, recompute on demand when the vertex
  is locked".  Laziness matters for the parallel algorithms: a removal's
  end phase shifts the orientation of edges incident to dropped vertices,
  and invalidating (rather than recomputing) means no worker ever writes a
  counter of a vertex it has not locked;
* ``mcd`` — max-core degrees (Definition 3.8), also lazy (the ∅ value of
  the parallel Algorithm 6, ``u.mcd ← ∅``).  Insertions that change core
  numbers invalidate affected entries; removals maintain touched entries
  eagerly while propagating;
* ``t`` — the 4-state removal-propagation status of Algorithm 6
  (0 = idle/done, 2 = queued, 1 = propagating, 3 = must re-propagate).
  Only the parallel removal reads it concurrently; it is kept here so the
  sequential and parallel code paths share one state block.

Candidate in-degrees ``d_in^*`` are operation-local (they are provably 0
between operations) and live inside each algorithm, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Optional

from repro.core.decomposition import core_decomposition
from repro.core.korder import KOrder
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.storage import make_vertex_map, raw_map, raw_set

Vertex = Hashable

__all__ = ["OrderState", "InsertStats", "RemoveStats"]


@dataclass
class InsertStats:
    """Per-edge-insertion instrumentation (drives the Figure 5 benchmark).

    ``work`` is the abstract work-unit count consumed by the operation
    (only filled in by algorithms that account it — the Traversal family
    and the batch baselines; the parallel Order algorithms charge their
    work to the simulated machine instead).
    """

    v_star: list = field(default_factory=list)  # candidates whose core rose
    v_plus: list = field(default_factory=list)  # searched (== locked) set
    work: float = 0.0


@dataclass
class RemoveStats:
    """Per-edge-removal instrumentation.  For removal ``V+ == V*``."""

    v_star: list = field(default_factory=list)
    work: float = 0.0

    @property
    def v_plus(self) -> list:
        return self.v_star


class OrderState:
    """The state block shared by all order-based maintenance algorithms."""

    __slots__ = ("graph", "korder", "d_out", "mcd", "t", "t_mutex", "trace")

    def __init__(self, graph: DynamicGraph, korder: KOrder, d_out: Dict[Vertex, int]):
        self.graph = graph
        self.korder = korder
        # Storage follows the substrate: flat slots over IntGraph, plain
        # dicts over hashable-id graphs (see repro.graph.storage).
        self.d_out = make_vertex_map(graph, d_out)
        self.mcd = make_vertex_map(graph, {u: None for u in korder.core})
        self.t = make_vertex_map(graph)
        # Set by the thread backend to make t-transitions genuinely atomic
        # (the simulator's step-atomicity makes plain ops equivalent).
        self.t_mutex = None
        # Optional RaceDetector hook (repro.analysis); None means no
        # tracing and zero overhead beyond the is-None tests below.
        self.trace = None

    # ------------------------------------------------------------------
    # t-protocol primitives (Algorithm 6); the simulator runs them as one
    # atomic step, the thread backend serializes them through t_mutex.
    # All t accesses are *relaxed* for the race detector: the t protocol
    # is the paper's own synchronization mechanism (atomics + CAS), so
    # its racy reads are designed-in, not defects.
    # ------------------------------------------------------------------
    def t_add(self, v: Vertex, delta: int) -> int:
        """Atomically add ``delta`` to ``t[v]`` and return the new value."""
        tr = self.trace
        if tr is not None:
            tr.read(("t", v), relaxed=True)
            tr.write(("t", v), relaxed=True)
        if self.t_mutex is None:
            new = self.t.get(v, 0) + delta
            self.t[v] = new
            return new
        with self.t_mutex:
            new = self.t.get(v, 0) + delta
            self.t[v] = new
            return new

    def t_cas(self, v: Vertex, old: int, new: int) -> bool:
        """CAS on ``t[v]`` (paper's ``CAS(v.t, 1, 3)``)."""
        tr = self.trace
        if tr is not None:
            tr.read(("t", v), relaxed=True)
            tr.write(("t", v), relaxed=True)
        if self.t_mutex is None:
            if self.t.get(v, 0) == old:
                self.t[v] = new
                return True
            return False
        with self.t_mutex:
            if self.t.get(v, 0) == old:
                self.t[v] = new
                return True
            return False

    def t_set(self, v: Vertex, value: int) -> None:
        """Atomic store to ``t[v]`` (the drop-time ``t ← 2`` publish)."""
        tr = self.trace
        if tr is not None:
            tr.write(("t", v), relaxed=True)
        self.t[v] = value

    def t_relaxed(self, v: Vertex) -> int:
        """Racy read of ``t[v]`` (CheckMCD's unlocked neighbor probe)."""
        tr = self.trace
        if tr is not None:
            tr.read(("t", v), relaxed=True)
        return self.t.get(v, 0)

    # ------------------------------------------------------------------
    # ∅-invalidation wipes: the one place a worker writes a counter of a
    # vertex it has NOT locked.  Safe by design — the written value is
    # only ever the "unknown, recompute under lock" sentinel, which every
    # reader must tolerate anyway — hence relaxed for the race detector.
    # ------------------------------------------------------------------
    def d_out_wipe(self, v: Vertex) -> None:
        """Invalidate ``d_out[v]`` without holding ``v``'s lock."""
        tr = self.trace
        if tr is not None:
            tr.write(("d_out", v), relaxed=True)
        raw_set(self.d_out, v, None)

    def mcd_wipe(self, v: Vertex) -> None:
        """Invalidate ``mcd[v]`` without holding ``v``'s lock."""
        tr = self.trace
        if tr is not None:
            tr.write(("mcd", v), relaxed=True)
        raw_set(self.mcd, v, None)

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: DynamicGraph,
        strategy: str = "small-degree-first",
        capacity: int = 64,
        seed: int = 0,
    ) -> "OrderState":
        """Initialize cores, k-order and d_out^+ with BZ (paper Algorithm 1)."""
        decomp = core_decomposition(graph, strategy=strategy, seed=seed)
        korder = KOrder.from_decomposition(
            decomp.core, decomp.order, capacity=capacity, graph=graph
        )
        return cls(graph, korder, decomp.d_out)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def ensure_vertex(self, u: Vertex) -> None:
        """Register a vertex appearing for the first time: core 0, placed
        at the tail of O_0 (a degree-0 vertex peels first at level 0)."""
        if u not in self.korder.items:
            self.graph.add_vertex(u)
            self.korder.add_vertex(u, 0)
            self.d_out[u] = 0
            self.mcd[u] = None

    def ensure_mcd(
        self,
        x: Vertex,
        pending: Iterable[Vertex] = (),
        visitor: Optional[Vertex] = None,
    ) -> int:
        """Materialize ``mcd[x]`` if unknown and return it.

        This is the sequential counterpart of the parallel ``CheckMCD``
        (Algorithm 6 lines 26-34).  A neighbor ``v`` *supports* ``x`` when

        * ``core[v] >= core[x]``, or
        * ``core[v] == core[x] - 1`` and ``v`` has dropped during the
          current removal but has not yet propagated to ``x``: it is still
          in the propagation queue (``pending``, the paper's ``v.t > 0``)
          or it is the vertex visiting ``x`` right now (``visitor``, whose
          imminent ``DoMCD`` decrement must see itself counted — the
          paper's ``v = w`` special case).
        """
        # Registered vertices always have core/mcd entries, so when
        # untraced the loop indexes raw storage (C-speed on both
        # substrates).
        if self.trace is None:
            mcd, core = raw_map(self.mcd), raw_map(self.korder.core)
            cur = mcd[x]
        else:
            mcd, core = self.mcd, self.korder.core
            cur = mcd.get(x)
        if cur is not None:
            return cur
        cx = core[x]
        pend = set(pending)
        cnt = 0
        for v in self.graph.neighbors(x):
            cv = core[v]
            if cv >= cx:
                cnt += 1
            elif cv == cx - 1 and (v in pend or v == visitor):
                cnt += 1
        mcd[x] = cnt
        return cnt

    def invalidate_mcd_around(self, vertices: Iterable[Vertex]) -> None:
        """Drop cached mcd for ``vertices`` and all their neighbors — used
        after insertions change core numbers."""
        mcd = raw_map(self.mcd) if self.trace is None else self.mcd
        for w in vertices:
            mcd[w] = None
            for x in self.graph.neighbors(w):
                mcd[x] = None

    def ensure_d_out(self, u: Vertex) -> int:
        """Materialize ``d_out^+[u]`` (count of k-order successors among
        neighbors) if unknown and return it.  Callers in the parallel
        algorithms must hold u's lock."""
        if self.trace is None:
            d_out = raw_map(self.d_out)
            cur = d_out[u]
            if cur is None:
                cur = self.korder.count_post(self.graph, u)
                d_out[u] = cur
            return cur
        cur = self.d_out.get(u)
        if cur is None:
            cur = self.korder.count_post(self.graph, u)
            self.d_out[u] = cur
        return cur

    def refresh_d_out(self, u: Vertex) -> None:
        """Recompute ``d_out^+[u]`` from the current k-order."""
        self.d_out[u] = self.korder.count_post(self.graph, u)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert every steady-state invariant (tests / debugging).

        * k-order valid (per-list OM invariants, ``d_out <= core``);
        * ``d_out`` matches a fresh post-count;
        * every materialized ``mcd`` matches Definition 3.8 and is
          ``>= core``;
        * core numbers equal a from-scratch BZ decomposition.
        """
        ko = self.korder
        ko.check_valid(self.graph)
        for u in self.graph.vertices():
            cached_dout = self.d_out.get(u)
            if cached_dout is not None:
                expect = ko.count_post(self.graph, u)
                assert cached_dout == expect, (
                    f"d_out[{u!r}]={cached_dout} != {expect}"
                )
            cached = self.mcd.get(u)
            if cached is not None:
                cu = ko.core[u]
                true_mcd = sum(
                    1 for v in self.graph.neighbors(u) if ko.core[v] >= cu
                )
                assert cached == true_mcd, (
                    f"mcd[{u!r}]={cached} != {true_mcd}"
                )
                assert cached >= cu, f"mcd[{u!r}]={cached} < core={cu}"
        fresh = core_decomposition(self.graph)
        for u in self.graph.vertices():
            assert ko.core[u] == fresh.core[u], (
                f"core[{u!r}]={ko.core[u]} != BZ {fresh.core[u]}"
            )
