"""Core decomposition and sequential core maintenance.

* :mod:`repro.core.decomposition` — the BZ peeling algorithm (paper
  Algorithm 1) producing core numbers, a k-order, and the initial remaining
  out-degrees; plus a ParK-style level-synchronous variant.
* :mod:`repro.core.korder` — the k-order bookkeeping shared by all
  order-based algorithms: per-``k`` OM sublists and cross-``k`` comparison.
* :mod:`repro.core.order_insert` / :mod:`repro.core.order_remove` — the
  sequential Simplified-Order algorithms OI (Algorithms 7-9) and OR
  (Algorithm 10).
* :mod:`repro.core.traversal` — the sequential Traversal baselines TI/TR.
* :mod:`repro.core.maintainer` — user-facing facades tying it together.
"""

from repro.core.decomposition import (
    CoreDecomposition,
    core_decomposition,
    core_histogram,
    park_decomposition,
)
from repro.core.history import CoreHistory
from repro.core.korder import KOrder
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.core.queries import (
    all_subcores,
    core_components,
    degeneracy,
    degeneracy_ordering,
    innermost_core,
    k_core_subgraph,
    k_core_vertices,
    k_shell,
    subcore,
)

__all__ = [
    "CoreDecomposition",
    "core_decomposition",
    "core_histogram",
    "park_decomposition",
    "KOrder",
    "CoreHistory",
    "OrderMaintainer",
    "TraversalMaintainer",
    "k_core_vertices",
    "k_core_subgraph",
    "k_shell",
    "innermost_core",
    "subcore",
    "all_subcores",
    "degeneracy",
    "degeneracy_ordering",
    "core_components",
]
