"""Sequential Simplified-Order edge removal — OR (paper Algorithm 10).

Removal is mcd-driven (Definition 3.8): every vertex keeps
``mcd(v) = |{w in adj(v) : core(w) >= core(v)}| >= core(v)``.  Removing an
edge can push an endpoint's mcd below its core, in which case its core
drops by exactly one and the deficit propagates to same-core neighbors.

Unlike insertion, ``V+ = V*``: only vertices whose core actually drops are
ever touched — this is why the paper's OurR parallelization locks so few
vertices.

mcd values are kept *lazily* (``None`` = unknown), exactly as the parallel
Algorithm 6 does with its ``mcd = ∅`` convention; materialization happens
through :meth:`repro.core.state.OrderState.ensure_mcd`, whose
pending/visitor accounting mirrors the paper's ``CheckMCD``.

A design choice worth noting: cores of dropped vertices are decremented
*immediately* when they join the propagation queue (as the parallel
Algorithm 6 line 22 does, rather than at the end like the sequential
Algorithm 10).  This keeps every on-demand mcd materialization consistent
mid-propagation and makes the sequential and parallel code paths agree
step for step.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Set

from repro.core.state import OrderState, RemoveStats
from repro.graph.storage import raw_map

Vertex = Hashable

__all__ = ["order_remove_edge"]


def order_remove_edge(state: OrderState, a: Vertex, b: Vertex) -> RemoveStats:
    """Remove edge ``(a, b)`` and repair cores / k-order / d_out^+ / mcd.

    Returns the instrumentation record (``V*``; for removal ``V+ == V*``).
    """
    graph, ko = state.graph, state.korder
    if not graph.has_edge(a, b):
        raise KeyError(f"edge not present: ({a!r}, {b!r})")

    # Every registered vertex has core/mcd/d_out entries, so the kernel
    # indexes the raw storage when untraced (C-speed on both substrates).
    if state.trace is None:
        core, mcd, d_out = raw_map(ko.core), raw_map(state.mcd), raw_map(state.d_out)
    else:
        core, mcd, d_out = ko.core, state.mcd, state.d_out

    ca, cb = core[a], core[b]
    K = min(ca, cb)

    # Materialize endpoint mcds *before* the removal (Algorithm 6 line 3),
    # then account for the removed edge (Algorithm 10 line 2).
    state.ensure_mcd(a)
    state.ensure_mcd(b)

    # d_out^+ upkeep for the removed edge: the earlier endpoint loses one
    # successor (when materialized; order must be read before mutation).
    first = a if ko.precedes(a, b) else b
    if d_out[first] is not None:
        d_out[first] -= 1  # type: ignore[operator]

    graph.remove_edge(a, b)
    if cb >= ca:
        mcd[a] -= 1  # type: ignore[operator]
    if ca >= cb:
        mcd[b] -= 1  # type: ignore[operator]

    stats = RemoveStats()
    r: deque = deque()
    pending: Set[Vertex] = set()
    v_star: list = []

    def drop(x: Vertex) -> None:
        """x's core falls K -> K-1 (paper's DoMCD success branch).

        The move to the tail of O_{K-1} happens right here, at drop time
        (identical to the paper's end-phase append in a sequential run,
        and required for causal consistency in the parallel one — see
        :meth:`repro.core.korder.KOrder.demote_tail`).
        """
        ko.demote_tail(x, K - 1)
        mcd[x] = None   # out of date; recomputed on demand later
        v_star.append(x)
        r.append(x)
        pending.add(x)

    # Seed: an endpoint drops if it sat at level K and lost support.
    for x in (a, b):
        if core[x] == K and mcd[x] < K:  # type: ignore[operator]
            drop(x)

    # Propagation (Algorithm 10 lines 5-9).
    while r:
        w = r.popleft()
        pending.discard(w)
        for x in list(graph.neighbors(w)):
            if core[x] != K:
                continue  # dropped vertices are already at K-1
            state.ensure_mcd(x, pending=pending, visitor=w)
            mcd[x] -= 1  # type: ignore[operator]
            if mcd[x] < K:  # type: ignore[operator]
                drop(x)

    # Ending phase (the O_{K-1} moves already happened at drop time):
    # d_out^+ of dropped vertices and of their level-K neighbors depends
    # on the new positions, so invalidate both (lazy recompute when next
    # needed — see the d_out discussion in ``repro.core.state``).
    if v_star:
        for w in v_star:
            d_out[w] = None
            for x in graph.neighbors(w):
                if core[x] == K:
                    d_out[x] = None
        stats.v_star = v_star
    return stats
