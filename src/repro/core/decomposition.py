"""Static core decomposition: the BZ peeling algorithm (paper Algorithm 1).

``core_decomposition`` computes, in one pass:

* ``core[u]`` — the core number of every vertex (Definition 3.2);
* ``order`` — the peeling sequence, which *is* a valid k-order
  (Definition 3.5): the total order the maintenance algorithms keep
  refining as edges change;
* ``d_out[u]`` — the initial remaining out-degree ``d_out^+``
  (Definition 3.7): orienting every edge by the produced k-order, the
  number of u's DAG successors.  Note this is *not* the bucket degree at
  peel time: a neighbor peeled at the same degree leaves the bucket degree
  untouched, so we count successors from final positions, which guarantees
  the steady-state invariant ``d_out^+[u] <= core[u]``.

Tie-breaking among equal-degree vertices picks which of the many valid
k-orders is produced.  The paper tests three strategies (Section 3.1) and
adopts *small degree first* — among vertices with the same current degree,
peel the one with the smallest original degree first; we implement all
three plus FIFO for the ablation benchmark.

The implementation uses a single lazy min-heap keyed by
``(current_degree, tie_key)``.  The classic bucket array gives O(m); the
heap gives O(m log n) with far simpler support for tie strategies, and at
the scales of this reproduction the difference is noise (profiled; see
``benchmarks/test_ablation_tiebreak.py``).

``park_decomposition`` is a level-synchronous variant in the spirit of
ParK/Kabir-Madduri (paper Section 2): it peels all vertices of the current
lowest degree as one parallel "level", exposing the available parallelism
per level.  It is used by the simulated-machine initialization extension
and validates against BZ.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.intgraph import IntGraph

Vertex = Hashable

__all__ = [
    "CoreDecomposition",
    "core_decomposition",
    "core_histogram",
    "park_decomposition",
    "STRATEGIES",
]

STRATEGIES = ("small-degree-first", "large-degree-first", "random", "fifo")


@dataclass
class CoreDecomposition:
    """Result of a static core decomposition."""

    core: Dict[Vertex, int]
    order: List[Vertex]
    d_out: Dict[Vertex, int]
    max_core: int = field(init=False)

    def __post_init__(self) -> None:
        self.max_core = max(self.core.values(), default=0)

    def histogram(self) -> Dict[int, int]:
        """Core value -> number of vertices (the paper's Figure 3 data)."""
        return core_histogram(self.core)


def core_histogram(core: Dict[Vertex, int]) -> Dict[int, int]:
    """Count vertices per core number, sorted by core value."""
    hist: Dict[int, int] = {}
    for k in core.values():
        hist[k] = hist.get(k, 0) + 1
    return dict(sorted(hist.items()))


def core_decomposition(
    graph: DynamicGraph,
    strategy: str = "small-degree-first",
    seed: int = 0,
) -> CoreDecomposition:
    """BZ peeling (paper Algorithm 1).

    Parameters
    ----------
    graph:
        The (static snapshot of the) graph.
    strategy:
        Tie-break among vertices sharing the minimum current degree; one of
        ``STRATEGIES``.  The paper uses ``small-degree-first``.
    seed:
        Only used by the ``random`` strategy.

    Returns
    -------
    CoreDecomposition
        core numbers, the produced k-order, and peel-time degrees.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use one of {STRATEGIES}")
    if isinstance(graph, IntGraph):
        return _core_decomposition_int(graph, strategy, seed)
    if isinstance(graph, DynamicGraph):
        # Run the array kernel on the wrapped substrate and un-intern the
        # result.  Identity interners (dense-int inputs, the common case)
        # skip the translation entirely.
        decomp = _core_decomposition_int(graph.ig, strategy, seed)
        interner = graph.interner
        if interner.identity:
            return decomp
        ext = interner.external
        return CoreDecomposition(
            core={ext(u): k for u, k in decomp.core.items()},
            order=[ext(u) for u in decomp.order],
            d_out={ext(u): d for u, d in decomp.d_out.items()},
        )
    rng = random.Random(seed)

    deg: Dict[Vertex, int] = {u: graph.degree(u) for u in graph.vertices()}

    def tie_key(u: Vertex, i: int) -> Tuple:
        d0 = deg[u]
        if strategy == "small-degree-first":
            return (d0, i)
        if strategy == "large-degree-first":
            return (-d0, i)
        if strategy == "random":
            return (rng.random(), i)
        return (i,)  # fifo

    # lazy min-heap of (current_degree, tie_key, vertex)
    index = {u: i for i, u in enumerate(graph.vertices())}
    d = dict(deg)
    heap: List[Tuple] = [(d[u], tie_key(u, index[u]), index[u], u) for u in d]
    heapq.heapify(heap)

    core: Dict[Vertex, int] = {}
    order: List[Vertex] = []
    k = 0
    removed: set = set()
    while heap:
        du, _tk, _idx, u = heapq.heappop(heap)
        if u in removed or du != d[u]:
            continue  # stale entry
        removed.add(u)
        k = max(k, d[u])
        core[u] = k
        order.append(u)
        for v in graph.neighbors(u):
            if v not in removed and d[v] > d[u]:
                d[v] -= 1
                heapq.heappush(heap, (d[v], tie_key(v, index[v]), index[v], v))
    position = {u: i for i, u in enumerate(order)}
    d_out = {
        u: sum(1 for v in graph.neighbors(u) if position[v] > position[u])
        for u in order
    }
    return CoreDecomposition(core=core, order=order, d_out=d_out)


def _core_decomposition_int(
    graph: IntGraph, strategy: str, seed: int
) -> CoreDecomposition:
    """BZ peeling over the array substrate: flat-list degrees/positions,
    direct adjacency scans, no hashing in the hot loop.

    Produces bit-identical results to the generic path run over the same
    graph: the heap entries carry the same ``(degree, tie_key, index)``
    prefixes (``index`` is the vertex's enumeration position, which is
    unique, so the trailing vertex field never participates in
    comparisons) and ties therefore resolve identically.  The
    representation differential tests rely on this.
    """
    rng = random.Random(seed)
    adj = graph.adjacency_lists()
    present = graph.presence_mask()
    n = len(adj)
    verts = [u for u in range(n) if present[u]]
    index = [0] * n
    for i, u in enumerate(verts):
        index[u] = i
    deg0 = [len(a) for a in adj]
    d = list(deg0)

    if strategy == "small-degree-first":
        def tie_key(u: int, i: int) -> Tuple:
            return (deg0[u], i)
    elif strategy == "large-degree-first":
        def tie_key(u: int, i: int) -> Tuple:
            return (-deg0[u], i)
    elif strategy == "random":
        def tie_key(u: int, i: int) -> Tuple:
            return (rng.random(), i)
    else:  # fifo
        def tie_key(u: int, i: int) -> Tuple:
            return (i,)

    heap: List[Tuple] = [(d[u], tie_key(u, index[u]), index[u], u) for u in verts]
    heapq.heapify(heap)
    heappop, heappush = heapq.heappop, heapq.heappush

    removed = bytearray(n)
    core_slot = [0] * n
    order: List[int] = []
    k = 0
    while heap:
        du, _tk, _idx, u = heappop(heap)
        if removed[u] or du != d[u]:
            continue  # stale entry
        removed[u] = 1
        if du > k:
            k = du
        core_slot[u] = k
        order.append(u)
        for v in adj[u]:
            dv = d[v]
            if not removed[v] and dv > du:
                d[v] = dv - 1
                heappush(heap, (dv - 1, tie_key(v, index[v]), index[v], v))
    position = [0] * n
    for i, u in enumerate(order):
        position[u] = i
    d_out = {
        u: sum(1 for v in adj[u] if position[v] > position[u]) for u in order
    }
    return CoreDecomposition(
        core={u: core_slot[u] for u in order}, order=order, d_out=d_out
    )


def park_decomposition(graph: DynamicGraph) -> Tuple[Dict[Vertex, int], List[List[Vertex]]]:
    """Level-synchronous peeling in the ParK style (paper Section 2).

    Repeatedly: collect every vertex whose current degree is <= the level
    ``k`` being finalized, peel them together as one parallel round, repeat
    until no vertex is below the threshold, then advance ``k``.  Returns
    core numbers (identical to BZ's) and the list of peel *rounds*, whose
    sizes show the parallel width available to a level-synchronous machine.
    """
    d: Dict[Vertex, int] = {u: graph.degree(u) for u in graph.vertices()}
    alive = set(d)
    core: Dict[Vertex, int] = {}
    rounds: List[List[Vertex]] = []
    k = 0
    while alive:
        # advance k to the minimum remaining degree
        kmin = min(d[u] for u in alive)
        k = max(k, kmin)
        frontier = [u for u in alive if d[u] <= k]
        while frontier:
            rounds.append(frontier)
            next_frontier: List[Vertex] = []
            for u in frontier:
                core[u] = k
                alive.discard(u)
            for u in frontier:
                for v in graph.neighbors(u):
                    if v in alive:
                        d[v] -= 1
            for u in frontier:
                for v in graph.neighbors(u):
                    if v in alive and d[v] <= k and v not in next_frontier:
                        next_frontier.append(v)
            # dedupe while preserving order
            seen = set()
            frontier = [v for v in next_frontier if not (v in seen or seen.add(v))]
    return core, rounds
