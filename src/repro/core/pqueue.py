"""Label-keyed priority queues over the k-order — both staleness policies.

Every order-based insertion walks affected vertices "in k-order" using a
min-priority queue keyed by current OM labels.  Labels are not stable
keys: Backward re-threads queued vertices (keys grow) and OM
splits/rebalances rewrite labels wholesale (keys may *shrink*), so a
plain heap silently misorders.  Both queues here share the same
lazy-rekey machinery (:class:`_LabelHeap`: a heap of
``(labels, seq, vertex)`` entries where superseded entries are discarded
on inspection) and differ only in how staleness is detected:

* :class:`KOrderPQ` — the sequential policy: compare an entry's labels
  with fresh ones at pop time (moves only ever grow keys between the
  caller's operations, so pop-revalidate-repush restores order) and
  rebuild the whole heap when the OM list version changed (a relabel may
  shrink keys, which per-entry checks cannot repair);
* :class:`VersionedPQ` — the concurrent policy of the paper's Appendix E
  (Algorithms 11-13): each entry snapshots ``[labels, v.s, ver]`` at
  enqueue time; the status field detects concurrent moves, the version
  stamp detects relabels, and ``update_version`` re-snapshots every
  member to one consistent version before the next ``front``.

This module is the single implementation; the historical
``repro.parallel.pqueue`` shim was deprecated and has been removed —
importing it raises ``ModuleNotFoundError``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Set, Tuple

Vertex = Hashable

__all__ = ["KOrderPQ", "VersionedPQ"]


class _LabelHeap:
    """Shared lazy-rekey core: a min-heap of ``(labels, seq, vertex)``.

    The monotone ``seq`` tie-breaks equal labels by insertion order and
    keeps vertices themselves out of comparisons (they may be unordered
    types).  Entries are never removed in place — subclasses detect and
    discard superseded entries when they surface at the top.
    """

    __slots__ = ("ko", "_heap", "_seq")

    def __init__(self, korder) -> None:
        self.ko = korder
        self._heap: List[Tuple[tuple, int, Vertex]] = []
        self._seq = 0

    def _push(self, v: Vertex, labels: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (labels, self._seq, v))

    def _rebuild(self, entries) -> None:
        """Re-key the whole heap from ``(vertex, labels)`` pairs."""
        self._heap = []
        self._seq = 0
        for v, labels in entries:
            self._seq += 1
            self._heap.append((labels, self._seq, v))
        heapq.heapify(self._heap)


class KOrderPQ(_LabelHeap):
    """Sequential min-priority queue keyed by current k-order labels.

    Two kinds of staleness can hit queued keys:

    * *moves* — Backward re-threads a queued vertex to a later position:
      its key only grows, so re-validating on pop (pop, compare with fresh
      labels, re-push if changed) restores the order;
    * *relabels* — an OM split/rebalance may rewrite labels wholesale,
      possibly *decreasing* some, which per-entry checks cannot repair.
      We therefore record the O_K list version at key time and rebuild the
      whole heap when it changed — exactly the paper's Appendix E rule
      ("if O_k triggers a relabel operation ... make the heap again").
    """

    __slots__ = ("_members", "_version")

    def __init__(self, korder) -> None:
        super().__init__(korder)
        self._members: Set[Vertex] = set()
        self._version = korder.version

    def __contains__(self, v: Vertex) -> bool:
        return v in self._members

    def __len__(self) -> int:
        return len(self._members)

    def push(self, v: Vertex) -> None:
        if v in self._members:
            return
        self._members.add(v)
        self._push(v, self.ko.labels(v))

    def pop(self) -> Optional[Vertex]:
        """Pop the member with the minimum current k-order, or None."""
        while self._members:
            if self.ko.version != self._version:
                self._rebuild((v, self.ko.labels(v)) for v in self._members)
                self._version = self.ko.version
            labels, _seq, v = heapq.heappop(self._heap)
            if v not in self._members:
                continue  # superseded entry
            fresh = self.ko.labels(v)
            if fresh != labels:
                # v was re-threaded while queued; re-key and retry
                self._push(v, fresh)
                continue
            self._members.discard(v)
            return v
        return None


class VersionedPQ(_LabelHeap):
    """Worker-private priority queue with the Appendix E version protocol.

    Used by the parallel insertion (Algorithm 5) to dequeue affected
    vertices in k-order while other workers concurrently re-thread
    vertices and trigger OM relabels.  Each entry snapshots
    ``[L_b(v), L_t(v), v.s, ver]`` at enqueue time:

    * an entry's *status* ``v.s`` detects that ``v`` moved after
      enqueueing (Algorithm 13 lines 6-7): the dequeuer unlocks and
      forces a re-version;
    * the *version* stamp detects OM relabels, which may rewrite labels
      non-monotonically: whenever the queue's version is stale
      (``ver = ∅``), :meth:`update_version` re-snapshots every member
      (Algorithm 11) before the next ``front``.

    The lock-and-check dance of Algorithm 13 itself lives in
    ``repro.parallel.parallel_insert`` because it owns lock bookkeeping;
    this class provides the queue state and the version protocol.
    """

    __slots__ = ("k", "ver", "_rec")

    def __init__(self, korder, k: int) -> None:
        super().__init__(korder)
        self.k = k
        self.ver: Optional[int] = korder.version
        # member -> (labels, status, version) snapshot
        self._rec: Dict[Vertex, Tuple[tuple, int, int]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rec)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._rec

    # ------------------------------------------------------------------
    def _stable_labels(self, v: Vertex):
        """Read (labels, status) surviving concurrent moves.  Under the
        step-atomic simulator this returns first try; under threads it
        retries through torn reads (mover's status bump guarantees
        progress)."""
        while True:
            s = self.ko.status(v)
            if s % 2 == 1:
                continue
            try:
                labels = self.ko.labels(v)
            except AttributeError:
                continue
            if self.ko.status(v) == s:
                return labels, s

    def _version_relaxed(self) -> int:
        """Read ``O.ver`` — a designed racy read (Appendix E): staleness
        is detected by the re-read after snapshotting, so the race
        detector sees it as a relaxed ``("om", "version")`` access."""
        tr = self.ko.trace
        if tr is not None:
            tr.read(("om", "version"), relaxed=True)
        return self.ko.version

    def enqueue(self, v: Vertex) -> None:
        """Algorithm 12: snapshot and insert; go stale on any inconsistency."""
        if v in self._rec:
            return
        ver0 = self._version_relaxed()
        labels, s0 = self._stable_labels(v)
        self._rec[v] = (labels, s0, ver0)
        self._push(v, labels)
        if (
            s0 % 2 == 1
            or s0 != self.ko.status(v)
            or ver0 != self._version_relaxed()
            or self.ver is None
            or ver0 != self.ver
        ):
            self.ver = None  # delayed re-version at next dequeue

    def update_version(self) -> int:
        """Algorithm 11: bring every member to one consistent version.

        Returns the number of members re-snapshotted (the dequeuer charges
        that as heap-rebuild cost).  Spins while a relabel is in flight or
        a member is mid-move (only observable under the thread backend;
        in the step-atomic simulator each attempt succeeds first try).
        """
        while True:
            ver2 = self._version_relaxed()
            if self.ko.relabels_in_progress:
                continue
            fresh: Dict[Vertex, Tuple[tuple, int, int]] = {}
            ok = True
            for v in self._rec:
                labels, s = self._stable_labels(v)
                fresh[v] = (labels, s, ver2)
            if not ok or ver2 != self._version_relaxed() or self.ko.relabels_in_progress:
                continue
            self._rec = fresh
            self._rebuild((v, rec[0]) for v, rec in fresh.items())
            self.ver = ver2
            return len(fresh)

    def front(self) -> Optional[Vertex]:
        """The member with the minimum snapshotted labels (no removal).

        Callers must have refreshed the version first (``ver`` not None).
        """
        while self._heap:
            labels, _seq, v = self._heap[0]
            rec = self._rec.get(v)
            if rec is None or rec[0] != labels:
                heapq.heappop(self._heap)  # superseded entry
                continue
            return v
        return None

    def remove(self, v: Vertex) -> None:
        """Drop ``v`` from the queue (entry removal is lazy)."""
        self._rec.pop(v, None)

    def recorded_status(self, v: Vertex) -> int:
        """The status snapshot taken when ``v`` was (re)recorded."""
        return self._rec[v][1]
