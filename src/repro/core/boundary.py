"""The intern-once facade boundary shared by all maintenance facades.

Every user-facing maintainer (:class:`~repro.core.maintainer.OrderMaintainer`,
:class:`~repro.core.maintainer.TraversalMaintainer`,
:class:`~repro.parallel.batch.ParallelOrderMaintainer`,
:class:`~repro.parallel.threads.ThreadedOrderMaintainer`) accepts a public
graph whose vertices may be arbitrary hashable ids, but runs its
algorithms *int-natively* over the array substrate.  :class:`Boundary`
is where the two domains meet:

* given a :class:`~repro.graph.dynamic_graph.DynamicGraph`, it unwraps
  the shared :class:`~repro.graph.intgraph.IntGraph` + interner — the
  wrapper keeps observing every mutation because the substrate is shared,
  not copied;
* given an :class:`~repro.graph.intgraph.IntGraph` or any other
  :class:`~repro.graph.core.GraphCore` substrate (e.g. the legacy
  :class:`~repro.graph.dictgraph.DictGraph`), ids pass through untouched
  — this is what the representation differential tests and the
  dict-vs-array benchmark exercise.

Inputs (edge endpoints) are interned exactly once per call; outputs
(core maps, k-order sequences, per-edge ``v_star``/``v_plus`` stats) are
un-interned on the way out.  While the interner is in the *identity
regime* (dense-int external ids, the common case) both directions are
skipped entirely, so dense-int workloads pay nothing for the
compatibility layer.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Sequence, Tuple

from repro.core.state import InsertStats
from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Boundary"]


class Boundary:
    """External-id ↔ int-id translation at a maintenance facade."""

    __slots__ = ("substrate", "interner", "public")

    def __init__(self, graph: Any) -> None:
        if isinstance(graph, DynamicGraph):
            #: What the algorithms run on (IntGraph for wrapped graphs).
            self.substrate = graph.ig
            #: Shared id mapping; None when ids already pass through.
            self.interner = graph.interner
        else:
            self.substrate = graph
            self.interner = None
        #: What ``maintainer.graph`` returns to users.
        self.public = graph

    # ------------------------------------------------------------------
    # inward (external -> int); interning registers new vertices
    # ------------------------------------------------------------------
    def vertex_in(self, u: Vertex):
        it = self.interner
        return it.intern(u) if it is not None else u

    def edges_in(self, edges: Sequence[Edge]) -> List[Tuple]:
        it = self.interner
        if it is None:
            return list(edges)
        intern = it.intern
        return [(intern(u), intern(v)) for u, v in edges]

    # ------------------------------------------------------------------
    # outward (int -> external); skipped in the identity regime
    # ------------------------------------------------------------------
    @property
    def translating(self) -> bool:
        it = self.interner
        return it is not None and not it.identity

    def vertex_out(self, i) -> Vertex:
        return self.interner.external(i) if self.translating else i

    def vertices_out(self, ids: Iterable) -> List[Vertex]:
        if not self.translating:
            return list(ids)
        ext = self.interner.external
        return [ext(i) for i in ids]

    def core_map_out(self, core) -> dict:
        """Snapshot a core map (slot map or dict) as an external-keyed dict."""
        if not self.translating:
            return dict(core)
        ext = self.interner.external
        return {ext(i): k for i, k in core.items()}

    def stats_out(self, stats):
        """Un-intern the vertex lists of one stats object or a list of them.

        Translation happens in place — the facade owns the objects the
        workers filled in.  ``RemoveStats.v_plus`` aliases ``v_star`` (a
        property), so only genuine fields are rewritten.
        """
        if not self.translating:
            return stats
        ext = self.interner.external
        for s in stats if isinstance(stats, list) else (stats,):
            s.v_star = [ext(i) for i in s.v_star]
            if isinstance(s, InsertStats):
                s.v_plus = [ext(i) for i in s.v_plus]
        return stats
