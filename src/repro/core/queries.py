"""Query helpers over (maintained) core numbers.

Core *maintenance* keeps ``core[u]`` current; these helpers answer the
questions applications actually ask (paper Section 1's use cases:
influence, density, robustness):

* the k-core subgraph and its connected components (Definition 3.1);
* k-shells (vertices with core exactly k) and the innermost core;
* subcores (Definition 3.3): maximal connected same-core regions;
* the degeneracy (max core) and a degeneracy ordering;
* core-based density screening.

All functions take the core map explicitly, so they work identically with
any maintainer (Order, Traversal, parallel) or a fresh decomposition.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable

__all__ = [
    "k_core_vertices",
    "k_core_subgraph",
    "k_shell",
    "in_k_core",
    "shell_histogram",
    "innermost_core",
    "subcore",
    "all_subcores",
    "degeneracy",
    "degeneracy_ordering",
    "core_components",
]


def k_core_vertices(core: Dict[Vertex, int], k: int) -> Set[Vertex]:
    """Vertices of the k-core: everyone with core number >= k."""
    return {u for u, c in core.items() if c >= k}


def in_k_core(core: Dict[Vertex, int], u: Vertex, k: int) -> bool:
    """k-core membership test for a single vertex (the point query the
    serving engine answers without materializing the whole k-core).
    Unknown vertices are in no core."""
    c = core.get(u)
    return c is not None and c >= k


def shell_histogram(core: Dict[Vertex, int]) -> Dict[int, int]:
    """``{k: |k-shell|}`` over the given core map — the Figure 3 quantity
    computed from a snapshot instead of a fresh decomposition."""
    out: Dict[int, int] = {}
    for c in core.values():
        out[c] = out.get(c, 0) + 1
    return dict(sorted(out.items()))


def k_core_subgraph(graph: DynamicGraph, core: Dict[Vertex, int], k: int) -> DynamicGraph:
    """The induced k-core subgraph G_k (Definition 3.1).

    Every vertex in the result has degree >= k within it (checked by the
    property tests), and ``G_{k+1} ⊆ G_k``.
    """
    return graph.subgraph(k_core_vertices(core, k))


def k_shell(core: Dict[Vertex, int], k: int) -> Set[Vertex]:
    """Vertices with core number exactly k (the k-shell)."""
    return {u for u, c in core.items() if c == k}


def innermost_core(core: Dict[Vertex, int]) -> Tuple[int, Set[Vertex]]:
    """``(k_max, vertices at k_max)`` — the densest shell."""
    if not core:
        return 0, set()
    kmax = max(core.values())
    return kmax, k_shell(core, kmax)


def subcore(graph: DynamicGraph, core: Dict[Vertex, int], u: Vertex) -> Set[Vertex]:
    """The k-subcore containing ``u`` (Definition 3.3): the maximal
    connected set of vertices sharing u's core number, reachable from u
    through same-core vertices.  This is the region the Traversal
    algorithms search (their ``V+``)."""
    k = core[u]
    seen = {u}
    frontier = [u]
    while frontier:
        nxt = []
        for w in frontier:
            for v in graph.neighbors(w):
                if v not in seen and core[v] == k:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return seen


def all_subcores(graph: DynamicGraph, core: Dict[Vertex, int]) -> List[Set[Vertex]]:
    """Every subcore, as a partition of V (ordered by discovery)."""
    out: List[Set[Vertex]] = []
    assigned: Set[Vertex] = set()
    for u in graph.vertices():
        if u not in assigned:
            sc = subcore(graph, core, u)
            assigned.update(sc)
            out.append(sc)
    return out


def degeneracy(core: Dict[Vertex, int]) -> int:
    """The graph's degeneracy == the maximum core number."""
    return max(core.values(), default=0)


def degeneracy_ordering(
    graph: DynamicGraph, core: Dict[Vertex, int]
) -> List[Vertex]:
    """An ordering in which every vertex has at most ``degeneracy`` later
    neighbors — by definition, any k-order works; we produce one by a
    fresh peel restricted to the core structure (stable and cheap)."""
    from repro.core.decomposition import core_decomposition

    return core_decomposition(graph).order


def core_components(
    graph: DynamicGraph, core: Dict[Vertex, int], k: int
) -> List[Set[Vertex]]:
    """Connected components of the k-core subgraph — the distinct dense
    communities at density level k."""
    members = k_core_vertices(core, k)
    out: List[Set[Vertex]] = []
    seen: Set[Vertex] = set()
    for u in members:
        if u in seen:
            continue
        comp = {u}
        frontier = [u]
        while frontier:
            nxt = []
            for w in frontier:
                for v in graph.neighbors(w):
                    if v in members and v not in comp:
                        comp.add(v)
                        nxt.append(v)
            frontier = nxt
        seen.update(comp)
        out.append(comp)
    return out
