"""User-facing maintenance facades.

:class:`OrderMaintainer` — the sequential Simplified-Order algorithm (OI/OR
of the paper, [12]): keeps core numbers, the k-order, remaining
out-degrees and lazy mcds across an arbitrary stream of edge insertions
and removals.

:class:`TraversalMaintainer` — the sequential Traversal baseline (TI/TR,
[27]): keeps only core numbers.

Both expose the same interface so benchmarks and examples can swap them:

>>> from repro.graph import DynamicGraph
>>> g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
>>> m = OrderMaintainer(g)
>>> m.core(0)
2
>>> _ = m.insert_edge(0, 3); _ = m.insert_edge(1, 3); _ = m.insert_edge(2, 3)
>>> m.core(3)
3
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.decomposition import core_decomposition
from repro.core.order_insert import order_insert_edge
from repro.core.order_remove import order_remove_edge
from repro.core.state import InsertStats, OrderState, RemoveStats
from repro.core.traversal import traversal_insert_edge, traversal_remove_edge
from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["OrderMaintainer", "TraversalMaintainer"]


class OrderMaintainer:
    """Sequential order-based core maintenance (the paper's OI + OR).

    Parameters
    ----------
    graph:
        The initial graph.  The maintainer takes ownership: all edge
        changes must go through :meth:`insert_edge` / :meth:`remove_edge`.
    strategy:
        BZ tie-break strategy for the initial k-order (paper Section 3.1).
    capacity:
        OM-list group capacity (see :class:`repro.om.list_labels.OMList`).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        strategy: str = "small-degree-first",
        capacity: int = 64,
        seed: int = 0,
    ) -> None:
        self.state = OrderState.from_graph(
            graph, strategy=strategy, capacity=capacity, seed=seed
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self.state.graph

    def core(self, u: Vertex) -> int:
        """Current core number of ``u``."""
        return self.state.korder.core[u]

    def cores(self) -> Dict[Vertex, int]:
        """Snapshot of all core numbers."""
        return dict(self.state.korder.core)

    def korder_sequence(self, k: int) -> List[Vertex]:
        """The current O_k sequence (diagnostics)."""
        return self.state.korder.sequence(k)

    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> InsertStats:
        """Insert one edge; cores/k-order repaired in O(|E+| log |E+|)."""
        return order_insert_edge(self.state, u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> RemoveStats:
        """Remove one edge; cores/k-order repaired in O(|E*|)."""
        return order_remove_edge(self.state, u, v)

    def insert_edges(self, edges: Iterable[Edge]) -> List[InsertStats]:
        """Insert a batch sequentially (the paper's 1-worker OI)."""
        return [self.insert_edge(u, v) for u, v in edges]

    def remove_edges(self, edges: Iterable[Edge]) -> List[RemoveStats]:
        """Remove a batch sequentially (the paper's 1-worker OR)."""
        return [self.remove_edge(u, v) for u, v in edges]

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Assert all steady-state invariants (differential vs. BZ)."""
        self.state.check_invariants()


class TraversalMaintainer:
    """Sequential Traversal core maintenance (the paper's TI + TR)."""

    def __init__(self, graph: DynamicGraph) -> None:
        self.graph = graph
        self._core: Dict[Vertex, int] = dict(core_decomposition(graph).core)

    # ------------------------------------------------------------------
    def core(self, u: Vertex) -> int:
        return self._core[u]

    def cores(self) -> Dict[Vertex, int]:
        return dict(self._core)

    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> InsertStats:
        return traversal_insert_edge(self.graph, self._core, u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> RemoveStats:
        return traversal_remove_edge(self.graph, self._core, u, v)

    def insert_edges(self, edges: Iterable[Edge]) -> List[InsertStats]:
        return [self.insert_edge(u, v) for u, v in edges]

    def remove_edges(self, edges: Iterable[Edge]) -> List[RemoveStats]:
        return [self.remove_edge(u, v) for u, v in edges]

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Differential check against a fresh BZ decomposition."""
        fresh = core_decomposition(self.graph).core
        for u in self.graph.vertices():
            assert self._core[u] == fresh[u], (
                f"core[{u!r}]={self._core[u]} != BZ {fresh[u]}"
            )
