"""User-facing maintenance facades.

:class:`OrderMaintainer` — the sequential Simplified-Order algorithm (OI/OR
of the paper, [12]): keeps core numbers, the k-order, remaining
out-degrees and lazy mcds across an arbitrary stream of edge insertions
and removals.

:class:`TraversalMaintainer` — the sequential Traversal baseline (TI/TR,
[27]): keeps only core numbers.

Both expose the same interface so benchmarks and examples can swap them:

>>> from repro.graph import DynamicGraph
>>> g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
>>> m = OrderMaintainer(g)
>>> m.core(0)
2
>>> _ = m.insert_edge(0, 3); _ = m.insert_edge(1, 3); _ = m.insert_edge(2, 3)
>>> m.core(3)
3
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.boundary import Boundary
from repro.core.decomposition import core_decomposition
from repro.core.order_insert import order_insert_edge
from repro.core.order_remove import order_remove_edge
from repro.core.state import InsertStats, OrderState, RemoveStats
from repro.core.traversal import traversal_insert_edge, traversal_remove_edge
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.storage import make_vertex_map

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["OrderMaintainer", "TraversalMaintainer"]


class OrderMaintainer:
    """Sequential order-based core maintenance (the paper's OI + OR).

    Parameters
    ----------
    graph:
        The initial graph.  The maintainer takes ownership: all edge
        changes must go through :meth:`insert_edge` / :meth:`remove_edge`.
    strategy:
        BZ tie-break strategy for the initial k-order (paper Section 3.1).
    capacity:
        OM-list group capacity (see :class:`repro.om.list_labels.OMList`).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        strategy: str = "small-degree-first",
        capacity: int = 64,
        seed: int = 0,
    ) -> None:
        # External ids are interned once here at the boundary; the
        # algorithms below run int-natively over the array substrate.
        self.boundary = Boundary(graph)
        self.state = OrderState.from_graph(
            self.boundary.substrate, strategy=strategy, capacity=capacity, seed=seed
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self.boundary.public

    def core(self, u: Vertex) -> int:
        """Current core number of ``u``."""
        return self.state.korder.core[self.boundary.vertex_in(u)]

    def cores(self) -> Dict[Vertex, int]:
        """Snapshot of all core numbers (external ids)."""
        return self.boundary.core_map_out(self.state.korder.core)

    def korder_sequence(self, k: int) -> List[Vertex]:
        """The current O_k sequence (diagnostics, external ids)."""
        return self.boundary.vertices_out(self.state.korder.sequence(k))

    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> InsertStats:
        """Insert one edge; cores/k-order repaired in O(|E+| log |E+|)."""
        b = self.boundary
        return b.stats_out(
            order_insert_edge(self.state, b.vertex_in(u), b.vertex_in(v))
        )

    def remove_edge(self, u: Vertex, v: Vertex) -> RemoveStats:
        """Remove one edge; cores/k-order repaired in O(|E*|)."""
        b = self.boundary
        return b.stats_out(
            order_remove_edge(self.state, b.vertex_in(u), b.vertex_in(v))
        )

    def insert_edges(self, edges: Iterable[Edge]) -> List[InsertStats]:
        """Insert a batch sequentially (the paper's 1-worker OI)."""
        return [self.insert_edge(u, v) for u, v in edges]

    def remove_edges(self, edges: Iterable[Edge]) -> List[RemoveStats]:
        """Remove a batch sequentially (the paper's 1-worker OR)."""
        return [self.remove_edge(u, v) for u, v in edges]

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Assert all steady-state invariants (differential vs. BZ)."""
        self.state.check_invariants()


class TraversalMaintainer:
    """Sequential Traversal core maintenance (the paper's TI + TR)."""

    def __init__(self, graph: DynamicGraph) -> None:
        self.boundary = Boundary(graph)
        sub = self.boundary.substrate
        self._core = make_vertex_map(sub, core_decomposition(sub).core)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self.boundary.public

    def core(self, u: Vertex) -> int:
        return self._core[self.boundary.vertex_in(u)]

    def cores(self) -> Dict[Vertex, int]:
        return self.boundary.core_map_out(self._core)

    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> InsertStats:
        b = self.boundary
        return b.stats_out(
            traversal_insert_edge(
                b.substrate, self._core, b.vertex_in(u), b.vertex_in(v)
            )
        )

    def remove_edge(self, u: Vertex, v: Vertex) -> RemoveStats:
        b = self.boundary
        return b.stats_out(
            traversal_remove_edge(
                b.substrate, self._core, b.vertex_in(u), b.vertex_in(v)
            )
        )

    def insert_edges(self, edges: Iterable[Edge]) -> List[InsertStats]:
        return [self.insert_edge(u, v) for u, v in edges]

    def remove_edges(self, edges: Iterable[Edge]) -> List[RemoveStats]:
        return [self.remove_edge(u, v) for u, v in edges]

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Differential check against a fresh BZ decomposition."""
        sub = self.boundary.substrate
        fresh = core_decomposition(sub).core
        for u in sub.vertices():
            assert self._core[u] == fresh[u], (
                f"core[{u!r}]={self._core[u]} != BZ {fresh[u]}"
            )
