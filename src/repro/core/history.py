"""Core-number history over a dynamic stream.

The paper's related work includes querying *historical* k-cores over time
windows (Yu et al., VLDB'21 — reference [35]).  Maintenance makes that
cheap to support: every operation already knows exactly which vertices
changed (``V*``), so recording ``(time, vertex, old, new)`` deltas costs
O(|V*|) per operation instead of snapshotting cores.

:class:`CoreHistory` wraps any maintainer exposing
``insert_edge``/``remove_edge`` with per-op ``v_star`` stats (the Order and
Traversal maintainers) and answers:

* ``core_at(u, t)`` — u's core number right after logical time ``t``;
* ``series(u)`` — u's full (time, core) trajectory;
* ``changed_between(t0, t1)`` — vertices whose core moved in a window;
* ``shell_size_at(k, t)`` — |k-shell| at a past time.

Logical time advances by one per applied operation (timestamps can be
attached via ``record_marker``).
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, List, Optional, Set, Tuple

Vertex = Hashable

__all__ = ["CoreHistory"]


class CoreHistory:
    """Delta-encoded core-number history around a maintainer."""

    def __init__(self, maintainer) -> None:
        self.m = maintainer
        self.t = 0
        # per-vertex parallel arrays: times[], values[] (value from time on)
        self._times: Dict[Vertex, List[int]] = {}
        self._values: Dict[Vertex, List[int]] = {}
        self._markers: List[Tuple[int, object]] = []
        for u, k in maintainer.cores().items():
            self._times[u] = [0]
            self._values[u] = [k]

    # ------------------------------------------------------------------
    def _record(self, u: Vertex, new: int) -> None:
        ts = self._times.setdefault(u, [])
        vs = self._values.setdefault(u, [])
        if vs and ts[-1] == self.t:
            vs[-1] = new
        else:
            ts.append(self.t)
            vs.append(new)

    def insert_edge(self, u: Vertex, v: Vertex):
        """Apply an insertion and record the resulting core deltas."""
        self.t += 1
        stats = self.m.insert_edge(u, v)
        for w in set(stats.v_star) | {u, v}:
            self._record(w, self.m.core(w))
        return stats

    def remove_edge(self, u: Vertex, v: Vertex):
        """Apply a removal and record the resulting core deltas."""
        self.t += 1
        stats = self.m.remove_edge(u, v)
        for w in stats.v_star:
            self._record(w, self.m.core(w))
        return stats

    def record_epoch(self, touched) -> int:
        """Advance one logical step and record the *current* core of every
        vertex in ``touched``.

        This is the batch-commit entry point used by the serving engine
        (:mod:`repro.service`): the engine applies a whole parallel batch
        through its maintainer, collects the touched vertices (batch
        endpoints plus every ``V*``), and records them here as a single
        delta — one epoch per batch instead of one time step per edge.
        Vertices the maintainer no longer knows are skipped.  Returns the
        new logical time (== the committed epoch number).
        """
        self.t += 1
        for w in touched:
            try:
                k = self.m.core(w)
            except KeyError:
                continue
            self._record(w, k)
        return self.t

    def record_marker(self, label: object) -> None:
        """Attach an application timestamp/label to the current time."""
        self._markers.append((self.t, label))

    # ------------------------------------------------------------------
    def core_at(self, u: Vertex, t: int) -> Optional[int]:
        """u's core number right after logical time ``t`` (None if u was
        not yet known)."""
        ts = self._times.get(u)
        if not ts:
            return None
        i = bisect.bisect_right(ts, t) - 1
        if i < 0:
            return None
        return self._values[u][i]

    def cores_at(self, t: int) -> Dict[Vertex, int]:
        """The full core map right after logical time ``t`` — an
        epoch-versioned snapshot materialized from the per-vertex deltas.
        Vertices first seen after ``t`` are absent (they did not exist in
        that snapshot)."""
        out: Dict[Vertex, int] = {}
        for u in self._times:
            k = self.core_at(u, t)
            if k is not None:
                out[u] = k
        return out

    def series(self, u: Vertex) -> List[Tuple[int, int]]:
        """The full (time, core) change series of u."""
        return list(zip(self._times.get(u, []), self._values.get(u, [])))

    def changed_between(self, t0: int, t1: int) -> Set[Vertex]:
        """Vertices whose core changed in the window (t0, t1]."""
        out: Set[Vertex] = set()
        for u, ts in self._times.items():
            lo = bisect.bisect_right(ts, t0)
            hi = bisect.bisect_right(ts, t1)
            if hi > lo:
                # exclude no-op records (vertex touched but core unchanged)
                before = self.core_at(u, t0)
                if any(self._values[u][i] != before for i in range(lo, hi)):
                    out.add(u)
        return out

    def shell_size_at(self, k: int, t: int) -> int:
        """Number of vertices with core exactly ``k`` right after time t."""
        return sum(1 for u in self._times if self.core_at(u, t) == k)

    def markers(self) -> List[Tuple[int, object]]:
        return list(self._markers)

    # convenience passthroughs
    def core(self, u: Vertex) -> int:
        return self.m.core(u)

    def cores(self) -> Dict[Vertex, int]:
        return self.m.cores()

    def check(self) -> None:
        """Maintainer invariants + history-vs-present consistency."""
        self.m.check()
        for u, k in self.m.cores().items():
            assert self.core_at(u, self.t) == k, (
                f"history of {u!r} out of sync: "
                f"{self.core_at(u, self.t)} != {k}"
            )
