"""Sequential Simplified-Order edge insertion — OI (paper Algorithms 7-9).

Given an edge inserted as ``u -> v`` with ``u`` the k-order-earlier
endpoint and ``K = core[u]``, the candidate set ``V*`` (vertices whose core
number rises to K+1) is exactly the set satisfying Theorem 3.1:

    w in V*  iff  core[w] = K  and  d_in*(w) + d_out^+(w) > K

The algorithm discovers it by walking affected vertices in k-order with a
min-priority queue:

* ``Forward(w)`` — w qualifies: add to V*, push its core-K successors;
* ``Backward(w)`` — w was reachable but cannot qualify
  (``d_in* + d_out^+ <= K`` with ``d_in* > 0``): peel it and, cascading
  through ``DoPre``/``DoPost``, every candidate its failure invalidates;
  peeled vertices are re-threaded right after the Backward seed so the
  k-order stays a valid peeling order;
* otherwise skip.

Ending phase: survivors get ``core = K+1``, are spliced (in V*-insertion
order) at the *head* of ``O_{K+1}``, and their ``d_out^+`` is recomputed
from the new order.  All ``d_in*`` provably return to 0.

The module also provides :class:`KOrderPQ`, the label-keyed priority queue:
entries are re-keyed lazily when Backward moved a queued vertex (the
sequential analogue of the paper's version-stamped queue of Appendix E).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.state import InsertStats, OrderState

Vertex = Hashable

__all__ = ["order_insert_edge", "KOrderPQ"]


class KOrderPQ:
    """Min-priority queue over vertices keyed by current k-order labels.

    Two kinds of staleness can hit queued keys:

    * *moves* — Backward re-threads a queued vertex to a later position:
      its key only grows, so re-validating on pop (pop, compare with fresh
      labels, re-push if changed) restores the order;
    * *relabels* — an OM split/rebalance may rewrite labels wholesale,
      possibly *decreasing* some, which per-entry checks cannot repair.
      We therefore record the O_K list version at key time and rebuild the
      whole heap when it changed — exactly the paper's Appendix E rule
      ("if O_k triggers a relabel operation ... make the heap again").
    """

    __slots__ = ("_korder", "_heap", "_members", "_seq", "_version")

    def __init__(self, korder) -> None:
        self._korder = korder
        self._heap: List[Tuple[tuple, int, Vertex]] = []
        self._members: Set[Vertex] = set()
        self._seq = 0
        self._version = korder.version

    def __contains__(self, v: Vertex) -> bool:
        return v in self._members

    def __len__(self) -> int:
        return len(self._members)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def push(self, v: Vertex) -> None:
        if v in self._members:
            return
        self._members.add(v)
        heapq.heappush(self._heap, (self._korder.labels(v), self._next_seq(), v))

    def _rebuild(self) -> None:
        self._heap = [
            (self._korder.labels(v), self._next_seq(), v) for v in self._members
        ]
        heapq.heapify(self._heap)
        self._version = self._korder.version

    def pop(self) -> Optional[Vertex]:
        """Pop the member with the minimum current k-order, or None."""
        while self._members:
            if self._korder.version != self._version:
                self._rebuild()
            labels, _seq, v = heapq.heappop(self._heap)
            if v not in self._members:
                continue  # superseded entry
            fresh = self._korder.labels(v)
            if fresh != labels:
                # v was re-threaded while queued; re-key and retry
                heapq.heappush(self._heap, (fresh, self._next_seq(), v))
                continue
            self._members.discard(v)
            return v
        return None


def order_insert_edge(state: OrderState, a: Vertex, b: Vertex) -> InsertStats:
    """Insert edge ``(a, b)`` and repair cores / k-order / d_out^+ / mcd.

    Returns the instrumentation record (``V*`` and ``V+``).
    """
    graph, ko = state.graph, state.korder
    state.ensure_vertex(a)
    state.ensure_vertex(b)
    if graph.has_edge(a, b):
        raise ValueError(f"edge already present: ({a!r}, {b!r})")

    # Orient the edge u -> v with u the k-order-earlier endpoint.
    u, v = (a, b) if ko.precedes(a, b) else (b, a)
    K = ko.core[u]

    # Materialize d_out^+(u) *before* the edge exists — a post-insertion
    # recompute would already count v and the +1 below would double-count.
    new_dout = state.ensure_d_out(u) + 1

    graph.add_edge(u, v)
    # Incremental mcd upkeep for the new edge (Definition 3.8); core
    # changes below re-invalidate whatever this touches.
    if state.mcd.get(u) is not None and ko.core[v] >= K:
        state.mcd[u] += 1  # type: ignore[operator]
    if state.mcd.get(v) is not None and K >= ko.core[v]:
        state.mcd[v] += 1  # type: ignore[operator]

    state.d_out[u] = new_dout
    stats = InsertStats()
    if new_dout <= K:
        return stats  # Algorithm 7 line 3: nothing to maintain

    d_in: Dict[Vertex, int] = {}
    # V* as insertion-ordered dict: Backward removals delete keys, so the
    # remaining iteration order is "the order w was (last) added to V*".
    v_star: Dict[Vertex, None] = {}
    v_plus: Set[Vertex] = set()

    q = KOrderPQ(ko)
    q.push(u)

    # ------------------------------------------------------------------
    def forward(w: Vertex) -> None:
        """Algorithm 8: w joins V*; its core-K successors become reachable."""
        v_star[w] = None
        v_plus.add(w)
        for x in ko.post(graph, w, k=K):
            d_in[x] = d_in.get(x, 0) + 1
            q.push(x)

    def do_pre(w: Vertex, r: deque, in_r: Set[Vertex]) -> None:
        """Algorithm 9 lines 10-13: w turned gray, so its predecessors in
        V* lose one remaining out-degree."""
        for x in ko.pre(graph, w, k=K):
            if x in v_star:
                state.d_out[x] -= 1
                if d_in.get(x, 0) + state.d_out[x] <= K and x not in in_r:
                    r.append(x)
                    in_r.add(x)

    def do_post(w: Vertex, r: deque, in_r: Set[Vertex]) -> None:
        """Algorithm 9 lines 14-18: w left V*, so successors that counted
        it as a candidate predecessor lose one candidate in-degree."""
        for x in ko.post(graph, w, k=K):
            if d_in.get(x, 0) > 0:
                d_in[x] -= 1
                if (
                    x in v_star
                    and d_in[x] + state.d_out[x] <= K
                    and x not in in_r
                ):
                    r.append(x)
                    in_r.add(x)

    def backward(w: Vertex) -> None:
        """Algorithm 9: w cannot be a candidate; cascade the withdrawal."""
        v_plus.add(w)
        anchor = w
        r: deque = deque()
        in_r: Set[Vertex] = set()
        do_pre(w, r, in_r)
        state.d_out[w] += d_in.get(w, 0)
        d_in[w] = 0
        while r:
            x = r.popleft()
            in_r.discard(x)
            del v_star[x]
            do_pre(x, r, in_r)
            do_post(x, r, in_r)
            ko.move_after_vertex(anchor, x)
            anchor = x
            state.d_out[x] += d_in.get(x, 0)
            d_in[x] = 0

    # ------------------------------------------------------------------
    # Algorithm 7 main loop: traverse reachable vertices in k-order.
    while True:
        w = q.pop()
        if w is None:
            break
        if d_in.get(w, 0) + state.ensure_d_out(w) > K:
            forward(w)
        elif d_in.get(w, 0) > 0:
            backward(w)
        # else: skip — w cannot be affected (Algorithm 7's silent case)

    # ------------------------------------------------------------------
    # Ending phase (Algorithm 7 lines 9-10).
    winners = list(v_star)
    stats.v_star = winners
    stats.v_plus = list(v_plus)
    if winners:
        prev: Optional[Vertex] = None
        for w in winners:
            # One status window per candidate (never observably unlinked):
            # first to the head of O_{K+1}, the rest chained behind it so
            # the final segment order equals the V*-insertion order.
            if prev is None:
                ko.promote_head(w, K + 1)
            else:
                ko.promote_after(prev, w, K + 1)
            prev = w
        for w in winners:
            state.refresh_d_out(w)
        state.invalidate_mcd_around(winners)
    return stats
