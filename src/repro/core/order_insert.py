"""Sequential Simplified-Order edge insertion — OI (paper Algorithms 7-9).

Given an edge inserted as ``u -> v`` with ``u`` the k-order-earlier
endpoint and ``K = core[u]``, the candidate set ``V*`` (vertices whose core
number rises to K+1) is exactly the set satisfying Theorem 3.1:

    w in V*  iff  core[w] = K  and  d_in*(w) + d_out^+(w) > K

The algorithm discovers it by walking affected vertices in k-order with a
min-priority queue:

* ``Forward(w)`` — w qualifies: add to V*, push its core-K successors;
* ``Backward(w)`` — w was reachable but cannot qualify
  (``d_in* + d_out^+ <= K`` with ``d_in* > 0``): peel it and, cascading
  through ``DoPre``/``DoPost``, every candidate its failure invalidates;
  peeled vertices are re-threaded right after the Backward seed so the
  k-order stays a valid peeling order;
* otherwise skip.

Ending phase: survivors get ``core = K+1``, are spliced (in V*-insertion
order) at the *head* of ``O_{K+1}``, and their ``d_out^+`` is recomputed
from the new order.  All ``d_in*`` provably return to 0.

The traversal uses :class:`~repro.core.pqueue.KOrderPQ`, the sequential
variant of the label-keyed priority queue (re-exported here for backward
compatibility): entries are re-keyed lazily when Backward moved a queued
vertex — the sequential analogue of the paper's version-stamped queue of
Appendix E, which lives beside it in :mod:`repro.core.pqueue`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Optional, Set

from repro.core.pqueue import KOrderPQ
from repro.core.state import InsertStats, OrderState
from repro.graph.storage import raw_map

Vertex = Hashable

__all__ = ["order_insert_edge", "KOrderPQ"]


def order_insert_edge(state: OrderState, a: Vertex, b: Vertex) -> InsertStats:
    """Insert edge ``(a, b)`` and repair cores / k-order / d_out^+ / mcd.

    Returns the instrumentation record (``V*`` and ``V+``).
    """
    graph, ko = state.graph, state.korder
    state.ensure_vertex(a)
    state.ensure_vertex(b)
    if graph.has_edge(a, b):
        raise ValueError(f"edge already present: ({a!r}, {b!r})")

    # Every registered vertex has core/mcd/d_out entries, so the kernel
    # indexes the raw storage when untraced (C-speed on both substrates).
    if state.trace is None:
        core, mcd, d_out = raw_map(ko.core), raw_map(state.mcd), raw_map(state.d_out)
    else:
        core, mcd, d_out = ko.core, state.mcd, state.d_out

    # Orient the edge u -> v with u the k-order-earlier endpoint.
    u, v = (a, b) if ko.precedes(a, b) else (b, a)
    K = core[u]

    # Materialize d_out^+(u) *before* the edge exists — a post-insertion
    # recompute would already count v and the +1 below would double-count.
    new_dout = state.ensure_d_out(u) + 1

    graph.add_edge(u, v)
    # Incremental mcd upkeep for the new edge (Definition 3.8); core
    # changes below re-invalidate whatever this touches.
    if mcd[u] is not None and core[v] >= K:
        mcd[u] += 1  # type: ignore[operator]
    if mcd[v] is not None and K >= core[v]:
        mcd[v] += 1  # type: ignore[operator]

    d_out[u] = new_dout
    stats = InsertStats()
    if new_dout <= K:
        return stats  # Algorithm 7 line 3: nothing to maintain

    d_in: Dict[Vertex, int] = {}
    # V* as insertion-ordered dict: Backward removals delete keys, so the
    # remaining iteration order is "the order w was (last) added to V*".
    v_star: Dict[Vertex, None] = {}
    v_plus: Set[Vertex] = set()

    q = KOrderPQ(ko)
    q.push(u)

    # ------------------------------------------------------------------
    def forward(w: Vertex) -> None:
        """Algorithm 8: w joins V*; its core-K successors become reachable."""
        v_star[w] = None
        v_plus.add(w)
        for x in ko.post(graph, w, k=K):
            d_in[x] = d_in.get(x, 0) + 1
            q.push(x)

    def do_pre(w: Vertex, r: deque, in_r: Set[Vertex]) -> None:
        """Algorithm 9 lines 10-13: w turned gray, so its predecessors in
        V* lose one remaining out-degree."""
        for x in ko.pre(graph, w, k=K):
            if x in v_star:
                d_out[x] -= 1
                if d_in.get(x, 0) + d_out[x] <= K and x not in in_r:
                    r.append(x)
                    in_r.add(x)

    def do_post(w: Vertex, r: deque, in_r: Set[Vertex]) -> None:
        """Algorithm 9 lines 14-18: w left V*, so successors that counted
        it as a candidate predecessor lose one candidate in-degree."""
        for x in ko.post(graph, w, k=K):
            if d_in.get(x, 0) > 0:
                d_in[x] -= 1
                if (
                    x in v_star
                    and d_in[x] + d_out[x] <= K
                    and x not in in_r
                ):
                    r.append(x)
                    in_r.add(x)

    def backward(w: Vertex) -> None:
        """Algorithm 9: w cannot be a candidate; cascade the withdrawal."""
        v_plus.add(w)
        anchor = w
        r: deque = deque()
        in_r: Set[Vertex] = set()
        do_pre(w, r, in_r)
        d_out[w] += d_in.get(w, 0)
        d_in[w] = 0
        while r:
            x = r.popleft()
            in_r.discard(x)
            del v_star[x]
            do_pre(x, r, in_r)
            do_post(x, r, in_r)
            ko.move_after_vertex(anchor, x)
            anchor = x
            d_out[x] += d_in.get(x, 0)
            d_in[x] = 0

    # ------------------------------------------------------------------
    # Algorithm 7 main loop: traverse reachable vertices in k-order.
    while True:
        w = q.pop()
        if w is None:
            break
        if d_in.get(w, 0) + state.ensure_d_out(w) > K:
            forward(w)
        elif d_in.get(w, 0) > 0:
            backward(w)
        # else: skip — w cannot be affected (Algorithm 7's silent case)

    # ------------------------------------------------------------------
    # Ending phase (Algorithm 7 lines 9-10).
    winners = list(v_star)
    stats.v_star = winners
    stats.v_plus = list(v_plus)
    if winners:
        prev: Optional[Vertex] = None
        for w in winners:
            # One status window per candidate (never observably unlinked):
            # first to the head of O_{K+1}, the rest chained behind it so
            # the final segment order equals the V*-insertion order.
            if prev is None:
                ko.promote_head(w, K + 1)
            else:
                ko.promote_after(prev, w, K + 1)
            prev = w
        for w in winners:
            state.refresh_d_out(w)
        state.invalidate_mcd_around(winners)
    return stats
