"""repro — Parallel Order-Based Core Maintenance in Dynamic Graphs.

A from-scratch Python reproduction of Guo & Sekerinski, *Parallel
Order-Based Core Maintenance in Dynamic Graphs*, ICPP 2023:

* static core decomposition (BZ) with k-order output;
* the sequential Simplified-Order maintenance (OI/OR) on a two-level
  Order-Maintenance list;
* the paper's contribution, Parallel-Order (OurI/OurR), run on a
  discrete-event simulated multicore (or real threads for protocol
  validation);
* the prior-art baselines: sequential Traversal (TI/TR), Join-Edge-Set
  (JEI/JER) and Matching (MI/MR) parallel batch algorithms;
* graph generators, dataset stand-ins, and a benchmark harness
  regenerating every table and figure of the paper's evaluation;
* a streaming serving engine (:mod:`repro.service`): adaptive
  micro-batching over the parallel algorithms, snapshot-isolated reads
  against committed epochs, admission control, and a metrics surface
  (``repro-serve`` CLI).

Quick start::

    from repro import DynamicGraph, OrderMaintainer, erdos_renyi

    g = DynamicGraph(erdos_renyi(1000, 4000, seed=7))
    m = OrderMaintainer(g)
    m.insert_edge(0, 999)
    print(m.core(0))

See ``examples/`` and DESIGN.md for the full tour.
"""

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    lattice,
    powerlaw_cluster,
    rmat,
    temporal_stream,
)
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.core.decomposition import (
    CoreDecomposition,
    core_decomposition,
    core_histogram,
    park_decomposition,
)
from repro.core.history import CoreHistory
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.core.queries import (
    in_k_core,
    innermost_core,
    k_core_subgraph,
    k_core_vertices,
    k_shell,
    shell_histogram,
    subcore,
)
from repro.parallel.batch import BatchResult, ParallelOrderMaintainer
from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimDeadlockError, SimMachine, SimReport
from repro.baselines.join_edge_set import JoinEdgeSetMaintainer
from repro.baselines.matching import MatchingMaintainer
from repro.parallel.stream import StreamProcessor
from repro.parallel.threads import ThreadedOrderMaintainer
from repro.service import (
    Engine,
    EngineConfig,
    Request,
    Response,
    SnapshotView,
)
from repro.weighted import (
    WeightedCoreMaintainer,
    WeightedDynamicGraph,
    weighted_core_decomposition,
)

__version__ = "1.0.0"

__all__ = [
    "DynamicGraph",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "lattice",
    "powerlaw_cluster",
    "temporal_stream",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "CoreDecomposition",
    "core_decomposition",
    "core_histogram",
    "park_decomposition",
    "OrderMaintainer",
    "CoreHistory",
    "TraversalMaintainer",
    "k_core_vertices",
    "k_core_subgraph",
    "k_shell",
    "in_k_core",
    "shell_histogram",
    "innermost_core",
    "subcore",
    "ParallelOrderMaintainer",
    "BatchResult",
    "CostModel",
    "SimMachine",
    "SimReport",
    "SimDeadlockError",
    "JoinEdgeSetMaintainer",
    "MatchingMaintainer",
    "StreamProcessor",
    "ThreadedOrderMaintainer",
    "Engine",
    "EngineConfig",
    "Request",
    "Response",
    "SnapshotView",
    "WeightedDynamicGraph",
    "WeightedCoreMaintainer",
    "weighted_core_decomposition",
    "__version__",
]
