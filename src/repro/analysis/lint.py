"""Static lock-discipline lint for the worker event protocol.

The parallel workers talk to their machine exclusively through yielded
event tuples (see :mod:`repro.parallel.runtime`), which makes the lock
discipline *visible in the AST*: every acquisition, release and shared
access of a worker generator is a literal ``yield ("...", ...)`` or a
``yield from`` of one of the blessed protocol helpers.  This checker
walks that surface and enforces the rules the runtime cannot check until
a schedule happens to hit the bug:

``RL001``
    The result of ``yield ("try", key)`` must be consumed.  A discarded
    try-result means the worker proceeds whether or not it got the lock —
    the classic unchecked-CAS bug.
``RL002``
    Every acquired key (raw consumed ``try``, ``lock_pair`` or
    ``cond_acquire``) must reach a ``("release", key)`` or be added to a
    lockset that is passed to ``release_all``.  Keys are matched
    *textually* (the expression source), which is exact for the
    paper-style workers where a lock variable names one vertex.
``RL003``
    Acquiring two different keys with raw ``("try", ...)`` yields in one
    worker is hand-rolled multi-lock acquisition; it must go through
    ``lock_pair`` (back-off, no hold-and-wait) or ``cond_acquire``
    (Algorithm 2) so the deadlock-freedom arguments apply.
``RL004``
    Event tuples must be well-formed: a known kind string with the right
    arity (``tick``/``try``/``release`` take one operand, ``spin`` none,
    ``read``/``write`` a location plus optional site).
``RL005``
    Adjacency storage is private to :mod:`repro.graph`.  Outside that
    package, reaching into another object's ``.adj`` / ``._adj`` bypasses
    the :class:`~repro.graph.core.GraphCore` surface (and the interner
    boundary with it); use ``neighbors()`` / ``degree()`` / ``has_edge()``
    or the sanctioned ``adjacency_lists()`` accessor instead.  ``self``
    access is exempt — a class managing its own adjacency is implementing
    a substrate, not poking through one.  Unlike the other rules this is
    a whole-module pass, not limited to protocol generators.

Only *protocol generators* are checked — functions that yield at least
one event tuple or ``yield from`` a protocol helper — so ordinary
generators yielding data tuples are never flagged.  Nested worker
helpers (``forward``, ``dequeue``, …) are analyzed together with their
enclosing function because they share its lockset through closure
variables.  The blessed primitives themselves (``lock_pair``,
``cond_acquire``, ``release_all``) are skipped: they are the one place
raw multi-lock yields are supposed to live.

Suppress a finding by putting ``# lint: ok`` (any rule) or
``# lint: ok[RL002]`` (specific rules, comma-separated) on the reported
line; ``# lint: file-ok[...]`` suppresses for the whole file (see
:mod:`repro.analysis.pragmas`).

These rules (RL001–RL005) are one pass — ``lockrules`` — of the
multi-pass framework in :mod:`repro.analysis.static`, which adds
identity-domain dataflow (RL010–RL014), the static lock-order graph
(RL015–RL017) and journal-schema exhaustiveness (RL020–RL022); see
``docs/analysis.md`` for the full table.  This module stays standalone
so the lock rules remain importable without the framework:
:func:`check_source`/:func:`check_paths` run just these rules, while
``main`` (the ``repro-lint`` script and ``python -m repro.analysis``)
drives every registered pass.  Exit status is 0 when clean, 1 when
findings remain, 2 on bad usage (including nonexistent paths).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.pragmas import collect_pragmas

__all__ = [
    "Finding",
    "collect_findings",
    "check_source",
    "check_file",
    "check_paths",
    "main",
]

RULES = {
    "RL001": 'result of yield ("try", ...) must be consumed',
    "RL002": "acquired lock must reach a release or release_all",
    "RL003": "multi-lock acquisition must use lock_pair/cond_acquire",
    "RL004": "event tuple must be well-formed",
    "RL005": "adjacency storage is private to repro.graph",
}

# Attribute names that constitute reaching into adjacency storage (RL005).
_ADJ_ATTRS = {"adj", "_adj"}

# Path fragments (posix-normalized) whose files own adjacency storage.
_GRAPH_PACKAGE = "repro/graph/"

# kind -> (min tuple length, max tuple length)
EVENT_ARITY = {
    "tick": (2, 2),
    "try": (2, 2),
    "release": (2, 2),
    "spin": (1, 1),
    "read": (2, 3),
    "write": (2, 3),
    "wave": (2, 2),
}

# Protocol helpers whose bodies ARE the blessed raw-yield patterns.
BLESSED = {"lock_pair", "cond_acquire", "release_all"}


@dataclass
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ----------------------------------------------------------------------
# per-function analysis
# ----------------------------------------------------------------------
class _Acquire:
    __slots__ = ("key", "line", "col", "via")

    def __init__(self, key: str, line: int, col: int, via: str) -> None:
        self.key = key
        self.line = line
        self.col = col
        self.via = via  # "try" | "lock_pair" | "cond_acquire"


def _call_name(call: ast.Call) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def _event_tuple(node: ast.expr) -> Optional[Tuple[str, int]]:
    """``("kind", ...)`` literal -> (kind, tuple length), else None."""
    if not isinstance(node, ast.Tuple) or not node.elts:
        return None
    head = node.elts[0]
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        return head.value, len(node.elts)
    return None


def _own_nodes(func: ast.FunctionDef):
    """Every AST node of ``func``, with nested (non-blessed) function
    bodies folded in — nested worker helpers share the enclosing
    function's lockset via closures.  Each node is yielded exactly once;
    the nested ``def`` nodes themselves are skipped."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in BLESSED:
                stack.extend(node.body)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _FunctionChecker:
    """Check one top-level function (plus its nested helpers)."""

    def __init__(self, path: str, func: ast.FunctionDef) -> None:
        self.path = path
        self.func = func
        self.findings: List[Finding] = []
        self.acquired: List[_Acquire] = []
        self.released: Set[str] = set()
        self.released_vars: Set[str] = set()
        self.lockset_contents: Dict[str, Set[str]] = {}
        self.raw_try_keys: List[Tuple[str, int, int]] = []
        self.is_protocol = False

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, rule, message)
        )

    # -- lockset variables ---------------------------------------------
    def _set_literal_keys(self, node: ast.expr) -> Optional[Set[str]]:
        if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
            return {ast.unparse(e) for e in node.elts}
        if isinstance(node, ast.Call) and _call_name(node) in ("set", "list"):
            return set()
        return None

    def _note_assign(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        keys = self._set_literal_keys(value)
        if keys is not None:
            self.lockset_contents.setdefault(target.id, set()).update(keys)

    def _note_call(self, call: ast.Call) -> None:
        name = _call_name(call)
        if (
            name in ("add", "update", "append", "extend")
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.args
        ):
            var = call.func.value.id
            self.lockset_contents.setdefault(var, set()).update(
                ast.unparse(a) for a in call.args
            )

    # -- yields ---------------------------------------------------------
    def _note_yield(self, node: ast.Yield, parents: Dict[ast.AST, ast.AST]) -> None:
        ev = _event_tuple(node.value) if node.value is not None else None
        if ev is None:
            return
        kind, arity = ev
        bounds = EVENT_ARITY.get(kind)
        if bounds is None:
            # Only a finding when the function is otherwise a protocol
            # generator — data generators may yield tagged tuples freely.
            self._emit(node, "RL004", f"unknown event kind {kind!r}")
            return
        self.is_protocol = True
        lo, hi = bounds
        if not (lo <= arity <= hi):
            self._emit(
                node,
                "RL004",
                f"event {kind!r} takes {lo - 1}"
                + (f"..{hi - 1}" if hi != lo else "")
                + f" operand(s), got {arity - 1}",
            )
            return
        assert isinstance(node.value, ast.Tuple)
        if kind == "try":
            key = ast.unparse(node.value.elts[1])
            parent = parents.get(node)
            if isinstance(parent, ast.Expr):
                self._emit(
                    node,
                    "RL001",
                    f'result of yield ("try", {key}) is discarded — the '
                    "worker cannot know whether it holds the lock",
                )
                return
            self.acquired.append(
                _Acquire(key, node.lineno, node.col_offset, "try")
            )
            self.raw_try_keys.append((key, node.lineno, node.col_offset))
        elif kind == "release":
            self.released.add(ast.unparse(node.value.elts[1]))

    def _note_yield_from(self, node: ast.YieldFrom) -> None:
        if not isinstance(node.value, ast.Call):
            return
        call = node.value
        name = _call_name(call)
        if name == "lock_pair" and len(call.args) >= 2:
            self.is_protocol = True
            for arg in call.args[:2]:
                self.acquired.append(
                    _Acquire(
                        ast.unparse(arg), node.lineno, node.col_offset, "lock_pair"
                    )
                )
        elif name == "cond_acquire" and call.args:
            self.is_protocol = True
            self.acquired.append(
                _Acquire(
                    ast.unparse(call.args[0]),
                    node.lineno,
                    node.col_offset,
                    "cond_acquire",
                )
            )
        elif name == "release_all" and call.args:
            self.is_protocol = True
            arg = call.args[0]
            keys = self._set_literal_keys(arg)
            if keys is not None:
                self.released.update(keys)
            elif isinstance(arg, ast.Name):
                self.released_vars.add(arg.id)

    # -- driver ---------------------------------------------------------
    def run(self) -> List[Finding]:
        if self.func.name in BLESSED:
            return []
        nodes = list(_own_nodes(self.func))
        parents: Dict[ast.AST, ast.AST] = {}
        for node in nodes:
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in nodes:
            if isinstance(node, ast.Yield):
                self._note_yield(node, parents)
            elif isinstance(node, ast.YieldFrom):
                self._note_yield_from(node)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    self._note_assign(t, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._note_assign(node.target, node.value)
            elif isinstance(node, ast.Call):
                self._note_call(node)
        if not self.is_protocol:
            # Not a worker generator: only RL004-style findings (already
            # gated on is_protocol) could exist, so nothing to report.
            return []
        released = set(self.released)
        for var in self.released_vars:
            released.update(self.lockset_contents.get(var, ()))
        for acq in self.acquired:
            if acq.key in released:
                continue
            # acquired into a lockset that is never released?
            hint = ""
            for var, keys in self.lockset_contents.items():
                if acq.key in keys and var not in self.released_vars:
                    hint = f" (added to {var!r}, which never reaches release_all)"
                    break
            self.findings.append(
                Finding(
                    self.path,
                    acq.line,
                    acq.col,
                    "RL002",
                    f"lock {acq.key!r} acquired via {acq.via} but never "
                    f"released{hint}",
                )
            )
        distinct = []
        for key, line, col in self.raw_try_keys:
            if key not in [k for k, _l, _c in distinct]:
                distinct.append((key, line, col))
        if len(distinct) >= 2:
            key, line, col = distinct[1]
            self.findings.append(
                Finding(
                    self.path,
                    line,
                    col,
                    "RL003",
                    f"raw try of {key!r} alongside "
                    f"{distinct[0][0]!r} — use lock_pair/cond_acquire for "
                    "multi-lock acquisition",
                )
            )
        return self.findings


# ----------------------------------------------------------------------
# module-level passes
# ----------------------------------------------------------------------
def _check_adjacency_privacy(tree: ast.AST, path: str) -> List[Finding]:
    """RL005: flag ``<expr>.adj`` / ``<expr>._adj`` outside repro.graph.

    ``self._adj`` is exempt (a class implementing its own substrate);
    everything else is a caller bypassing the GraphCore surface.
    """
    if _GRAPH_PACKAGE in path.replace("\\", "/"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Attribute) and node.attr in _ADJ_ATTRS):
            continue
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            continue
        owner = ast.unparse(node.value)
        findings.append(
            Finding(
                path,
                node.lineno,
                node.col_offset,
                "RL005",
                f"direct adjacency access {owner}.{node.attr} bypasses the "
                "GraphCore surface — use neighbors()/degree()/has_edge() or "
                "adjacency_lists()",
            )
        )
    return findings


# ----------------------------------------------------------------------
# file / tree drivers
# ----------------------------------------------------------------------
def _known_rules() -> Set[str]:
    """The full rule-id universe (framework rules included), so pragmas
    naming rules of *other* passes are not reported as typos here."""
    try:
        import repro.analysis.static  # noqa: F401 - registers the passes
        from repro.analysis.static.registry import all_rules

        return set(all_rules())
    except Exception:  # pragma: no cover - static framework unavailable
        return set(RULES) | {"RL000", "RL006"}


def collect_findings(source: str, path: str = "<string>") -> List[Finding]:
    """Raw lock-discipline findings, before any pragma suppression.

    This is the entry point the static framework uses — it applies
    suppression (and pragma-typo warnings) centrally.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, exc.offset or 0, "RL000",
                    f"syntax error: {exc.msg}")
        ]
    findings: List[Finding] = []
    # Analyze outermost functions only: nested worker helpers are folded
    # into their enclosing function (they share its lockset via closures)
    # and must not be re-analyzed standalone.
    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(_FunctionChecker(path, child).run())
            else:
                visit(child)

    visit(tree)
    findings.extend(_check_adjacency_privacy(tree, path))
    return findings


def check_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source string; returns unsuppressed findings.

    Suppression pragmas (``# lint: ok[...]`` / ``# lint: file-ok[...]``)
    are applied here; a pragma naming a rule id that does not exist
    yields an ``RL006`` warning finding instead of silently ignoring
    the suppression.
    """
    findings = collect_findings(source, path)
    pragmas = collect_pragmas(source.splitlines(), _known_rules())
    for p in pragmas.pragmas:
        for name in p.unknown:
            findings.append(Finding(
                path, p.line, 0, "RL006",
                f"suppression names unknown rule {name!r} — it "
                "suppresses nothing (known rules: RL001..RL022)",
            ))
    return [
        f for f in findings if not pragmas.suppresses(f.rule, f.line)
    ]


def check_file(path: Path) -> List[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(str(path), 0, 0, "RL000", f"cannot read: {exc}")]
    return check_source(source, str(path))


def check_paths(paths: Iterable[str]) -> List[Finding]:
    files: List[Path] = []
    for p in paths:
        pp = Path(p)
        if pp.is_dir():
            files.extend(sorted(pp.rglob("*.py")))
        else:
            files.append(pp)
    findings: List[Finding] = []
    for f in files:
        findings.extend(check_file(f))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    """The ``repro-lint`` entry point.

    Delegates to the unified multi-pass CLI
    (:mod:`repro.analysis.static.cli`), which runs the lock rules here
    plus the identity-domain, lock-order and journal-schema passes.
    """
    from repro.analysis.static.cli import main as static_main

    return static_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
