"""``python -m repro.analysis`` — alias for the ``repro-lint`` CLI."""

import sys

from repro.analysis.static.cli import main

if __name__ == "__main__":
    sys.exit(main())
