"""Shared-access tracing: cheap wrappers that feed the race detector.

The parallel algorithms read and write shared state through plain dicts
(``state.d_out``, ``state.mcd``, ``korder.core``) and through
:class:`~repro.core.korder.KOrder` methods (order comparisons, moves).
:func:`instrument_state` swaps the dicts for :class:`TracedDict`
instances and attaches the detector as the ``trace`` hook that the
KOrder / OrderState accessors consult, so that every shared access is
reported to the :class:`~repro.analysis.races.RaceDetector` with the
current worker's lockset and vector clock:

* dict item reads/writes → plain accesses on ``(name, key)`` locations;
* order comparisons and splices → ``("order", v)`` accesses recorded by
  ``KOrder`` itself (plain for lock-protected ``precedes``/moves,
  *relaxed* for the Algorithm 4 ``precedes_concurrent`` protocol);
* t-protocol atomics and ∅-invalidation wipes → relaxed accesses
  recorded by the ``OrderState`` accessors;
* PQ version snapshots → relaxed ``("om", "version")`` reads recorded
  by :class:`~repro.core.pqueue.VersionedPQ`.

When no detector is attached nothing is wrapped and the per-access cost
is zero (the hot paths only pay an attribute-is-None test where an
accessor exists at all).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.storage import IntSlotMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.races import RaceDetector
    from repro.core.state import OrderState

__all__ = ["TracedDict", "TracedSlotMap", "instrument_state"]


class TracedDict(dict):
    """A dict that reports item accesses to the race detector.

    Only the operations the maintenance algorithms use are traced
    (``[]`` reads/writes, ``get``, ``in``); everything else falls back
    to plain dict behavior.  Compound statements such as
    ``d[k] += 1`` naturally record a read followed by a write.
    """

    __slots__ = ("_det", "_name")

    def __init__(self, name: str, detector: "RaceDetector", data: dict) -> None:
        super().__init__(data)
        self._name = name
        self._det = detector

    def __getitem__(self, key):
        self._det.read((self._name, key))
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        self._det.read((self._name, key))
        return dict.get(self, key, default)

    def __contains__(self, key) -> bool:
        self._det.read((self._name, key))
        return dict.__contains__(self, key)

    def __setitem__(self, key, value) -> None:
        self._det.write((self._name, key))
        dict.__setitem__(self, key, value)


class TracedSlotMap(IntSlotMap):
    """Slot-map twin of :class:`TracedDict` for the array substrate.

    The relaxed accessors (``core_relaxed``, the ∅-invalidation wipes)
    bypass these overrides via :func:`repro.graph.storage.raw_get` /
    ``raw_set``, exactly as they bypass ``TracedDict`` with raw ``dict``
    calls.
    """

    __slots__ = ("_det", "_name")

    def __init__(self, name: str, detector: "RaceDetector", data: IntSlotMap) -> None:
        # copy the backing slots directly: going through __setitem__ here
        # would report construction-time writes to the detector
        self._slots = list(data.slots())
        self._count = len(data)
        self._name = name
        self._det = detector

    def __getitem__(self, key):
        self._det.read((self._name, key))
        return IntSlotMap.__getitem__(self, key)

    def get(self, key, default=None):
        self._det.read((self._name, key))
        return IntSlotMap.get(self, key, default)

    def __contains__(self, key) -> bool:
        self._det.read((self._name, key))
        return IntSlotMap.__contains__(self, key)

    def __setitem__(self, key, value) -> None:
        self._det.write((self._name, key))
        IntSlotMap.__setitem__(self, key, value)


def _traced(name: str, detector: "RaceDetector", data):
    if isinstance(data, IntSlotMap):
        return TracedSlotMap(name, detector, data)
    return TracedDict(name, detector, data)


def instrument_state(state: "OrderState", detector: "RaceDetector") -> "OrderState":
    """Wire ``state`` (and its k-order) into ``detector``.

    Replaces the shared counter dicts with :class:`TracedDict` wrappers
    and sets the ``trace`` hooks that the relaxed-access accessors
    consult.  Idempotent per (state, detector) pair; call before the
    first parallel batch.
    """
    if getattr(state, "trace", None) is detector:
        return state
    state.trace = detector
    state.d_out = _traced("d_out", detector, state.d_out)
    state.mcd = _traced("mcd", detector, state.mcd)
    ko = state.korder
    ko.trace = detector
    ko.core = _traced("core", detector, ko.core)
    return state
