"""Journal-schema exhaustiveness: writers vs. readers of WAL records.

:mod:`repro.service.journal` is an append-only JSONL log whose records
are plain dicts discriminated by a ``"t"`` kind field.  Nothing but
convention keeps the three views of that schema in sync:

* **writers** — the ``log_*`` helpers (and chaos-test fixtures) that
  build ``{"t": REC_X, ...}`` literals;
* **readers** — ``replay()`` / ``from_journal`` / checkpoint recovery,
  which dispatch on ``rec["t"]`` equality chains and pull fields out of
  the record;
* **declarations** — the ``REC_*`` constants and the ``_KINDS`` tuple
  that :meth:`EdgeJournal.append` validates against.

The replication layer added two kinds to the same schema and the pass
covers them identically: the WAL's ``promote`` record (written by
``log_promote`` on failover, dispatched by ``replay()`` and the
follower's ``_apply``) and the shipper's sidecar ``cursor`` record
(``JournalShipper.save_cursor`` / ``load_cursor``) — a one-record file,
but a writer/reader pair all the same.

This pass cross-checks all three statically:

``RL020``
    A record kind is *written* somewhere but no reader dispatch arm
    handles it — replay would silently drop it (the record survives the
    crash; its meaning does not).
``RL021``
    A record kind is handled by a reader (or declared in ``REC_*``) but
    no writer ever produces it — a dead dispatch arm, usually the relic
    of a renamed kind.
``RL022``
    Field-shape drift: a reader pulls a field (``rec["f"]`` /
    ``rec.get("f")``) out of records of kind *K* that no writer of *K*
    ever stores.  Alias-aware: ``pending = rec`` inside the intent arm
    makes ``pending[...]`` reads count against the *intent* shape.

Membership tests against the declared-kinds tuple (``t not in _KINDS``)
are *validation*, not handling, and are ignored — otherwise ``append``'s
guard would make every kind look handled.

The whole pass is skipped unless a writer-zone module (one declaring
``REC_*`` kinds) is part of the project, so linting ``tests/`` alone
does not report every fixture as unhandled.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint import Finding
from repro.analysis.static.project import ModuleInfo, Project
from repro.analysis.static.registry import Pass, register

__all__ = ["JOURNAL_RULES", "collect_schema"]

JOURNAL_RULES = {
    "RL020": "journal record kind is written but no reader handles it",
    "RL021": "journal record kind is declared/handled but never written",
    "RL022": "reader pulls a field no writer of that record kind stores",
}

#: the discriminator key; never itself a schema field
_DISCRIMINATOR = "t"


@dataclass
class _Site:
    path: str
    line: int
    col: int


@dataclass
class _Schema:
    """Everything the pass learned about the record schema."""

    #: kind -> site of the REC_* declaration
    declared: Dict[str, _Site] = field(default_factory=dict)
    #: kind -> (fields written, first write site)
    written: Dict[str, Tuple[Set[str], _Site]] = field(default_factory=dict)
    #: kind -> site of the dispatch arm handling it
    handled: Dict[str, _Site] = field(default_factory=dict)
    #: (kind, field) -> read site, for reads of records of that kind
    reads: Dict[Tuple[str, str], _Site] = field(default_factory=dict)


def _const_str(node: ast.expr, consts: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to a string: literal or REC_* constant."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    if isinstance(node, ast.Attribute):
        return consts.get(node.attr)
    return None


def _collect_kind_consts(project: Project) -> Tuple[Dict[str, str],
                                                    Dict[str, _Site]]:
    """``REC_*`` string constants across the project, plus their sites."""
    consts: Dict[str, str] = {}
    declared: Dict[str, _Site] = {}
    for mod in project.iter_modules():
        if mod.tree is None:
            continue
        for node in mod.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                continue
            for tgt in node.targets:
                if isinstance(tgt, ast.Name) and tgt.id.startswith("REC_"):
                    consts[tgt.id] = node.value.value
                    declared.setdefault(
                        node.value.value,
                        _Site(mod.path, node.lineno, node.col_offset))
    return consts, declared


def _writer_zone(project: Project) -> bool:
    consts, _ = _collect_kind_consts(project)
    return bool(consts)


def _collect_writes(mod: ModuleInfo, consts: Dict[str, str],
                    schema: _Schema) -> None:
    """Dict literals carrying a ``"t"`` key are record constructions."""
    if mod.tree is None:
        return
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Dict):
            continue
        kind: Optional[str] = None
        fields: Set[str] = set()
        for k, v in zip(node.keys, node.values):
            if not (isinstance(k, ast.Constant) and isinstance(k.value, str)):
                continue
            if k.value == _DISCRIMINATOR:
                kind = _const_str(v, consts)
            else:
                fields.add(k.value)
        if kind is None:
            continue
        site = _Site(mod.path, node.lineno, node.col_offset)
        if kind in schema.written:
            schema.written[kind][0].update(fields)
        else:
            schema.written[kind] = (fields, site)


def _is_rec_t(node: ast.expr, rec_vars: Set[str]) -> bool:
    """``X["t"]`` for a record variable ``X``."""
    return (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in rec_vars
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == _DISCRIMINATOR)


def _field_reads(body: List[ast.stmt], var_kinds: Dict[str, str],
                 mod: ModuleInfo, schema: _Schema) -> None:
    """Attribute ``v["f"]`` / ``v.get("f")`` reads to ``var_kinds[v]``."""
    for stmt in body:
        for node in ast.walk(stmt):
            name: Optional[str] = None
            fld: Optional[str] = None
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in var_kinds
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                name, fld = node.value.id, node.slice.value
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "get"
                  and isinstance(node.func.value, ast.Name)
                  and node.func.value.id in var_kinds
                  and node.args
                  and isinstance(node.args[0], ast.Constant)
                  and isinstance(node.args[0].value, str)):
                name, fld = node.func.value.id, node.args[0].value
            if name is None or fld == _DISCRIMINATOR:
                continue
            kind = var_kinds[name]
            schema.reads.setdefault(
                (kind, fld), _Site(mod.path, node.lineno, node.col_offset))


def _collect_reads(mod: ModuleInfo, consts: Dict[str, str],
                   schema: _Schema) -> None:
    """Find kind-dispatch chains and the fields each arm reads."""
    if mod.tree is None:
        return
    for fn in ast.walk(mod.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # record variables: anything subscripted with "t"
        rec_vars: Set[str] = set()
        disc_vars: Set[str] = set()
        for node in ast.walk(fn):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and isinstance(node.slice, ast.Constant)
                    and node.slice.value == _DISCRIMINATOR):
                rec_vars.add(node.value.id)
        if not rec_vars:
            continue
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _is_rec_t(node.value, rec_vars)):
                disc_vars.add(node.targets[0].id)
        #: record-alias -> kind, grown as dispatch arms alias the record
        alias_kinds: Dict[str, str] = {}

        def visit(stmts: List[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.If):
                    kind = _arm_kind(stmt.test)
                    if kind is not None:
                        schema.handled.setdefault(
                            kind, _Site(mod.path, stmt.lineno,
                                        stmt.col_offset))
                        _bind_arm(stmt.body, kind)
                    else:
                        visit(stmt.body)
                    visit(stmt.orelse)
                    continue
                if isinstance(stmt, (ast.For, ast.While, ast.With)):
                    visit(stmt.body)
                    visit(getattr(stmt, "orelse", []) or [])
                elif isinstance(stmt, ast.Try):
                    visit(stmt.body)
                    for h in stmt.handlers:
                        visit(h.body)
                    visit(stmt.orelse)
                    visit(stmt.finalbody)

        def _arm_kind(test: ast.expr) -> Optional[str]:
            """``t == REC_X`` / ``rec["t"] == "x"`` → the kind string."""
            if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)):
                return None
            lhs, rhs = test.left, test.comparators[0]
            for a, b in ((lhs, rhs), (rhs, lhs)):
                is_disc = (_is_rec_t(a, rec_vars)
                           or (isinstance(a, ast.Name) and a.id in disc_vars))
                if is_disc:
                    return _const_str(b, consts)
            return None

        def _bind_arm(body: List[ast.stmt], kind: str) -> None:
            # the record var carries this arm's kind within the arm body
            var_kinds = {v: kind for v in rec_vars}
            var_kinds.update(alias_kinds)
            _field_reads(body, var_kinds, mod, schema)
            # aliases created here (pending = rec) keep the kind beyond
            # the arm — later arms read the aliased record's fields
            for stmt in body:
                for node in ast.walk(stmt):
                    if (isinstance(node, ast.Assign)
                            and len(node.targets) == 1
                            and isinstance(node.targets[0], ast.Name)
                            and isinstance(node.value, ast.Name)
                            and node.value.id in rec_vars):
                        alias_kinds[node.targets[0].id] = kind
            visit(body)

        visit(fn.body)
        # reads through surviving aliases outside any arm (e.g. the
        # trailing `pending is not None` epilogue)
        _field_reads(fn.body, alias_kinds, mod, schema)


def collect_schema(project: Project) -> _Schema:
    """Build the writer/reader/declaration views of the record schema."""
    schema = _Schema()
    consts, declared = _collect_kind_consts(project)
    schema.declared = declared
    for mod in project.iter_modules():
        _collect_writes(mod, consts, schema)
        _collect_reads(mod, consts, schema)
    return schema


def _run(project: Project) -> List[Finding]:
    if not _writer_zone(project):
        return []
    schema = collect_schema(project)
    findings: List[Finding] = []

    for kind, (fields, site) in sorted(schema.written.items()):
        if kind not in schema.handled:
            findings.append(Finding(
                site.path, site.line, site.col, "RL020",
                f"record kind {kind!r} is written here but no reader "
                "dispatch arm handles it — replay would silently drop it",
            ))

    for kind in sorted(set(schema.handled) | set(schema.declared)):
        if kind in schema.written:
            continue
        site = schema.handled.get(kind) or schema.declared[kind]
        where = "handled" if kind in schema.handled else "declared"
        findings.append(Finding(
            site.path, site.line, site.col, "RL021",
            f"record kind {kind!r} is {where} here but no writer ever "
            "produces it — dead dispatch arm or renamed kind",
        ))

    for (kind, fld), site in sorted(schema.reads.items()):
        if kind not in schema.written:
            continue  # RL020/RL021 territory
        fields, _wsite = schema.written[kind]
        if fld not in fields:
            findings.append(Finding(
                site.path, site.line, site.col, "RL022",
                f"reader pulls field {fld!r} out of {kind!r} records, but "
                "no writer of that kind stores it — field-shape drift",
            ))
    return findings


register(Pass(
    name="journalschema",
    doc="journal record-kind / field-shape exhaustiveness",
    rules=JOURNAL_RULES,
    run=_run,
))
