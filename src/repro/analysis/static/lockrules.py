"""Framework wrapper around the original lock-discipline checker.

``RL001``–``RL005`` predate the multi-pass framework and live in
:mod:`repro.analysis.lint` (which is also their standalone, import-light
entry point).  This pass adapts them to the shared :class:`Project`: the
framework parses each file once and applies suppression centrally, so
the wrapper feeds the already-loaded source through
:func:`~repro.analysis.lint.collect_findings` (the *raw*, suppression-free
variant) module by module.

Modules that failed to parse are skipped — the registry already reports
them as ``RL000``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.lint import RULES, Finding, collect_findings
from repro.analysis.static.project import Project
from repro.analysis.static.registry import Pass, register

__all__ = ["LOCKRULES"]

LOCKRULES = dict(RULES)


def _run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for mod in project.iter_modules():
        if mod.tree is None:
            continue
        findings.extend(collect_findings(mod.source, mod.path))
    return findings


register(Pass(
    name="lockrules",
    doc="worker lock-discipline rules (the original single-file checker)",
    rules=LOCKRULES,
    run=_run,
))
