"""Pass registry + analysis driver for the static framework.

A *pass* is a named analyzer owning a set of rule ids.  Passes register
themselves at import time; :func:`run_analysis` loads no pass logic of
its own — it drives whichever passes are registered, applies the
suppression pragmas and the optional baseline, and emits ``RL006``
warnings for suppression pragmas that name unknown rules (a typo'd
suppression must *warn*, never silently ignore the finding it meant to
suppress).

Rule selection (``--select``) accepts rule ids (``RL015``), pass names
(``lockorder``) and comma-separated mixes of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.analysis.lint import Finding
from repro.analysis.static.project import Project

__all__ = [
    "Pass",
    "register",
    "registered_passes",
    "all_rules",
    "run_analysis",
    "AnalysisResult",
]

#: framework-owned rules (not tied to any pass)
META_RULES = {
    "RL000": "file cannot be analyzed (unreadable or syntax error)",
    "RL006": "suppression pragma names an unknown rule",
}


@dataclass
class Pass:
    """One registered analyzer."""

    name: str
    doc: str
    rules: Dict[str, str]                       #: rule id -> description
    run: Callable[[Project], List[Finding]]


_REGISTRY: Dict[str, Pass] = {}


def register(p: Pass) -> Pass:
    if p.name in _REGISTRY:
        raise ValueError(f"duplicate pass name {p.name!r}")
    overlap = {r for q in _REGISTRY.values() for r in q.rules} & set(p.rules)
    if overlap:
        raise ValueError(f"pass {p.name!r} re-registers rules {sorted(overlap)}")
    _REGISTRY[p.name] = p
    return p


def registered_passes() -> List[Pass]:
    return list(_REGISTRY.values())


def all_rules() -> Dict[str, str]:
    """The full rule table: framework meta rules + every pass's rules."""
    table = dict(META_RULES)
    for p in _REGISTRY.values():
        table.update(p.rules)
    return table


def _selected_rules(select: Optional[str]) -> Optional[Set[str]]:
    """Expand a ``--select`` expression into a rule-id set (None = all)."""
    if not select:
        return None
    table = all_rules()
    chosen: Set[str] = set()
    for tok in select.split(","):
        tok = tok.strip()
        if not tok:
            continue
        if tok in table:
            chosen.add(tok)
        elif tok in _REGISTRY:
            chosen.update(_REGISTRY[tok].rules)
        else:
            # prefix match lets `--select RL01` grab a family
            hits = {r for r in table if r.startswith(tok)}
            if not hits:
                raise ValueError(f"--select: unknown rule or pass {tok!r}")
            chosen.update(hits)
    return chosen


@dataclass
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: List[Finding]          #: unsuppressed, non-baselined
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def run_analysis(
    project: Project,
    select: Optional[str] = None,
    baseline: Optional[Iterable[Finding]] = None,
) -> AnalysisResult:
    """Run the registered passes over ``project``.

    Returns findings that survived rule selection, pragma suppression
    and the baseline, sorted by (path, line, rule).
    """
    chosen = _selected_rules(select)
    known = set(all_rules())
    raw: List[Finding] = []

    # RL000 for unparseable modules; RL006 for typo'd pragmas.
    for mod in project.iter_modules():
        if mod.error is not None:
            line, col, msg = mod.error
            raw.append(Finding(mod.path, line, col, "RL000", msg))
            continue
        for pragma in mod.pragmas(known).pragmas:
            for name in pragma.unknown:
                raw.append(Finding(
                    mod.path, pragma.line, 0, "RL006",
                    f"suppression names unknown rule {name!r} — it "
                    "suppresses nothing (known rules: RL001..RL022)",
                ))

    for p in _REGISTRY.values():
        if chosen is not None and not (set(p.rules) & chosen):
            continue
        raw.extend(p.run(project))

    # Dedupe: interprocedural passes can reach the same helper from
    # several roots and re-derive an identical finding at the same site.
    unique: List[Finding] = []
    seen = set()
    for f in raw:
        key = (f.path, f.line, f.col, f.rule, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    raw = unique

    kept: List[Finding] = []
    suppressed = 0
    for f in raw:
        if chosen is not None and f.rule not in chosen | {"RL000", "RL006"}:
            continue
        mod = project.modules.get(f.path)
        if mod is not None and mod.pragmas(known).suppresses(f.rule, f.line):
            suppressed += 1
            continue
        kept.append(f)

    baselined = 0
    if baseline is not None:
        base_keys = {(b.path.replace("\\", "/"), b.rule, b.message)
                     for b in baseline}
        survivors = []
        for f in kept:
            if (f.path.replace("\\", "/"), f.rule, f.message) in base_keys:
                baselined += 1
            else:
                survivors.append(f)
        kept = survivors

    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return AnalysisResult(kept, suppressed=suppressed, baselined=baselined)
