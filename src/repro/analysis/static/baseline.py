"""Baseline files: accepted findings that should not fail the build.

A baseline is a JSON document::

    {"version": 1,
     "entries": [{"path": "...", "rule": "RL015", "message": "..."}]}

Entries match on ``(path, rule, message)`` — deliberately *not* on line
numbers, so unrelated edits above a baselined finding do not resurrect
it.  ``repro-lint --write-baseline`` regenerates the file from the
current findings; ``--baseline`` filters them out of a run.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.lint import Finding

__all__ = ["load_baseline", "save_baseline", "BaselineError"]

_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: str) -> List[Finding]:
    """Read a baseline file into match-only findings (line/col zeroed)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path!r}: expected a version-{_VERSION} document")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path!r}: missing 'entries' list")
    out: List[Finding] = []
    for i, e in enumerate(entries):
        if not (isinstance(e, dict)
                and isinstance(e.get("path"), str)
                and isinstance(e.get("rule"), str)
                and isinstance(e.get("message"), str)):
            raise BaselineError(
                f"baseline {path!r}: entry {i} needs path/rule/message")
        out.append(Finding(e["path"], 0, 0, e["rule"], e["message"]))
    return out


def save_baseline(path: str, findings: List[Finding]) -> None:
    """Write the current findings as a fresh baseline."""
    doc = {
        "version": _VERSION,
        "entries": [
            {"path": f.path.replace("\\", "/"),
             "rule": f.rule,
             "message": f.message}
            for f in sorted(findings, key=lambda f: (f.path, f.rule,
                                                     f.message))
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
