"""Shared-memory buffer-schema lockstep: publisher stores vs. reader loads.

:mod:`repro.service.queryplane` lays int64 slots over raw shared memory;
the ``QP_*`` integer constants are the *only* schema those segments
have.  The publisher writes slots (``hdr[QP_EPOCH] = ...``), readers
decode them (``epoch = hdr[QP_EPOCH]``), and nothing but convention
keeps the two sides in lockstep — a slot renumbered, added, or dropped
on one side silently corrupts every answer on the other, with no
exception to catch it (the bytes are always "valid").

This pass cross-checks the three views statically, the shape of the
journal-schema family (RL020–RL022) transplanted to buffer slots:

``RL023``
    A ``QP_*`` slot is *stored* somewhere but never *loaded* — the
    publisher pays for bytes no reader can see; usually a decode path
    lost in a refactor (the seqlock makes the loss silent, not loud).
``RL024``
    A slot is *loaded* but never *stored* — the reader decodes garbage
    that merely happens to be zero-initialized; usually a publisher
    write lost in a refactor.
``RL025``
    A slot constant is declared but never subscripted anywhere — a dead
    slot, usually the relic of a renumbered layout (and a trap: the next
    author reuses the index for something else).

Stores are subscripts in assignment-target position (``buf[QP_X] = v``,
including augmented assignment); loads are subscripts in value position.
The pass arms itself only when a module in the project declares ``QP_*``
integer constants at module level — linting ``tests/`` alone does not
report every fixture.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.lint import Finding
from repro.analysis.static.project import ModuleInfo, Project
from repro.analysis.static.registry import Pass, register

__all__ = ["BUFFER_RULES", "collect_slots"]

BUFFER_RULES = {
    "RL023": "buffer slot is stored but no reader ever loads it",
    "RL024": "buffer slot is loaded but no publisher ever stores it",
    "RL025": "buffer slot is declared but never subscripted",
}

_PREFIX = "QP_"


@dataclass
class _Site:
    path: str
    line: int
    col: int


@dataclass
class _Slots:
    """Everything the pass learned about the slot schema."""

    #: slot name -> site of the QP_* declaration
    declared: Dict[str, _Site] = field(default_factory=dict)
    #: slot name -> first store site (``buf[QP_X] = v``)
    stored: Dict[str, _Site] = field(default_factory=dict)
    #: slot name -> first load site (``v = buf[QP_X]``)
    loaded: Dict[str, _Site] = field(default_factory=dict)


def _slot_name(node: ast.expr) -> Optional[str]:
    """The ``QP_*`` name used as a subscript index, if any."""
    if isinstance(node, ast.Name) and node.id.startswith(_PREFIX):
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.startswith(_PREFIX):
        return node.attr
    return None


def _collect_decls(mod: ModuleInfo, slots: _Slots) -> None:
    if mod.tree is None:
        return
    for node in mod.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
                and not isinstance(node.value.value, bool)):
            continue
        for tgt in node.targets:
            if isinstance(tgt, ast.Name) and tgt.id.startswith(_PREFIX):
                slots.declared.setdefault(
                    tgt.id, _Site(mod.path, node.lineno, node.col_offset))


def _collect_uses(mod: ModuleInfo, slots: _Slots) -> None:
    if mod.tree is None:
        return
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Subscript):
            continue
        name = _slot_name(node.slice)
        if name is None:
            continue
        site = _Site(mod.path, node.lineno, node.col_offset)
        if isinstance(node.ctx, ast.Store):
            slots.stored.setdefault(name, site)
        elif isinstance(node.ctx, ast.Load):
            slots.loaded.setdefault(name, site)


def _augment(mod: ModuleInfo, slots: _Slots) -> None:
    """``buf[QP_X] += v`` reads and writes the slot in one statement."""
    if mod.tree is None:
        return
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.AugAssign):
            continue
        if not isinstance(node.target, ast.Subscript):
            continue
        name = _slot_name(node.target.slice)
        if name is None:
            continue
        site = _Site(mod.path, node.lineno, node.col_offset)
        slots.stored.setdefault(name, site)
        slots.loaded.setdefault(name, site)


def collect_slots(project: Project) -> _Slots:
    """Build the declaration/store/load views of the slot schema."""
    slots = _Slots()
    for mod in project.iter_modules():
        _collect_decls(mod, slots)
        _collect_uses(mod, slots)
        _augment(mod, slots)
    return slots


def _run(project: Project) -> List[Finding]:
    slots = collect_slots(project)
    if not slots.declared:
        return []  # no buffer-schema zone in this project
    findings: List[Finding] = []
    names: Set[str] = (set(slots.declared) | set(slots.stored)
                       | set(slots.loaded))
    for name in sorted(names):
        stored = name in slots.stored
        loaded = name in slots.loaded
        if stored and not loaded:
            site = slots.stored[name]
            findings.append(Finding(
                site.path, site.line, site.col, "RL023",
                f"slot {name} is stored here but never loaded — no reader "
                "decodes what the publisher writes (lost decode path?)",
            ))
        elif loaded and not stored:
            site = slots.loaded[name]
            findings.append(Finding(
                site.path, site.line, site.col, "RL024",
                f"slot {name} is loaded here but never stored — the reader "
                "decodes bytes no publisher writes (lost publish path?)",
            ))
        elif not stored and not loaded:
            site = slots.declared[name]
            findings.append(Finding(
                site.path, site.line, site.col, "RL025",
                f"slot {name} is declared here but never subscripted — "
                "dead slot; renumbering traps the next layout change",
            ))
    return findings


register(Pass(
    name="bufferschema",
    doc="shared-memory buffer-slot store/load lockstep",
    rules=BUFFER_RULES,
    run=_run,
))
