"""Project loader + symbol table for the static analysis framework.

Every pass shares one :class:`Project`: each source file is read and
parsed exactly once, its dotted module name is derived from the package
layout (walking up through ``__init__.py`` directories), and a
whole-program symbol table maps ``module.qualname`` to function
definitions so passes can resolve calls — including ``yield from
helper(...)`` chains — across module boundaries.

Tests build synthetic projects with :meth:`Project.from_sources`, giving
each virtual file a zone-appropriate path (zoning rules key off path
fragments like ``repro/service/``).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.pragmas import FilePragmas, collect_pragmas

__all__ = ["ModuleInfo", "FuncInfo", "Project"]


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str                      #: display path (as given / relative)
    modname: str                   #: dotted module name best-effort
    source: str
    tree: Optional[ast.Module]     #: None when the file failed to parse
    error: Optional[Tuple[int, int, str]] = None  #: (line, col, message)
    lines: List[str] = field(default_factory=list)
    #: import alias table: local name -> dotted target
    imports: Dict[str, str] = field(default_factory=dict)
    _pragmas: Optional[FilePragmas] = None

    @property
    def posix_path(self) -> str:
        return self.path.replace(os.sep, "/").replace("\\", "/")

    def in_zone(self, *fragments: str) -> bool:
        """True when any path fragment occurs in this module's path."""
        p = self.posix_path
        return any(f in p for f in fragments)

    def pragmas(self, known: Iterable[str]) -> FilePragmas:
        if self._pragmas is None:
            self._pragmas = collect_pragmas(self.lines, known)
        return self._pragmas


@dataclass
class FuncInfo:
    """One project function (top-level or method)."""

    module: ModuleInfo
    qualname: str                  #: e.g. ``insert_edge_par`` / ``Engine.commit``
    node: ast.FunctionDef
    cls: Optional[str] = None      #: enclosing class name, if a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def key(self) -> str:
        return f"{self.module.modname}.{self.qualname}"


def _derive_modname(abspath: str) -> str:
    """Dotted module name from the package layout around ``abspath``."""
    directory, fname = os.path.split(abspath)
    parts: List[str] = []
    stem = fname[:-3] if fname.endswith(".py") else fname
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.insert(0, pkg)
        if not pkg:
            break
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts) if parts else stem


def _display_path(abspath: str) -> str:
    try:
        rel = os.path.relpath(abspath)
    except ValueError:  # pragma: no cover - different drive on windows
        return abspath
    return rel if not rel.startswith("..") else abspath


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                table[a.asname or a.name.split(".")[0]] = a.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                table[a.asname or a.name] = f"{node.module}.{a.name}"
    return table


class Project:
    """All modules under analysis plus the derived symbol table."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}      # display path -> info
        self.by_modname: Dict[str, ModuleInfo] = {}
        #: ``module.qualname`` -> FuncInfo for every def (incl. methods)
        self.functions: Dict[str, FuncInfo] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Iterable[str]) -> "Project":
        """Load files / directory trees (dirs recurse over ``*.py``)."""
        proj = cls()
        seen = set()
        for p in paths:
            if os.path.isdir(p):
                files = sorted(
                    os.path.join(dp, f)
                    for dp, _dn, fns in os.walk(p)
                    for f in fns
                    if f.endswith(".py")
                )
            else:
                files = [p]
            for f in files:
                ab = os.path.abspath(f)
                if ab in seen:
                    continue
                seen.add(ab)
                proj._add_file(ab)
        return proj

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from ``{virtual_path: source}`` (for tests)."""
        proj = cls()
        for path, src in sources.items():
            proj.add_source(path, src)
        return proj

    def add_source(self, path: str, source: str) -> ModuleInfo:
        posix = path.replace("\\", "/")
        stem = posix.rsplit("/", 1)[-1]
        stem = stem[:-3] if stem.endswith(".py") else stem
        # virtual modname: strip a leading src/ and slash-join the rest
        parts = [p for p in posix.split("/") if p not in ("", ".", "src")]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        modname = ".".join(parts) if parts else stem
        info = self._parse(path, modname, source)
        self._register(info)
        return info

    def _add_file(self, abspath: str) -> None:
        display = _display_path(abspath)
        try:
            source = open(abspath, "r", encoding="utf-8").read()
        except OSError as exc:
            info = ModuleInfo(display, _derive_modname(abspath), "", None,
                              error=(0, 0, f"cannot read: {exc}"))
            self._register(info)
            return
        info = self._parse(display, _derive_modname(abspath), source)
        self._register(info)

    def _parse(self, path: str, modname: str, source: str) -> ModuleInfo:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return ModuleInfo(
                path, modname, source, None,
                error=(exc.lineno or 0, exc.offset or 0,
                       f"syntax error: {exc.msg}"),
                lines=source.splitlines(),
            )
        info = ModuleInfo(path, modname, source, tree,
                          lines=source.splitlines())
        info.imports = _collect_imports(tree)
        return info

    def _register(self, info: ModuleInfo) -> None:
        self.modules[info.path] = info
        self.by_modname[info.modname] = info
        if info.tree is None:
            return
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    fi = FuncInfo(info, node.name, node)
                    self.functions[fi.key] = fi
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        fi = FuncInfo(info, f"{node.name}.{item.name}",
                                      item, cls=node.name)
                        self.functions[fi.key] = fi

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def iter_modules(self) -> Iterator[ModuleInfo]:
        return iter(self.modules.values())

    def iter_functions(self) -> Iterator[FuncInfo]:
        return iter(self.functions.values())

    def resolve_function(
        self, module: ModuleInfo, name: str
    ) -> Optional[FuncInfo]:
        """Resolve a bare call name inside ``module`` to a project def.

        Checks the module's own top-level functions first, then the
        import alias table (``from repro.x import f [as g]``).
        """
        fi = self.functions.get(f"{module.modname}.{name}")
        if fi is not None and fi.cls is None:
            return fi
        target = module.imports.get(name)
        if target is not None:
            mod, _, fname = target.rpartition(".")
            other = self.by_modname.get(mod)
            if other is not None:
                return self.functions.get(f"{other.modname}.{fname}")
        return None
