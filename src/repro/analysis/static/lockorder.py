"""Static lock-order graph over the worker event protocol.

The dynamic waits-for detector in :mod:`repro.parallel.runtime` catches
deadlock cycles *a schedule happens to produce*.  This pass is its
static companion: it symbolically executes every protocol generator in
the project (statement order, ``yield from`` helper chains inlined with
parameter renaming), tracks the held lockset, and builds a whole-program
*acquisition-order graph* — an edge ``X → Y`` means some worker can hold
key class ``X`` while acquiring ``Y``.  Key classes are the normalized
key expressions (textual, like the RL002/RL003 matching), so parameters
with the same name and literal keys unify across functions.

``RL015``
    A cycle in the acquisition-order graph built from ``try``/
    ``lock_pair`` acquisitions.  ``lock_pair(x, y)`` commits the caller
    to the canonical order *x before y*; two sites ordering the same
    pair both ways (or any longer cycle) is exactly the inversion the
    dynamic detector can only catch when a schedule hits it.
    Acquisitions through :func:`cond_acquire` are exempt — that is the
    sanctioned Algorithm-2 path whose k-order argument the static pass
    cannot (and must not pretend to) verify.
``RL016``
    Loop-carried lock accumulation without full back-off: a raw ``try``
    of a loop-dependent key that keeps locks from earlier iterations
    must, on failure, release everything it holds and abort the attempt
    (the ``_try_lock_all`` pattern) — otherwise it is hold-and-wait in
    a loop.
``RL017``
    Blocking acquisition while holding locks: spinning on a raw ``try``
    retry loop, or entering ``lock_pair`` (whose back-off releases only
    its *own* first lock), while locks acquired before the attempt are
    still held.  This is hold-and-wait; the paper's protocols never do
    it — multi-lock acquisition either backs off completely or goes
    through the k-ordered conditional path.

The execution is deliberately optimistic: every ``try`` is assumed to
succeed (pessimistic paths only *shrink* the held set, so optimism
over-approximates the order edges, which is the sound direction for
cycle detection), loop bodies run once, and ``if`` branches merge by
union of their held sets.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint import BLESSED, Finding
from repro.analysis.static.project import FuncInfo, Project
from repro.analysis.static.registry import Pass, register

__all__ = ["LOCKORDER_RULES", "build_order_graph"]

LOCKORDER_RULES = {
    "RL015": "potential deadlock cycle in the static lock-order graph",
    "RL016": "loop-carried lock accumulation without full back-off",
    "RL017": "blocking acquisition while holding locks (hold-and-wait)",
}

_MAX_INLINE_DEPTH = 5


@dataclass
class _Acq:
    """One acquisition event observed during symbolic execution."""

    key: str
    via: str                   # "try" | "lock_pair" | "cond_acquire"
    path: str
    line: int
    col: int
    func: str
    held_before: Tuple[str, ...]


@dataclass
class _Edge:
    src: str
    dst: str
    acq: _Acq
    ordered: bool              # via a sanctioned ordered discipline


def _subst(text: str, renames: Dict[str, str]) -> str:
    """Whole-word textual substitution of formal params by arg text."""
    if not renames:
        return text
    pattern = re.compile(
        r"\b(" + "|".join(re.escape(k) for k in renames) + r")\b")
    return pattern.sub(lambda m: renames[m.group(1)], text)


def _event_tuple(node: ast.expr) -> Optional[Tuple[str, List[ast.expr]]]:
    if isinstance(node, ast.Tuple) and node.elts:
        head = node.elts[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, list(node.elts[1:])
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


class _SymState:
    """Shared mutable state threaded through the inlined execution."""

    def __init__(self, root: FuncInfo) -> None:
        self.root = root
        self.held: Dict[str, str] = {}       # key -> via
        self.acqs: List[_Acq] = []
        self.findings: List[Finding] = []
        self.lockset_vars: Dict[str, Set[str]] = {}


class _Executor:
    """Symbolically execute one function body (with inlining)."""

    def __init__(
        self,
        project: Project,
        fn: FuncInfo,
        state: _SymState,
        renames: Dict[str, str],
        depth: int,
        nested: Optional[Dict[str, ast.FunctionDef]] = None,
    ) -> None:
        self.project = project
        self.fn = fn
        self.mod = fn.module
        self.state = state
        self.renames = renames
        self.depth = depth
        #: innermost-last stack of (loop body, held-before-loop,
        #: loop target names) for RL016/RL017 classification
        self.loops: List[Tuple[List[ast.stmt], Set[str], Set[str]]] = []
        self.nested = dict(nested or {})
        for stmt in fn.node.body:
            if isinstance(stmt, ast.FunctionDef):
                self.nested[stmt.name] = stmt

    # -- helpers ---------------------------------------------------------
    def _key(self, node: ast.expr) -> str:
        return _subst(ast.unparse(node), self.renames)

    def _record(self, node: ast.AST, key: str, via: str) -> None:
        self.state.acqs.append(_Acq(
            key=key, via=via, path=self.mod.path,
            line=node.lineno, col=node.col_offset,
            func=self.state.root.qualname,
            held_before=tuple(self.state.held),
        ))
        self.state.held.setdefault(key, via)

    def _emit(self, node: ast.AST, rule: str, msg: str) -> None:
        self.state.findings.append(Finding(
            self.mod.path, node.lineno, node.col_offset, rule, msg))

    def _outer_held(self) -> Set[str]:
        """Keys held since before the innermost active loop."""
        if self.loops:
            return self.loops[-1][1] & set(self.state.held)
        return set(self.state.held)

    def _loop_targets(self) -> Set[str]:
        return {t for _body, _held, targets in self.loops for t in targets}

    # -- failure-branch classification -----------------------------------
    def _loop_has_backoff(self) -> bool:
        """Does the innermost loop body contain a full back-off branch —
        an ``if`` arm that both releases (``("release", ...)`` or
        ``release_all``) and aborts (``return``/``break``/``raise``)?"""
        if not self.loops:
            return False
        body = self.loops[-1][0]
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.If):
                    continue
                for branch in (sub.body, sub.orelse):
                    has_release = has_abort = False
                    for inner in branch:
                        for n in ast.walk(inner):
                            if isinstance(n, ast.Yield) and n.value is not None:
                                ev = _event_tuple(n.value)
                                if ev and ev[0] == "release":
                                    has_release = True
                            elif isinstance(n, ast.YieldFrom) and isinstance(
                                    n.value, ast.Call):
                                if _call_name(n.value) == "release_all":
                                    has_release = True
                            elif isinstance(n, (ast.Return, ast.Break,
                                                ast.Raise)):
                                has_abort = True
                    if has_release and has_abort:
                        return True
        return False

    # -- acquisition handling --------------------------------------------
    def _raw_try(self, node: ast.AST, key: str) -> None:
        if self.loops and not self._loop_has_backoff():
            outer = self._outer_held() - {key}
            if outer:
                self._emit(node, "RL017",
                           f"spin-retry acquisition of {key!r} while "
                           f"holding {sorted(outer)} without full "
                           "back-off — hold-and-wait")
            if any(re.search(rf"\b{re.escape(t)}\b", key)
                   for t in self._loop_targets()):
                self._emit(node, "RL016",
                           f"loop accumulates locks ({key!r} per "
                           "iteration) but its failure path does not "
                           "release the held set and abort — use the "
                           "full back-off pattern (release_all + "
                           "return/break)")
        self._record(node, key, "try")

    def _lock_pair(self, node: ast.AST, x: str, y: str) -> None:
        if self.state.held:
            self._emit(node, "RL017",
                       f"lock_pair({x}, {y}) entered while holding "
                       f"{sorted(self.state.held)} — its back-off releases "
                       "only its own first lock, so this is hold-and-wait")
        # order edges: held -> x, held -> y (via _record) and x -> y,
        # because lock_pair acquires x first and thereby commits its
        # caller to the x-before-y orientation
        self._record(node, x, "lock_pair")
        self._record(node, y, "lock_pair")

    def _release(self, key: str) -> None:
        self.state.held.pop(key, None)

    def _release_all(self, arg: ast.expr) -> None:
        if isinstance(arg, (ast.Set, ast.List, ast.Tuple)):
            for e in arg.elts:
                self._release(self._key(e))
            return
        if isinstance(arg, ast.Name):
            name = self.renames.get(arg.id, arg.id)
            known = self.state.lockset_vars.get(name)
            if known is not None:
                for k in list(known):
                    self._release(k)
                return
        # unknown lockset: conservatively everything is released
        self.state.held.clear()

    # -- statement walk ---------------------------------------------------
    def run(self, body: Optional[List[ast.stmt]] = None) -> None:
        for stmt in (body if body is not None else self.fn.node.body):
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, (ast.For, ast.While)):
            targets: Set[str] = set()
            if isinstance(stmt, ast.For):
                for n in ast.walk(stmt.target):
                    if isinstance(n, ast.Name):
                        targets.add(n.id)
            # the While test executes per-iteration: scan it inside the
            # loop context (`while not (yield ("try", k)): spin` is the
            # canonical spin-retry shape)
            self.loops.append((stmt.body, set(self.state.held), targets))
            if isinstance(stmt, ast.While):
                self._scan_events(stmt.test)
            self.run(stmt.body)
            self.loops.pop()
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._scan_events(stmt.test)
            before = dict(self.state.held)
            self.run(stmt.body)
            after_body = dict(self.state.held)
            self.state.held = dict(before)
            self.run(stmt.orelse)
            # merge: a key held on either path stays interesting
            self.state.held.update(after_body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for h in stmt.handlers:
                self.run(h.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_events(item.context_expr)
            self.run(stmt.body)
            return
        # track lockset variables (same textual convention as RL002)
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and isinstance(
                        stmt.value, (ast.Set, ast.List, ast.Tuple)):
                    self.state.lockset_vars.setdefault(t.id, set()).update(
                        self._key(e) for e in stmt.value.elts)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and node.func.attr in (
                    "add", "append", "update", "extend") and isinstance(
                    node.func.value, ast.Name) and node.args:
                name = self.renames.get(node.func.value.id,
                                        node.func.value.id)
                self.state.lockset_vars.setdefault(name, set()).update(
                    self._key(a) for a in node.args)
        self._scan_events(stmt)

    def _scan_events(self, root: ast.AST) -> None:
        """Process yield / yield-from events in AST order under ``root``."""
        for node in ast.walk(root):
            if isinstance(node, ast.Yield) and node.value is not None:
                ev = _event_tuple(node.value)
                if ev is None:
                    continue
                kind, operands = ev
                if kind == "try" and operands:
                    self._raw_try(node, self._key(operands[0]))
                elif kind == "release" and operands:
                    self._release(self._key(operands[0]))
            elif isinstance(node, ast.YieldFrom) and isinstance(
                    node.value, ast.Call):
                self._yield_from(node, node.value)

    def _yield_from(self, node: ast.YieldFrom, call: ast.Call) -> None:
        name = _call_name(call)
        if name == "lock_pair" and len(call.args) >= 2:
            self._lock_pair(node, self._key(call.args[0]),
                            self._key(call.args[1]))
            return
        if name == "cond_acquire" and call.args:
            self._record(node, self._key(call.args[0]), "cond_acquire")
            return
        if name == "release_all" and call.args:
            self._release_all(call.args[0])
            return
        if name in BLESSED or name is None:
            return
        # inline project helpers (nested defs first, then module scope)
        if self.depth >= _MAX_INLINE_DEPTH:
            return
        target_node: Optional[ast.FunctionDef] = self.nested.get(name)
        target_fn: Optional[FuncInfo] = None
        if target_node is None:
            target_fn = self.project.resolve_function(self.mod, name)
            if target_fn is not None:
                target_node = target_fn.node
        if target_node is None:
            return
        renames: Dict[str, str] = {}
        formals = [a.arg for a in target_node.args.args]
        for formal, actual in zip(formals, call.args):
            renames[formal] = self._key(actual)
        sub_fn = FuncInfo(
            (target_fn.module if target_fn is not None else self.mod),
            target_node.name, target_node,
        )
        ex = _Executor(self.project, sub_fn, self.state, renames,
                       self.depth + 1,
                       nested=None if target_fn is not None else self.nested)
        ex.run()


def _is_protocol_generator(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Yield) and node.value is not None:
            ev = _event_tuple(node.value)
            if ev is not None and ev[0] in ("try", "release", "tick",
                                            "spin", "wave", "read", "write"):
                return True
        elif isinstance(node, ast.YieldFrom) and isinstance(
                node.value, ast.Call):
            if _call_name(node.value) in BLESSED:
                return True
    return False


def build_order_graph(project: Project) -> Tuple[List[_Edge], List[Finding]]:
    """Run the symbolic execution; return (order edges, RL016/17 findings)."""
    edges: List[_Edge] = []
    findings: List[Finding] = []
    for fn in project.iter_functions():
        if fn.module.tree is None:
            continue
        if fn.name in BLESSED:
            continue
        if not _is_protocol_generator(fn.node):
            continue
        state = _SymState(fn)
        _Executor(project, fn, state, {}, 0).run()
        findings.extend(state.findings)
        for acq in state.acqs:
            ordered = acq.via == "cond_acquire"
            for held in acq.held_before:
                if held == acq.key:
                    continue
                edges.append(_Edge(held, acq.key, acq, ordered))
    return edges, findings


def _find_cycles(edges: List[_Edge]) -> List[List[_Edge]]:
    """Cycles in the order graph restricted to non-ordered edges."""
    adj: Dict[str, List[_Edge]] = {}
    for e in edges:
        if e.ordered:
            continue
        adj.setdefault(e.src, []).append(e)
    cycles: List[List[_Edge]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[_Edge], on_path: Set[str]):
        for e in adj.get(node, ()):
            if e.dst == start:
                cyc = path + [e]
                key_nodes = tuple(sorted({x.src for x in cyc}))
                if key_nodes not in seen_cycles:
                    seen_cycles.add(key_nodes)
                    cycles.append(cyc)
            elif e.dst not in on_path and len(path) < 6:
                dfs(start, e.dst, path + [e], on_path | {e.dst})

    for start in sorted(adj):
        dfs(start, start, [], {start})
    return cycles


def _run(project: Project) -> List[Finding]:
    edges, findings = build_order_graph(project)
    for cyc in _find_cycles(edges):
        order = " -> ".join([e.src for e in cyc] + [cyc[0].src])
        sites = ", ".join(
            f"{e.acq.func}() {e.acq.path}:{e.acq.line}" for e in cyc)
        anchor = cyc[0].acq
        findings.append(Finding(
            anchor.path, anchor.line, anchor.col, "RL015",
            f"acquisition-order cycle {order} (sites: {sites}) — the same "
            "keys are locked in inconsistent order; canonicalize the "
            "orientation (as lock_pair callers do via the k-order check) "
            "or route through cond_acquire",
        ))
    return findings


register(Pass(
    name="lockorder",
    doc="static lock-order graph over protocol generators",
    rules=LOCKORDER_RULES,
    run=_run,
))
