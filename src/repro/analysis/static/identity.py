"""Identity-domain dataflow: external ids vs. interned dense ints.

Since the representation refactor the codebase runs two vertex-identity
domains: *external* hashable ids on the public surface and *interned*
dense ints on everything below the :class:`~repro.core.boundary.Boundary`.
Nothing at runtime distinguishes the two (both are often ``int``), so a
missed translation is invisible until a non-identity interner regime
happens to be exercised.  This pass infers a domain for local values
from API provenance and flags cross-domain flows:

``RL010``
    A value of *external* domain reaches an int-domain sink: a
    ``raw_get``/``raw_set`` key, a subscript of a ``raw_map``/
    ``IntSlotMap``/``make_vertex_map`` store or of a ``.state./.korder.``
    vertex map, or an argument to a function defined in an int-native
    module (``korder``, ``order_insert`` …).
``RL011``
    An *interned* value escapes through a ``return`` of a public
    (non-underscore) function in a facade/service module — interned ints
    must be translated out (``vertex_out``/``core_map_out``/…) before
    they reach users.
``RL012``
    Redundant double translation: an in-translation
    (``intern``/``vertex_in``/``edges_in``) applied to an already-int
    value, or an out-translation (``external``/``vertex_out``/…) applied
    to an already-external value.
``RL013``
    Cross-domain comparison or membership test (``==``, ``in``, …)
    between an interned and an external value — always a logic bug, the
    domains only coincide in the identity regime.
``RL014``
    Translation below the boundary: int-native modules must not touch
    ``VertexInterner``/``Boundary`` or call any translation API — the
    boundary is the *only* place the two domains may meet.

Domain inference is deliberately local and provenance-based (no
annotations exist to distinguish the domains): values produced by
out-translation calls are *external*, by in-translation calls are
*interned*; list/set/comprehension and subscript propagation follow the
element domain; public facade-method parameters are seeded *external*
(the facade contract).  Unknown stays unknown — the pass prefers silence
to false positives.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.lint import Finding
from repro.analysis.static.project import FuncInfo, ModuleInfo, Project
from repro.analysis.static.registry import Pass, register

__all__ = ["IDENTITY_RULES"]

IDENTITY_RULES = {
    "RL010": "external-domain value flows into an int-domain sink",
    "RL011": "interned int escapes a public facade/service return",
    "RL012": "redundant double translation across the boundary",
    "RL013": "cross-domain comparison or membership test",
    "RL014": "translation API used below the boundary (int-native zone)",
}

#: out-translation methods — results are external-domain
EXT_PRODUCERS = {"external", "externals", "vertex_out", "vertices_out",
                 "core_map_out"}
#: in-translation methods — results are int-domain
INT_PRODUCERS = {"intern", "intern_many", "vertex_in", "edges_in", "lookup",
                 "lookup_default"}
#: constructors / views whose subscript keys must be int-domain
INT_MAP_MAKERS = {"raw_map", "IntSlotMap", "make_vertex_map"}
#: names whose call is itself an int-keyed sink (key argument position)
RAW_SLOT_CALLS = {"raw_get": 1, "raw_set": 1}
#: attribute-chain tails naming the int-keyed per-vertex state maps
_STATE_MAP_ATTRS = {"core", "items", "d_out", "mcd"}
_STATE_OWNER_ATTRS = {"state", "korder", "ko"}

#: path fragments of int-native modules (the zone below the boundary)
INT_ZONE = (
    "repro/core/korder",
    "repro/core/state",
    "repro/core/order_insert",
    "repro/core/order_remove",
    "repro/core/pqueue",
    "repro/core/traversal",
    "repro/parallel/parallel_insert",
    "repro/parallel/parallel_remove",
    "repro/om/",
)
#: path fragments of the translation layer itself (exempt from RL010-13:
#: mixing domains is their whole job)
TRANSLATION_ZONE = ("repro/core/boundary", "repro/graph/", "repro/analysis/")
#: additional public-surface fragments for RL011 (facades are detected
#: dynamically by their `Boundary(...)` construction)
SERVICE_ZONE = ("repro/service/",)

_IN = "int"
_EX = "ext"
_INTMAP = "intmap"


def _attr_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_state_map_chain(node: ast.expr) -> bool:
    """``self.state.korder.core`` / ``ko.items`` … — int-keyed state maps."""
    if not (isinstance(node, ast.Attribute) and node.attr in _STATE_MAP_ATTRS):
        return False
    owner = node.value
    while isinstance(owner, ast.Attribute):
        if owner.attr in _STATE_OWNER_ATTRS:
            return True
        owner = owner.value
    return isinstance(owner, ast.Name) and owner.id in _STATE_OWNER_ATTRS


class _FuncAnalysis:
    """Statement-order domain inference over one function body."""

    def __init__(self, pass_ctx: "_IdentityPass", fn: FuncInfo) -> None:
        self.ctx = pass_ctx
        self.fn = fn
        self.mod = fn.module
        self.env: Dict[str, str] = {}
        self.findings: List[Finding] = []

    # -- domain of an expression ---------------------------------------
    def domain(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Call):
            name = _attr_name(node.func)
            if name in EXT_PRODUCERS:
                return _EX
            if name in INT_PRODUCERS:
                return _IN
            if name in INT_MAP_MAKERS:
                return _INTMAP
            if name in ("list", "sorted", "set", "tuple", "reversed") and node.args:
                return self.domain(node.args[0])
            return None
        if isinstance(node, (ast.List, ast.Set, ast.Tuple)) and node.elts:
            doms = {self.domain(e) for e in node.elts}
            if len(doms) == 1:
                return doms.pop()
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            saved = dict(self.env)
            try:
                for gen in node.generators:
                    it_dom = self.domain(gen.iter)
                    if it_dom in (_IN, _EX) and isinstance(gen.target, ast.Name):
                        self.env[gen.target.id] = it_dom
                return self.domain(node.elt)
            finally:
                self.env = saved
        if isinstance(node, ast.Subscript):
            # element of a domain-tagged collection keeps the domain
            base = self.domain(node.value)
            if base in (_IN, _EX):
                return base
            return None
        if isinstance(node, ast.IfExp):
            a, b = self.domain(node.body), self.domain(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.Starred):
            return self.domain(node.value)
        return None

    # -- sinks ----------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, msg: str) -> None:
        self.findings.append(Finding(
            self.mod.path, node.lineno, node.col_offset, rule, msg))

    def _check_call(self, node: ast.Call) -> None:
        name = _attr_name(node.func)
        if name is None:
            return
        # RL012: double translation
        if name in INT_PRODUCERS and node.args:
            if self.domain(node.args[0]) == _IN:
                self._emit(node, "RL012",
                           f"{name}() applied to an already-interned value — "
                           "double in-translation")
        if name in EXT_PRODUCERS and node.args:
            if self.domain(node.args[0]) == _EX:
                self._emit(node, "RL012",
                           f"{name}() applied to an already-external value — "
                           "double out-translation")
        # RL010: raw-slot key arguments must be int-domain
        pos = RAW_SLOT_CALLS.get(name)
        if pos is not None and len(node.args) > pos:
            if self.domain(node.args[pos]) == _EX:
                self._emit(node, "RL010",
                           f"external id passed as {name}() slot key — "
                           "intern it at the boundary first")
        # RL010: external value into an int-native callee
        callee = self.ctx.project.resolve_function(self.mod, name) \
            if isinstance(node.func, ast.Name) else None
        if callee is not None and callee.module.in_zone(*INT_ZONE):
            for arg in node.args:
                if self.domain(arg) == _EX:
                    self._emit(node, "RL010",
                               f"external-domain value passed to int-native "
                               f"{callee.qualname}() "
                               f"({callee.module.modname}) without "
                               "boundary translation")

    def _check_subscript(self, node: ast.Subscript) -> None:
        base_is_int_map = (
            self.domain(node.value) == _INTMAP
            or _is_state_map_chain(node.value)
        )
        if not base_is_int_map:
            return
        key = node.slice
        if self.domain(key) == _EX:
            self._emit(node, "RL010",
                       "external id used to index an int-keyed vertex map — "
                       "intern it at the boundary first")

    def _check_compare(self, node: ast.Compare) -> None:
        ops = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)
        sides = [node.left] + list(node.comparators)
        doms = [self.domain(s) for s in sides]
        if _IN in doms and _EX in doms and any(
            isinstance(op, ops) for op in node.ops
        ):
            self._emit(node, "RL013",
                       "comparison mixes interned and external identity "
                       "domains — translate one side first")

    def _check_return(self, node: ast.Return) -> None:
        if not self.ctx.public_surface(self.mod):
            return
        if self.fn.name.startswith("_"):
            return
        if node.value is not None and self.domain(node.value) == _IN:
            self._emit(node, "RL011",
                       f"public {self.fn.qualname}() returns interned int "
                       "ids — translate out (vertex_out/vertices_out/"
                       "core_map_out) before returning")

    # -- driver ---------------------------------------------------------
    def _seed_params(self) -> None:
        """Public facade-method parameters carry external ids."""
        if self.fn.cls is None or self.fn.name.startswith("_"):
            return
        if not self.ctx.facade(self.mod):
            return
        args = self.fn.node.args
        names = [a.arg for a in args.args + args.kwonlyargs]
        for n in names:
            if n in ("self", "cls"):
                continue
            self.env[n] = _EX

    def _scan_expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._check_call(sub)
            elif isinstance(sub, ast.Subscript):
                self._check_subscript(sub)
            elif isinstance(sub, ast.Compare):
                self._check_compare(sub)

    def _assign(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            dom = self.domain(value)
            if dom is not None:
                self.env[target.id] = dom
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            value, (ast.Tuple, ast.List)
        ) and len(target.elts) == len(value.elts):
            for t, v in zip(target.elts, value.elts):
                self._assign(t, v)

    def _run_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            # check every expression in the statement first …
            for field_value in ast.iter_child_nodes(stmt):
                if isinstance(field_value, ast.expr):
                    self._scan_expr(field_value)
            if isinstance(stmt, ast.Return):
                self._check_return(stmt)
            # … then update the environment
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    self._assign(t, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign(stmt.target, stmt.value)
            elif isinstance(stmt, ast.For):
                it_dom = self.domain(stmt.iter)
                if it_dom in (_IN, _EX) and isinstance(stmt.target, ast.Name):
                    self.env[stmt.target.id] = it_dom
                self._run_body(stmt.body)
                self._run_body(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._run_body(stmt.body)
                self._run_body(stmt.orelse)
            elif isinstance(stmt, ast.If):
                self._run_body(stmt.body)
                self._run_body(stmt.orelse)
            elif isinstance(stmt, ast.With):
                self._run_body(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._run_body(stmt.body)
                for h in stmt.handlers:
                    self._run_body(h.body)
                self._run_body(stmt.orelse)
                self._run_body(stmt.finalbody)
            # nested defs are analyzed as their own FuncInfo entries

    def run(self) -> List[Finding]:
        self._seed_params()
        self._run_body(self.fn.node.body)
        return self.findings


class _IdentityPass:
    def __init__(self, project: Project) -> None:
        self.project = project
        self._facade_cache: Dict[str, bool] = {}

    def facade(self, mod: ModuleInfo) -> bool:
        """Modules that construct a Boundary — the facade layer."""
        hit = self._facade_cache.get(mod.path)
        if hit is None:
            hit = False
            if mod.tree is not None:
                for node in ast.walk(mod.tree):
                    if isinstance(node, ast.Call) and \
                            _attr_name(node.func) == "Boundary":
                        hit = True
                        break
            self._facade_cache[mod.path] = hit
        return hit

    def public_surface(self, mod: ModuleInfo) -> bool:
        return self.facade(mod) or mod.in_zone(*SERVICE_ZONE)

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        for mod in self.project.iter_modules():
            if mod.tree is None:
                continue
            if mod.in_zone(*INT_ZONE):
                findings.extend(self._check_int_zone(mod))
        for fn in self.project.iter_functions():
            mod = fn.module
            if mod.tree is None or mod.in_zone(*TRANSLATION_ZONE) \
                    or mod.in_zone(*INT_ZONE):
                continue
            findings.extend(_FuncAnalysis(self, fn).run())
        return findings

    def _check_int_zone(self, mod: ModuleInfo) -> List[Finding]:
        """RL014: no translation API below the boundary."""
        findings: List[Finding] = []
        assert mod.tree is not None
        banned_names = {"VertexInterner", "Boundary"}
        banned_calls = EXT_PRODUCERS | INT_PRODUCERS
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                name = _attr_name(node.func)
                if name in banned_calls and isinstance(node.func, ast.Attribute):
                    findings.append(Finding(
                        mod.path, node.lineno, node.col_offset, "RL014",
                        f"translation call .{name}() below the boundary — "
                        "int-native modules must receive interned ids, "
                        "never translate",
                    ))
            elif isinstance(node, ast.Name) and node.id in banned_names:
                findings.append(Finding(
                    mod.path, node.lineno, node.col_offset, "RL014",
                    f"{node.id} referenced below the boundary — the "
                    "interner/boundary layer must stay above int-native "
                    "modules",
                ))
        return findings


def _run(project: Project) -> List[Finding]:
    return _IdentityPass(project).run()


register(Pass(
    name="identity",
    doc="identity-domain dataflow (external ids vs. interned ints)",
    rules=IDENTITY_RULES,
    run=_run,
))
