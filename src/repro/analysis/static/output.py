"""Finding renderers: text, JSON and SARIF 2.1.0.

The JSON shape is the original single-checker contract — a plain list of
``{"path", "line", "col", "rule", "message"}`` objects — kept stable for
scripts that already parse it.  SARIF is for code-scanning UIs (the CI
workflow uploads it as an artifact).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List

from repro.analysis.lint import Finding

__all__ = ["render_text", "render_json", "render_sarif", "RENDERERS"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: List[Finding], rules: Dict[str, str]) -> str:
    lines = [f.format() for f in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: List[Finding], rules: Dict[str, str]) -> str:
    return json.dumps([asdict(f) for f in findings], indent=2)


def render_sarif(findings: List[Finding], rules: Dict[str, str]) -> str:
    """SARIF 2.1.0: one run, one driver, rule metadata + results."""
    used = sorted({f.rule for f in findings} | set(rules))
    rule_objs = [
        {
            "id": rid,
            "shortDescription": {"text": rules.get(rid, rid)},
        }
        for rid in used
    ]
    index = {rid: i for i, rid in enumerate(used)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "warning" if f.rule in ("RL006",) else "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri":
                            "https://example.invalid/repro/docs/analysis.md",
                        "rules": rule_objs,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
