"""The unified ``repro-lint`` command line.

One driver for every registered pass::

    repro-lint src/ tests/                   # all rules, text output
    repro-lint --select lockorder,RL010 src/ # a pass + one rule
    repro-lint --format sarif -o lint.sarif src/
    repro-lint --baseline lint-baseline.json src/
    repro-lint --write-baseline lint-baseline.json src/
    repro-lint --list-rules

Also reachable as ``python -m repro.analysis`` and (for compatibility)
``python -m repro.analysis.lint``.

Exit status: 0 clean, 1 findings remain, 2 usage errors — including
paths that do not exist, which are reported by name on stderr instead
of silently linting nothing.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import repro.analysis.static  # noqa: F401 - registers the passes
from repro.analysis.static.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
)
from repro.analysis.static.output import RENDERERS
from repro.analysis.static.project import Project
from repro.analysis.static.registry import (
    all_rules,
    registered_passes,
    run_analysis,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-lint",
        description="multi-pass static analysis for the repro codebase",
    )
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids (RL015), pass names (lockorder) "
        "or prefixes (RL01)",
    )
    ap.add_argument(
        "--format",
        choices=sorted(RENDERERS),
        default="text",
        help="output format (default: text)",
    )
    ap.add_argument(
        "-o", "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    ap.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    ap.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as the new baseline and exit 0",
    )
    ap.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (grouped by pass) and exit",
    )
    return ap


def _list_rules() -> str:
    lines = ["framework:"]
    from repro.analysis.static.registry import META_RULES

    for rid, desc in sorted(META_RULES.items()):
        lines.append(f"  {rid}  {desc}")
    for p in registered_passes():
        lines.append(f"{p.name}: {p.doc}")
        for rid, desc in sorted(p.rules.items()):
            lines.append(f"  {rid}  {desc}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout consumer went away (`repro-lint --list-rules | head`);
        # not a lint failure, and the traceback would hide real output
        sys.stderr.close()
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    ap = _build_parser()
    ns = ap.parse_args(argv)

    if ns.list_rules:
        print(_list_rules())
        return 0

    if not ns.paths:
        print("repro-lint: no paths given (try: repro-lint src/)",
              file=sys.stderr)
        return 2

    missing = [p for p in ns.paths if not os.path.exists(p)]
    if missing:
        for p in missing:
            print(f"repro-lint: path does not exist: {p}", file=sys.stderr)
        return 2

    baseline = None
    if ns.baseline:
        try:
            baseline = load_baseline(ns.baseline)
        except BaselineError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    project = Project.load(ns.paths)
    try:
        result = run_analysis(project, select=ns.select, baseline=baseline)
    except ValueError as exc:  # bad --select expression
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if ns.write_baseline:
        save_baseline(ns.write_baseline, result.findings)
        print(f"wrote {len(result.findings)} entr"
              f"{'y' if len(result.findings) == 1 else 'ies'} to "
              f"{ns.write_baseline}", file=sys.stderr)
        return 0

    report = RENDERERS[ns.format](result.findings, all_rules())
    if ns.output:
        with open(ns.output, "w", encoding="utf-8") as fh:
            fh.write(report)
            if report:
                fh.write("\n")
    elif report:
        print(report)
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
