"""Multi-pass static analysis framework for the repro codebase.

Importing this package registers every built-in pass with the
:mod:`~repro.analysis.static.registry`:

``lockrules``
    RL001–RL005, the original worker lock-discipline checker
    (:mod:`repro.analysis.lint`), adapted to the shared project loader.
``identity``
    RL010–RL014, identity-domain dataflow — external vertex ids vs.
    interned dense ints, bridged only by the Boundary translation layer.
``lockorder``
    RL015–RL017, the whole-program static lock-order graph over
    protocol generators (deadlock cycles, loop-carried accumulation,
    hold-and-wait).
``journalschema``
    RL020–RL022, WAL record-kind and field-shape exhaustiveness between
    journal writers, replay readers and the declared kind table.
``bufferschema``
    RL023–RL025, shared-memory buffer-slot store/load lockstep between
    the query-plane publisher and its readers (``QP_*`` slots).

See ``docs/analysis.md`` for the full rule table and workflow.
"""

from repro.analysis.static import (  # noqa: F401 - import-time registration
    bufferschema,
    identity,
    journalschema,
    lockorder,
    lockrules,
)
from repro.analysis.static.project import FuncInfo, ModuleInfo, Project
from repro.analysis.static.registry import (
    AnalysisResult,
    Pass,
    all_rules,
    register,
    registered_passes,
    run_analysis,
)

__all__ = [
    "Project",
    "ModuleInfo",
    "FuncInfo",
    "Pass",
    "register",
    "registered_passes",
    "all_rules",
    "run_analysis",
    "AnalysisResult",
]
