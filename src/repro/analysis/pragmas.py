"""Suppression pragmas shared by the legacy lint and the static framework.

Two pragma forms are recognized:

``# lint: ok`` / ``# lint: ok[RL002, RL003]``
    Suppress findings *on that line* — every rule for the bare form, only
    the listed rules for the bracketed form.

``# lint: file-ok[RL001, RL003]``
    Suppress the listed rules for the *whole file*.  Conventionally
    placed at the top of files whose entire purpose is to violate a rule
    (e.g. the deliberate-deadlock workers in ``tests/test_sim_runtime.py``).

Parsing is tolerant: whitespace is allowed around the brackets, the rule
names and the commas (``# lint: ok[ RL002 , RL003 ]``).  What is *not*
tolerated silently is a typo: a rule name that does not exist (``RL02``,
``RL0003``, ``rl2``) suppresses nothing, and when the pragma is parsed
with a known-rule universe the parser reports it so the framework can
emit an ``RL006`` warning instead of quietly ignoring the suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "Pragma",
    "FilePragmas",
    "parse_line_pragma",
    "collect_pragmas",
]

# `ok` / `file-ok`, optional whitespace everywhere, any junk inside the
# brackets (validated afterwards so typos can be *reported*, not dropped).
_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>file-ok|ok)\s*(?:\[(?P<rules>[^\]]*)\])?"
)


@dataclass
class Pragma:
    """One parsed suppression pragma."""

    line: int                 #: 1-based line it sits on
    file_scope: bool          #: True for ``file-ok``
    rules: Optional[Set[str]]  #: None = suppress everything (bare ``ok``)
    unknown: List[str] = field(default_factory=list)  #: unrecognized names


@dataclass
class FilePragmas:
    """All pragmas of one source file, ready for suppression queries."""

    by_line: Dict[int, Pragma] = field(default_factory=dict)
    file_rules: Set[str] = field(default_factory=set)
    pragmas: List[Pragma] = field(default_factory=list)

    def suppresses(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        p = self.by_line.get(line)
        if p is None:
            return False
        return p.rules is None or rule in p.rules


def _split_rules(
    raw: str, known: Optional[Iterable[str]]
) -> Tuple[Set[str], List[str]]:
    """Split a bracket body into (recognized, unknown) rule names."""
    known_set = set(known) if known is not None else None
    rules: Set[str] = set()
    unknown: List[str] = []
    for tok in raw.split(","):
        name = tok.strip()
        if not name:
            continue
        if known_set is None or name in known_set:
            rules.add(name)
        else:
            unknown.append(name)
    return rules, unknown


def parse_line_pragma(
    line_text: str, line: int = 0, known: Optional[Iterable[str]] = None
) -> Optional[Pragma]:
    """Parse the pragma on one source line, or None.

    ``known`` is the rule-id universe; names outside it land in
    ``Pragma.unknown`` instead of being silently treated as rules.  With
    ``known=None`` every syntactically plausible name is accepted.
    """
    m = _PRAGMA_RE.search(line_text)
    if m is None:
        return None
    file_scope = m.group("kind") == "file-ok"
    raw = m.group("rules")
    if raw is None:
        # bare `ok` suppresses everything on the line; a bare `file-ok`
        # would suppress the whole lint and is treated as rule-less (a
        # no-op) — the caller warns via `unknown` being irrelevant here.
        return Pragma(line, file_scope, None if not file_scope else set())
    rules, unknown = _split_rules(raw, known)
    return Pragma(line, file_scope, rules, unknown)


def _comment_lines(source_lines: List[str]) -> Optional[Set[int]]:
    """Line numbers carrying an actual ``#`` comment token.

    Pragma-looking text inside docstrings (e.g. documentation *about*
    pragmas) must not parse as a pragma, so the scan is restricted to
    real comments.  Returns None when the file cannot be tokenized
    (the caller falls back to scanning every line — a file broken
    enough to defeat the tokenizer gets RL000 anyway).
    """
    src = "\n".join(source_lines) + "\n"
    lines: Set[int] = set()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(src).readline):
            if tok.type == tokenize.COMMENT:
                lines.add(tok.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    return lines


def collect_pragmas(
    source_lines: List[str], known: Optional[Iterable[str]] = None
) -> FilePragmas:
    """Scan a file's lines for pragmas (line- and file-scoped)."""
    out = FilePragmas()
    commented: Optional[Set[int]] = None
    scanned = False
    for i, text in enumerate(source_lines, start=1):
        if "lint:" not in text:
            continue
        if not scanned:
            commented = _comment_lines(source_lines)
            scanned = True
        if commented is not None and i not in commented:
            continue
        p = parse_line_pragma(text, i, known)
        if p is None:
            continue
        out.pragmas.append(p)
        if p.file_scope:
            out.file_rules.update(p.rules or ())
        else:
            out.by_line[i] = p
    return out
