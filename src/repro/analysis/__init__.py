"""Concurrency analysis for the parallel maintenance protocols.

Two cooperating layers (see ``docs/analysis.md``):

* **Dynamic race detection** (:mod:`repro.analysis.races` +
  :mod:`repro.analysis.trace`): Eraser-style candidate locksets combined
  with vector-clock happens-before tracking, layered onto the event
  streams of :class:`~repro.parallel.runtime.SimMachine` and the
  real-thread backend.  Shared vertex state (core numbers, ``d_out``,
  ``mcd``), OM order positions and PQ versions are traced through cheap
  wrappers; accesses the paper *designs* to be racy (Algorithm 4 order
  reads, the t protocol, ∅-invalidation wipes) are annotated *relaxed*
  and every other unsynchronized conflicting pair is reported with both
  access sites, the schedule step and the (empty) common lockset.

* **Static lock-discipline lint** (:mod:`repro.analysis.lint`): an
  AST checker for worker-generator code — try results must be consumed,
  acquired keys must reach a release on the function text, pair
  acquisition must go through ``lock_pair``/``cond_acquire``, event
  tuples must be well-formed.  Run as ``python -m repro.analysis.lint
  src/`` (or the ``repro-lint`` console script).

Instrumentation is strictly opt-in: no detector attached means the
algorithms run on plain dicts with zero tracing overhead.
"""

from repro.analysis.races import Access, Race, RaceDetector, RaceReport
from repro.analysis.trace import TracedDict, instrument_state

__all__ = [
    "Access",
    "Race",
    "RaceDetector",
    "RaceReport",
    "TracedDict",
    "instrument_state",
]
