"""Lockset / happens-before data-race detection for the worker protocols.

The detector watches two information streams during a simulated (or
threaded) run:

* **synchronization events** from the machine — every successful lock
  acquire and every release.  Releases publish the worker's vector clock
  into the lock; acquires join it back, building the happens-before
  partial order exactly as in FastTrack/ThreadSanitizer.
* **shared accesses** from the traced state wrappers
  (:mod:`repro.analysis.trace`) — plain or *relaxed* reads and writes of
  abstract locations such as ``("core", u)``, ``("d_out", u)``,
  ``("order", u)``.

A pair of accesses to the same location by different workers, at least
one of them a write, is reported as a race **unless**

* the accesses are ordered by happens-before (vector clocks), or
* the workers held a common lock around both accesses (locksets), or
* either access is annotated *relaxed* — the paper's designed benign
  races: Algorithm 4 order reads validated by status counters, the
  t-protocol's atomics, and ∅-invalidation wipes of lazy counters.

Combining both suppressions makes the detector conservative (it can
miss races a pure happens-before tool would flag on a lucky schedule)
but free of false positives on the paper's protocol, which is what lets
the clean-run regression gate assert *zero* races across many seeds.

Each reported :class:`Race` carries both access sites (resolved to
``file:line`` in the algorithm code), the workers, the schedule step and
the per-side locksets, so a protocol regression points at the exact
unprotected statement instead of a differential-test mismatch several
layers later.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

Loc = Tuple
Key = Hashable

__all__ = ["Access", "Race", "RaceDetector", "RaceReport"]


# Frames inside these files are instrumentation plumbing, not access
# sites; site resolution walks past them to the algorithm code.
_PLUMBING_SUFFIXES = (
    "repro/analysis/races.py",
    "repro/analysis/trace.py",
    "repro/core/state.py",
    "repro/core/korder.py",
)


def _short_site(filename: str, lineno: int) -> str:
    parts = filename.replace("\\", "/").rsplit("/", 2)
    return f"{'/'.join(parts[-2:])}:{lineno}"


@dataclass(frozen=True)
class Access:
    """One side of a reported race."""

    worker: int
    op: str            # "read" | "write"
    site: str          # file:line in the algorithm code
    lockset: frozenset
    step: int          # machine event count when the access happened


@dataclass(frozen=True)
class Race:
    """An unsynchronized conflicting access pair."""

    loc: Loc
    a: Access          # the earlier (stored) access
    b: Access          # the access that completed the race
    common_lockset: frozenset = frozenset()

    def describe(self) -> str:
        return (
            f"data race on {self.loc!r}: "
            f"{self.a.op} at {self.a.site} by worker {self.a.worker} "
            f"(locks {set(self.a.lockset) or '{}'}) vs "
            f"{self.b.op} at {self.b.site} by worker {self.b.worker} "
            f"(locks {set(self.b.lockset) or '{}'}) "
            f"at step {self.b.step}; common lockset "
            f"{set(self.common_lockset) or '{}'}"
        )


@dataclass
class RaceReport:
    """Summary of one detection run (see :meth:`RaceDetector.report`)."""

    races: List[Race] = field(default_factory=list)
    accesses_traced: int = 0
    relaxed_accesses: int = 0
    sync_ops: int = 0
    locations: int = 0
    #: injected faults observed during the run, ``[(step, worker, kind)]``
    #: (see ``repro.faults``) — lets a trace attribute post-crash
    #: anomalies to their injection point
    fault_events: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.races

    def counters(self) -> Dict[str, int]:
        """Machine-readable counters (consumed by the bench reporting)."""
        return {
            "races": len(self.races),
            "accesses_traced": self.accesses_traced,
            "relaxed_accesses": self.relaxed_accesses,
            "sync_ops": self.sync_ops,
            "locations": self.locations,
            "fault_events": len(self.fault_events),
        }

    def format(self) -> str:
        lines = [
            f"{len(self.races)} race(s); "
            f"{self.accesses_traced} accesses traced "
            f"({self.relaxed_accesses} relaxed), "
            f"{self.sync_ops} sync ops, {self.locations} locations"
        ]
        lines.extend(r.describe() for r in self.races)
        return "\n".join(lines)


class _LocState:
    """Last plain access per (worker, op) for one location."""

    __slots__ = ("writes", "reads")

    def __init__(self) -> None:
        # wid -> (own_clock, lockset, site, step)
        self.writes: Dict[int, tuple] = {}
        self.reads: Dict[int, tuple] = {}


class RaceDetector:
    """Online lockset + vector-clock race detector.

    One instance observes one run (or one sequence of runs on the same
    worker count — clocks persist across batches, which is correct: the
    sequential gap between batches orders them).  Attach it via
    ``ParallelOrderMaintainer(..., detector=...)`` or pass it straight
    to :class:`~repro.parallel.runtime.SimMachine`.

    Parameters
    ----------
    max_races:
        Stop recording new races after this many distinct reports
        (counters keep accumulating).
    """

    def __init__(self, max_races: int = 64) -> None:
        self.max_races = max_races
        self.races: List[Race] = []
        self.accesses_traced = 0
        self.fault_events: List[tuple] = []
        self.relaxed_accesses = 0
        self.sync_ops = 0
        self.step = 0
        # worker the machine is currently advancing (sim backend)
        self.current: Optional[int] = None
        self._vc: List[List[int]] = []
        self._held: List[Set[Key]] = []
        self._held_frozen: List[frozenset] = []
        self._lock_clocks: Dict[Key, List[int]] = {}
        self._locs: Dict[Loc, _LocState] = {}
        self._seen_pairs: Set[tuple] = set()
        self._threads: Dict[int, int] = {}
        self._mutex: Optional[threading.Lock] = None
        self._started = False

    # ------------------------------------------------------------------
    # machine hooks
    # ------------------------------------------------------------------
    def begin(self, num_workers: int, threads: bool = False) -> None:
        """Called by the machine before a run.  Re-entrant: a second run
        with the same worker count keeps clocks (batches are ordered)."""
        if self._started and len(self._vc) == num_workers:
            if threads and self._mutex is None:
                self._mutex = threading.Lock()
            return
        # own components start at 1 so that two never-synchronized
        # workers are NOT vacuously happens-before ordered (a stored
        # epoch is always >= 1; an observer knows 0 of a stranger)
        self._vc = [[0] * num_workers for _ in range(num_workers)]
        for i in range(num_workers):
            self._vc[i][i] = 1
        if self._started:
            # worker count changed: stored epochs are incomparable with
            # the fresh clocks, so drop the cross-run access tables
            self._locs = {}
        self._held = [set() for _ in range(num_workers)]
        self._held_frozen = [frozenset() for _ in range(num_workers)]
        self._lock_clocks = {}
        self._mutex = threading.Lock() if threads else None
        self._started = True

    def register_thread(self, wid: int) -> None:
        """Thread backend: bind the calling thread to worker ``wid``."""
        self._threads[threading.get_ident()] = wid

    def on_fault(self, wid: int, kind: str, step: Optional[int] = None) -> None:
        """An injected fault hit worker ``wid`` (``repro.faults``).

        Crash semantics for the race analysis: the dead worker's locks
        are force-released by the runtime *without* publishing its clock
        into them — whoever acquires an orphaned lock next is NOT
        happens-after the dead worker's critical section.  That is the
        honest model (the crash interrupted the section mid-flight), and
        it is exactly why post-crash state must be rebuilt, not trusted.
        The fault itself is recorded so race traces can attribute
        post-crash anomalies to the injection point.
        """
        if self._mutex is not None:
            with self._mutex:
                self._on_fault(wid, kind, step)
        else:
            self._on_fault(wid, kind, step)

    def _on_fault(self, wid: int, kind: str, step: Optional[int]) -> None:
        self.fault_events.append((step if step is not None else self.step, wid, kind))
        if wid < len(self._held):
            # drop locksets without the release-time clock publication
            self._held[wid] = set()
            self._held_frozen[wid] = frozenset()

    def on_acquire(self, wid: int, key: Key) -> None:
        """Successful CAS: join the lock's release clock into the worker."""
        if self._mutex is not None:
            with self._mutex:
                self._on_acquire(wid, key)
        else:
            self._on_acquire(wid, key)

    def _on_acquire(self, wid: int, key: Key) -> None:
        self.sync_ops += 1
        lc = self._lock_clocks.get(key)
        if lc is not None:
            vc = self._vc[wid]
            for i, c in enumerate(lc):
                if c > vc[i]:
                    vc[i] = c
        self._held[wid].add(key)
        self._held_frozen[wid] = frozenset(self._held[wid])

    def on_release(self, wid: int, key: Key) -> None:
        """Release: publish the worker's clock into the lock."""
        if self._mutex is not None:
            with self._mutex:
                self._on_release(wid, key)
        else:
            self._on_release(wid, key)

    def _on_release(self, wid: int, key: Key) -> None:
        self.sync_ops += 1
        vc = self._vc[wid]
        lc = self._lock_clocks.get(key)
        if lc is None:
            self._lock_clocks[key] = list(vc)
        else:
            for i, c in enumerate(vc):
                if c > lc[i]:
                    lc[i] = c
        vc[wid] += 1
        self._held[wid].discard(key)
        self._held_frozen[wid] = frozenset(self._held[wid])

    # ------------------------------------------------------------------
    # access recording (called by the traced wrappers / event protocol)
    # ------------------------------------------------------------------
    def _wid(self) -> Optional[int]:
        if self.current is not None:
            return self.current
        return self._threads.get(threading.get_ident())

    def read(self, loc: Loc, relaxed: bool = False, site: Optional[str] = None) -> None:
        self._access("read", loc, relaxed, site)

    def write(self, loc: Loc, relaxed: bool = False, site: Optional[str] = None) -> None:
        self._access("write", loc, relaxed, site)

    def _access(
        self, op: str, loc: Loc, relaxed: bool, site: Optional[str]
    ) -> None:
        wid = self._wid()
        if wid is None or not self._started:
            return  # access outside a run (prologue, invariant checks)
        if self._mutex is not None:
            with self._mutex:
                self._record(wid, op, loc, relaxed, site)
        else:
            self._record(wid, op, loc, relaxed, site)

    def _record(
        self, wid: int, op: str, loc: Loc, relaxed: bool, site: Optional[str]
    ) -> None:
        self.accesses_traced += 1
        if relaxed:
            # Annotated benign: never part of a race pair, so neither
            # checked nor stored — tracing stays cheap on the hot paths.
            self.relaxed_accesses += 1
            return
        if site is None:
            site = self._resolve_site()
        clk = self._vc[wid][wid]
        lockset = self._held_frozen[wid]
        st = self._locs.get(loc)
        if st is None:
            st = self._locs[loc] = _LocState()
        my_vc = self._vc[wid]
        against = (st.writes,) if op == "read" else (st.writes, st.reads)
        for table in against:
            other_op = "write" if table is st.writes else "read"
            for w2, (c2, ls2, site2, step2) in table.items():
                if w2 == wid:
                    continue
                if my_vc[w2] >= c2:
                    continue  # happens-before ordered
                if ls2 & lockset:
                    continue  # consistently locked
                self._report(
                    loc,
                    Access(w2, other_op, site2, ls2, step2),
                    Access(wid, op, site, lockset, self.step),
                )
        table = st.reads if op == "read" else st.writes
        table[wid] = (clk, lockset, site, self.step)

    def _report(self, loc: Loc, a: Access, b: Access) -> None:
        key = (loc[0] if loc else loc, a.site, b.site, a.op, b.op)
        if key in self._seen_pairs or len(self.races) >= self.max_races:
            return
        self._seen_pairs.add(key)
        self.races.append(
            Race(loc=loc, a=a, b=b, common_lockset=a.lockset & b.lockset)
        )

    @staticmethod
    def _resolve_site() -> str:
        f = sys._getframe(2)
        while f is not None:
            fn = f.f_code.co_filename.replace("\\", "/")
            if not fn.endswith(_PLUMBING_SUFFIXES):
                return _short_site(fn, f.f_lineno)
            f = f.f_back
        return "<unknown>"

    # ------------------------------------------------------------------
    def report(self) -> RaceReport:
        return RaceReport(
            races=list(self.races),
            accesses_traced=self.accesses_traced,
            relaxed_accesses=self.relaxed_accesses,
            sync_ops=self.sync_ops,
            locations=len(self._locs),
            fault_events=list(self.fault_events),
        )
