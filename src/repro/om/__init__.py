"""Order-Maintenance (OM) list data structures.

The Order algorithm keeps every vertex in *k-order* (Definition 3.5): a
total order refined on demand as cores change.  Maintaining that order with
O(1) comparisons is the job of the OM structure (Section 3.2): a two-level
tagged list after Dietz & Sleator / Bender et al., where each item carries a
(group label, item label) pair and ``x <= y`` reduces to integer comparison.

:mod:`repro.om.list_labels` implements the sequential structure;
:mod:`repro.om.parallel_om` adds the per-item status counters and list
version/relabel counters that the paper's parallel algorithms (Algorithm 4
and Appendix E) rely on.
"""

from repro.om.list_labels import OMList, OMItem
from repro.om.parallel_om import ParallelOMList

__all__ = ["OMList", "OMItem", "ParallelOMList"]
