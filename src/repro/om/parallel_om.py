"""Parallel Order-Maintenance wrapper (paper Section 3.2 + Algorithm 4).

The parallel algorithms share one OM list per core value ``k`` among all
workers.  Three pieces of state make that safe:

* **per-item status counters** ``v.s`` (stored on :class:`~repro.om.list_labels.OMItem`):
  atomically incremented *before and after* any operation that changes the
  item's position.  An odd value means "move in flight"; a changed value
  means "moved since you last looked".
* **list version** ``version``: incremented around every relabel (group
  split or top-list rebalance), so readers holding raw labels can detect
  that labels were re-assigned (``O_k.ver`` of Appendix E).
* **relabel counter** ``relabels_in_progress``: non-zero while a relabel
  runs (``O_k.cnt`` of Appendix E).

:meth:`ParallelOMList.order_concurrent` is the paper's Algorithm 4: the
lock-free ``Order(u, v)`` that re-reads both statuses until it observes a
stable snapshot.  Under the discrete-event simulator a single call is
atomic, so the loop exits first iteration; under the real-thread backend
the retry loop genuinely runs.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.om.list_labels import OMItem, OMList

__all__ = ["ParallelOMList"]


class ParallelOMList(OMList):
    """An :class:`OMList` with the concurrent-read protocol of the paper."""

    __slots__ = ()

    # ------------------------------------------------------------------
    # status protocol
    # ------------------------------------------------------------------
    @staticmethod
    def status(x: OMItem) -> int:
        """Read the status counter ``x.s``."""
        return x.s

    @staticmethod
    def begin_move(x: OMItem) -> None:
        """Atomically bump ``x.s`` to odd before changing x's position
        (the ``<w.s++>`` of Algorithm 5 lines 16/30)."""
        x.s += 1

    @staticmethod
    def end_move(x: OMItem) -> None:
        """Atomically bump ``x.s`` back to even after the move."""
        x.s += 1

    def move_after(self, anchor: OMItem, x: OMItem) -> None:
        """Delete ``x`` and re-insert it right after ``anchor``, wrapped in
        the status protocol.  Used by Backward_p (Algorithm 5 line 30)."""
        self.begin_move(x)
        try:
            self.delete(x)
            self.insert_after(anchor, x)
        finally:
            self.end_move(x)

    # ------------------------------------------------------------------
    # Algorithm 4: concurrent Order(u, v)
    # ------------------------------------------------------------------
    def order_concurrent(
        self,
        u: OMItem,
        v: OMItem,
        on_spin: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Paper's Algorithm 4: compare u <= v while other workers may be
        moving u or v.

        Re-reads ``u.s``/``v.s`` until both are even and unchanged across
        the label comparison, guaranteeing the comparison saw a consistent
        snapshot.  ``on_spin`` is called once per retry so the simulator
        can charge spin cost (and the thread backend can yield).
        """
        # Fast path: both statuses even, labels read inline, statuses
        # unchanged after the reads — the overwhelmingly common stable
        # snapshot, without the method call and exception frame of the
        # general loop.  Under the simulator this always succeeds.
        if u is v:
            return False
        s, s2 = u.s, v.s
        if not ((s | s2) & 1):
            gu, gv = u.group, v.group
            if gu is not None and gv is not None:
                r = (u.label < v.label) if gu is gv else (gu.label < gv.label)
                if s == u.s and s2 == v.s:
                    return r
        attempts = 0
        while True:
            while True:
                s, s2 = u.s, v.s
                if s % 2 == 0 and s2 % 2 == 0:
                    break
                if on_spin is not None:
                    on_spin()
            try:
                r: Optional[bool] = self.order(u, v)
            except (ValueError, AttributeError):
                # torn read: an item was observed mid-splice (only possible
                # under the thread backend; moves are step-atomic in the
                # simulator).  The mover's status bump makes the retry land
                # on a consistent snapshot.
                r = None
            if r is not None and s == u.s and s2 == v.s:
                return r
            attempts += 1
            if attempts > 10_000_000:  # pragma: no cover - diagnostics
                raise RuntimeError(
                    "order_concurrent made no progress; status protocol violated?"
                )
            if on_spin is not None:
                on_spin()
