"""Two-level Order-Maintenance list (Dietz–Sleator / Bender et al.).

Supports the three operations of the paper's Section 3.2 with amortized
O(1) cost:

* ``order(x, y)`` — does ``x`` precede ``y``?  Two integer comparisons:
  ``x <= y  iff  L_t(x) < L_t(y) or (L_t(x) = L_t(y) and L_b(x) < L_b(y))``.
* ``insert_after(x, y)`` / ``insert_head`` / ``insert_tail`` — splice a new
  item into the order, relabeling locally when label space runs out.
* ``delete(x)`` — unlink; never relabels.

Structure: items live in *groups* (the bottom level); groups form a doubly
linked *top list*.  Each group holds at most ``capacity`` items.  When a
group overflows it *splits*; when the top list has no label gap after a
group ``g`` it *rebalances* following the paper's rule: walk successors
``g'`` until ``L(g') - L(g) > j**2`` (``j`` = number traversed), then
relabel those ``j`` groups with gap ``j``.

Relabel events (splits and rebalances) bump ``self.version`` — the hook the
parallel priority queue of Appendix E uses to detect that cached labels went
stale.

A permanent sentinel group+item sits at the head with labels 0, which makes
``insert_head``/``insert_tail`` plain ``insert_after`` calls and keeps every
relabel strictly to the right of label 0.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

__all__ = ["OMItem", "OMGroup", "OMList"]

# 62-bit label universes leave headroom below Python's arbitrary precision
# while matching the fixed-width labels a C implementation would use.
_TOP_MAX = 1 << 62
_BOT_MAX = 1 << 62


class OMItem:
    """A handle in the ordered list.

    ``payload`` is the caller's object (a vertex).  ``s`` is the per-item
    status counter of the paper's Algorithm 4/5: incremented before and
    after any operation that changes this item's position, so concurrent
    readers can detect in-flight moves (odd value) and moved items (changed
    value).  The sequential structure only bumps it on relabel/move; the
    parallel wrapper manages the protocol.
    """

    __slots__ = ("payload", "label", "group", "prev", "next", "s")

    def __init__(self, payload: Any = None) -> None:
        self.payload = payload
        self.label: int = 0
        self.group: Optional["OMGroup"] = None
        self.prev: Optional["OMItem"] = None
        self.next: Optional["OMItem"] = None
        self.s: int = 0

    @property
    def in_list(self) -> bool:
        """True while the item is spliced into some :class:`OMList`."""
        return self.group is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self.group.label if self.group else None
        return f"OMItem({self.payload!r}, top={g}, bot={self.label})"


class OMGroup:
    """A bottom-level group: a contiguous run of items sharing a top label."""

    __slots__ = ("label", "prev", "next", "first", "last", "size")

    def __init__(self, label: int) -> None:
        self.label = label
        self.prev: Optional["OMGroup"] = None
        self.next: Optional["OMGroup"] = None
        self.first: Optional[OMItem] = None
        self.last: Optional[OMItem] = None
        self.size = 0

    def items(self) -> Iterator[OMItem]:
        x = self.first
        while x is not None:
            yield x
            x = x.next if x.group is self else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"OMGroup(label={self.label}, size={self.size})"


class OMList:
    """The ordered list.  See module docstring.

    Parameters
    ----------
    capacity:
        Maximum items per group before a split.  The theory wants
        Θ(log N); a fixed 64 behaves identically at our scales and is what
        practical implementations use.

    Statistics ``n_splits``, ``n_rebalances`` and the ``version`` counter
    are exposed for the versioned priority queue and for the OM ablation
    benchmark.
    """

    __slots__ = (
        "capacity",
        "_sentinel_group",
        "_sentinel",
        "_last",
        "size",
        "version",
        "relabels_in_progress",
        "n_splits",
        "n_rebalances",
    )

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 4:
            raise ValueError("capacity must be >= 4")
        self.capacity = capacity
        g = OMGroup(0)
        s = OMItem(None)
        s.group = g
        s.label = 0
        g.first = g.last = s
        g.size = 1
        self._sentinel_group = g
        self._sentinel = s
        self._last: OMItem = s
        self.size = 0  # excludes the sentinel
        self.version = 0
        # Incremented while a relabel runs; the parallel PQ polls it
        # (``O_k.cnt`` in Appendix E).  Sequentially it is 0 between calls.
        self.relabels_in_progress = 0
        self.n_splits = 0
        self.n_rebalances = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def order(self, x: OMItem, y: OMItem) -> bool:
        """True iff ``x`` strictly precedes ``y`` in the list."""
        # Hot path of every k-order comparison: same-group compares need
        # only the bottom labels (group identity substitutes for the top
        # label equality check — top labels are unique per group), and
        # the not-in-list guard is folded into the group load.
        if x is y:
            return False
        gx, gy = x.group, y.group
        if gx is gy:
            if gx is None:
                raise ValueError("item not in list")
            return x.label < y.label
        if gx is None or gy is None:
            raise ValueError("item not in list")
        return gx.label < gy.label

    def labels(self, x: OMItem) -> tuple:
        """The ``(top, bottom)`` label pair — the PQ's sort key."""
        return (x.group.label, x.label)  # type: ignore[union-attr]

    def first(self) -> Optional[OMItem]:
        """First real item, or None when empty."""
        return self._succ(self._sentinel)

    def last(self) -> Optional[OMItem]:
        """Last real item, or None when empty."""
        return None if self._last is self._sentinel else self._last

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[OMItem]:
        x = self.first()
        while x is not None:
            yield x
            x = self._succ(x)

    def _succ(self, x: OMItem) -> Optional[OMItem]:
        if x.next is not None:
            return x.next
        g = x.group.next if x.group else None
        while g is not None and g.size == 0:
            g = g.next
        return g.first if g is not None else None

    def successor(self, x: OMItem) -> Optional[OMItem]:
        """Next item in order, or None at the tail."""
        return self._succ(x)

    def predecessor(self, x: OMItem) -> Optional[OMItem]:
        """Previous item in order (possibly the internal sentinel's
        successor chain start), or None when ``x`` is the first item.

        Empty non-sentinel groups are unlinked eagerly, so the previous
        group (when needed) is guaranteed non-empty.
        """
        if x.prev is not None:
            prev = x.prev
        else:
            g = x.group.prev if x.group else None
            prev = g.last if g is not None else None
        if prev is self._sentinel:
            return None
        return prev

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert_head(self, y: OMItem) -> None:
        """Insert ``y`` as the new first item."""
        self.insert_after(self._sentinel, y)

    def insert_tail(self, y: OMItem) -> None:
        """Append ``y`` as the new last item."""
        self.insert_after(self._last, y)

    def insert_before(self, x: OMItem, y: OMItem) -> None:
        """Insert ``y`` immediately before ``x``."""
        pred = self.predecessor(x)
        self.insert_after(pred if pred is not None else self._sentinel, y)

    def insert_after(self, x: OMItem, y: OMItem) -> None:
        """Insert ``y`` immediately after ``x`` (paper's ``Insert(x, y)``).

        ``x`` must be in this list; ``y`` must not be in any list.
        """
        if x.group is None:
            raise ValueError("anchor item not in list")
        if y.group is not None:
            raise ValueError("item already in a list")
        g = x.group
        if g.size >= self.capacity:
            self._split(g)
            g = x.group  # x may have moved to the new right half
        nxt_label = x.next.label if x.next is not None else _BOT_MAX
        if nxt_label - x.label < 2:
            self._relabel_group(g)
            nxt_label = x.next.label if x.next is not None else _BOT_MAX
        y.label = x.label + (nxt_label - x.label) // 2
        y.group = g
        y.prev = x
        y.next = x.next
        if x.next is not None:
            x.next.prev = y
        else:
            g.last = y
        x.next = y
        g.size += 1
        self.size += 1
        if x is self._last:
            self._last = y

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, x: OMItem) -> None:
        """Unlink ``x`` (paper's ``Delete(x)``) — O(1), never relabels."""
        g = x.group
        if g is None:
            raise ValueError("item not in list")
        if x is self._sentinel:
            raise ValueError("cannot delete the sentinel")
        if x.prev is not None:
            x.prev.next = x.next
        else:
            g.first = x.next
        if x.next is not None:
            x.next.prev = x.prev
        else:
            g.last = x.prev
        if self._last is x:
            # Empty non-sentinel groups are unlinked eagerly, so every
            # preceding group is non-empty: the new last item is either x's
            # in-group predecessor or the last item of the previous group.
            if x.prev is not None:
                self._last = x.prev
            else:
                assert g.prev is not None and g.prev.last is not None
                self._last = g.prev.last
        g.size -= 1
        if g.size == 0 and g is not self._sentinel_group:
            # unlink the empty group from the top list
            if g.prev is not None:
                g.prev.next = g.next
            if g.next is not None:
                g.next.prev = g.prev
        x.group = None
        x.prev = None
        x.next = None
        self.size -= 1

    # ------------------------------------------------------------------
    # relabeling
    # ------------------------------------------------------------------
    def _begin_relabel(self) -> None:
        self.relabels_in_progress += 1
        self.version += 1

    def _end_relabel(self) -> None:
        self.relabels_in_progress -= 1
        self.version += 1

    def _relabel_group(self, g: OMGroup) -> None:
        """Uniformly respace the bottom labels of ``g``."""
        self._begin_relabel()
        try:
            step = _BOT_MAX // (g.size + 1)
            # The sentinel item must keep label 0; it is always first in its
            # group, so starting labels at ``step`` and giving the sentinel
            # label 0 explicitly preserves that.  Direct next-pointer walk
            # (group chains are None-terminated) — no generator frames on
            # the relabel hot path.
            label = step
            sentinel = self._sentinel
            it = g.first
            while it is not None:
                if it is sentinel:
                    it.label = 0
                else:
                    it.label = label
                    label += step
                it = it.next
        finally:
            self._end_relabel()

    def _split(self, g: OMGroup) -> None:
        """Split a full group, moving its upper half into a new group after it."""
        self.n_splits += 1
        self._begin_relabel()
        try:
            new = OMGroup(0)
            half = g.size // 2
            # find the first item of the upper half
            it = g.first
            for _ in range(half - 1):
                it = it.next  # type: ignore[union-attr]
            # it = last item staying in g
            move_first = it.next  # type: ignore[union-attr]
            assert move_first is not None
            # detach upper half
            it.next = None  # type: ignore[union-attr]
            g.last = it
            moved = 0
            cur: Optional[OMItem] = move_first
            new.first = move_first
            move_first.prev = None
            while cur is not None:
                cur.group = new
                new.last = cur
                moved += 1
                cur = cur.next
            new.size = moved
            g.size -= moved
            # splice the new group after g in the top list
            self._insert_group_after(g, new)
            # respace bottom labels in both halves (direct walk, as in
            # _relabel_group)
            sentinel = self._sentinel
            for grp in (g, new):
                step = _BOT_MAX // (grp.size + 1)
                label = step
                item = grp.first
                while item is not None:
                    if item is sentinel:
                        item.label = 0
                    else:
                        item.label = label
                        label += step
                    item = item.next
        finally:
            self._end_relabel()

    def _insert_group_after(self, g: OMGroup, new: OMGroup) -> None:
        """Give ``new`` a top label strictly between ``g`` and its successor,
        rebalancing successors per the paper's rule when there is no gap."""
        nxt = g.next
        nxt_label = nxt.label if nxt is not None else _TOP_MAX
        if nxt_label - g.label < 2:
            self._rebalance_after(g)
            nxt = g.next
            nxt_label = nxt.label if nxt is not None else _TOP_MAX
        new.label = g.label + (nxt_label - g.label) // 2
        new.prev = g
        new.next = g.next
        if g.next is not None:
            g.next.prev = new
        g.next = new

    def _rebalance_after(self, g: OMGroup) -> None:
        """Paper's rebalance: walk successors ``g'`` until
        ``L(g') - L(g) > j**2`` (``j`` = groups traversed), then relabel the
        traversed groups with gap ``j``."""
        self.n_rebalances += 1
        j = 1
        cur = g.next
        while cur is not None and cur.label - g.label <= j * j:
            cur = cur.next
            j += 1
        bound = cur.label if cur is not None else _TOP_MAX
        if bound - g.label <= j * j:
            # Label space truly exhausted (only possible after ~2^31
            # groups): respace the whole top list.
            self._relabel_all_groups()
            return
        gap = j
        label = g.label + gap
        walk = g.next
        while walk is not cur:
            assert walk is not None
            walk.label = label
            label += gap
            walk = walk.next

    def _relabel_all_groups(self) -> None:
        # count groups
        count = 0
        cur: Optional[OMGroup] = self._sentinel_group
        while cur is not None:
            count += 1
            cur = cur.next
        step = _TOP_MAX // (count + 1)
        label = 0
        cur = self._sentinel_group
        while cur is not None:
            cur.label = label
            label += step
            cur = cur.next

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if internal invariants are violated.

        Used by tests and the hypothesis state machine.
        """
        prev_top = -1
        g: Optional[OMGroup] = self._sentinel_group
        last_item = self._sentinel
        while g is not None:
            assert g.label > prev_top or g is self._sentinel_group, "top labels must increase"
            prev_top = g.label
            prev_bot = -1
            n = 0
            it = g.first
            while it is not None:
                assert it.group is g, "item group pointer broken"
                assert it.label > prev_bot or it is self._sentinel, "bottom labels must increase"
                prev_bot = it.label
                n += 1
                last_item = it
                it = it.next
            assert n == g.size, f"group size mismatch: {n} != {g.size}"
            assert g.size <= self.capacity, "group over capacity"
            g = g.next
        count = sum(1 for _ in self)
        assert count == self.size, f"list size mismatch: {count} != {self.size}"
        assert self._last is last_item, "last pointer stale"

    def to_list(self) -> List[Any]:
        """Payloads in order — handy in tests."""
        return [x.payload for x in self]
