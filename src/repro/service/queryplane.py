"""Wait-free query plane: shared-memory epoch snapshots + reader processes.

The engine's in-process read path (`Engine._submit_query`) couples query
throughput to the engine loop: every query advances the engine clock and
ticks the batcher.  This module decouples reads entirely, the
asynchronous-reads serving shape of Liu, Shun & Zablotchi (arXiv
2401.08015): at each epoch commit the engine *publishes* the committed
core assignment into a ``multiprocessing.shared_memory`` double-buffer,
and a pool of OS reader processes answers every snapshot query kind
(:data:`~repro.service.snapshots.QUERY_KINDS`) directly from the pinned
buffer — never entering the engine loop, never pickling a core map.

Buffer layout (``docs/queryplane.md``)
--------------------------------------
Three kinds of segment, all named in a small fixed **control** segment:

* ``ctrl`` — int64 slots ``QP_CTRL_*`` (its own seqlock, the active
  buffer index, the allocation generation, capacities) plus three
  fixed-width name fields for the current data segments.  Regrows bump
  the generation and swap the names; readers re-attach when the cached
  generation goes stale.
* ``buf0`` / ``buf1`` — the double buffer.  Each is an int64 header
  (``QP_SEQ`` … ``QP_VOCAB_COUNT``) followed by a dense int64 payload:
  slot *i* holds the core number of the vertex with interned id *i*, or
  :data:`CORE_UNKNOWN` if that vertex has no core at the stamped epoch.
* ``vocab`` — an append-only byte log of length-prefixed pickled
  external vertex ids, in interned-id order.  Ids are assigned
  first-seen and never remapped (:class:`~repro.graph.interning.VertexInterner`),
  so readers decode incrementally and never re-read old entries.

Seqlock protocol
----------------
The publisher writes the *inactive* buffer: stamp ``QP_SEQ`` and its
``QP_SEQ_ECHO`` twin odd, write payload + header fields, stamp
``QP_SEQ_ECHO`` even, stamp ``QP_SEQ`` even, then flip
``QP_CTRL_ACTIVE``.  Readers load the header stamp, read, and then
require *both* ``QP_SEQ_ECHO`` and ``QP_SEQ`` to still equal the loaded
even stamp: an odd, changed, or mismatched stamp is a torn read and the
reader retries.  A reader can therefore *never* observe a
half-published epoch; the price is bounded retrying, never blocking —
the wait-free contract.

Memory-model caveat: the soundness argument assumes stores to the
shared mapping become visible in program order (x86-TSO) — CPython
emits no memory barriers for plain buffer writes.  On weakly-ordered
CPUs (aarch64: Apple Silicon, Graviton) an even stamp could in
principle become visible before the payload stores it follows.  The
``QP_SEQ_ECHO`` bracket narrows that window — the two stamps sit on
opposite sides of the payload writes, so a torn accept needs two
independently stale slots — but detection there is best-effort, not
guaranteed; deployments on weak memory models should treat the plane's
bit-identity gate (``python -m repro.bench queryplane``) as the
empirical check.

Staleness contract
------------------
Every answer is stamped with ``snapshot_epoch`` (the epoch it was
answered against) and ``staleness_epochs`` (how many epochs the latest
published buffer was ahead at answer time).  A reader pinned to an epoch
older than the publisher's ``min_epoch`` (checkpoint truncation,
replica promotion) gets a structured :data:`E_EPOCH_TRUNCATED` refusal;
a pin inside the valid range but no longer buffered gets
:data:`E_EPOCH_UNAVAILABLE` (fall back to the engine path) — never a
stale or torn answer.
"""

from __future__ import annotations

import pickle
import struct
import time
from typing import (
    Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple,
)

from multiprocessing import connection as _mpconn
from multiprocessing import shared_memory

from repro.graph.interning import VertexInterner
from repro.graph.storage import INT64, int64_buffer, int64_view
from repro.service.requests import (
    E_BAD_REQUEST,
    E_EPOCH_TRUNCATED,
    E_EPOCH_UNAVAILABLE,
    E_UNKNOWN_QUERY,
    E_UNKNOWN_VERTEX,
    STATUS_COMMITTED,
    STATUS_QUARANTINED,
    Response,
    make_error,
)
from repro.service.snapshots import QUERY_KINDS, SnapshotView

Vertex = Hashable

__all__ = [
    "EpochPublisher",
    "SnapshotReader",
    "ReaderPool",
    "CORE_UNKNOWN",
    "NO_EPOCH",
]

# ----------------------------------------------------------------------
# shared-memory schema
# ----------------------------------------------------------------------
# Per-buffer header slots.  The ``QP_*`` names below are the buffer
# schema contract between :class:`EpochPublisher` (stores) and
# :class:`SnapshotReader` (loads); the static pass RL023-RL025
# (repro.analysis.static.bufferschema) fails the build when a slot is
# written but no longer decoded, decoded but never written, or declared
# and dead — the publisher and reader cannot drift apart silently.
QP_SEQ = 0          # seqlock stamp: odd while the publisher is writing
QP_EPOCH = 1        # committed epoch this buffer carries
QP_MIN_EPOCH = 2    # oldest answerable epoch (checkpoint truncation)
QP_N = 3            # valid payload slots (interner size at publish)
QP_VOCAB_LEN = 4    # valid bytes of the vocab segment
QP_VOCAB_COUNT = 5  # external ids encoded in those bytes
QP_SEQ_ECHO = 6     # post-payload stamp twin (weak-memory torn-read guard)

# Control segment slots (same store/load lockstep contract).
QP_CTRL_SEQ = 0          # seqlock stamp for generation swaps
QP_CTRL_ACTIVE = 1       # index of the buffer readers should use (0/1)
QP_CTRL_GENERATION = 2   # bumped on every segment reallocation
QP_CTRL_CAPACITY = 3     # payload slots per buffer
QP_CTRL_VOCAB_BYTES = 4  # vocab segment size in bytes

#: int64 slots reserved for each region before variable-size data
HEADER_SLOTS = 8
CTRL_SLOTS = 8
#: fixed-width utf-8 segment-name fields after the ctrl slots
NAME_BYTES = 128
CTRL_BYTES = CTRL_SLOTS * INT64 + 3 * NAME_BYTES

#: payload value for "this interned vertex has no core at this epoch"
CORE_UNKNOWN = -1
#: header epoch before the first publish (nothing answerable yet)
NO_EPOCH = -1

_LEN = struct.Struct("<I")  # vocab entry length prefix

# one-shot readers for the point-query fast path: a single C-level
# unpack replaces a run of per-slot memoryview loads
_CTRL3 = struct.Struct("<3q")  # QP_CTRL_SEQ, QP_CTRL_ACTIVE, QP_CTRL_GENERATION
_HDR6 = struct.Struct("<6q")   # QP_SEQ .. QP_VOCAB_COUNT
_HDR7 = struct.Struct("<7q")   # ... + QP_SEQ_ECHO (final-confirm read)
_I64 = struct.Struct("<q")


class _Seg:
    """A shared-memory segment plus its int64 overlay, releasable in
    the right order (cast memoryviews must go before ``shm.close``)."""

    __slots__ = ("shm", "i64", "owned")

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 owned: bool) -> None:
        self.shm = shm
        self.i64 = int64_view(shm.buf, slots)
        self.owned = owned

    def release(self, unlink: bool) -> None:
        self.i64.release()
        self.shm.close()
        if unlink and self.owned:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _create(nbytes: int) -> shared_memory.SharedMemory:
    return shared_memory.SharedMemory(create=True, size=nbytes)


def _attach(name: str) -> shared_memory.SharedMemory:
    # reuse the resource-tracker suppression idiom of the process
    # backend: only the creator tracks (and unlinks) a segment
    from repro.parallel.procs import _attach as attach

    return attach(name)


def _put_name(buf, field: int, name: str) -> None:
    off = CTRL_SLOTS * INT64 + field * NAME_BYTES
    raw = name.encode("utf-8")
    if len(raw) >= NAME_BYTES:
        raise ValueError(f"segment name too long: {name!r}")
    buf[off:off + NAME_BYTES] = raw + b"\0" * (NAME_BYTES - len(raw))


def _get_name(buf, field: int) -> str:
    off = CTRL_SLOTS * INT64 + field * NAME_BYTES
    raw = bytes(buf[off:off + NAME_BYTES])
    return raw.split(b"\0", 1)[0].decode("utf-8")


# ----------------------------------------------------------------------
# publisher (engine side)
# ----------------------------------------------------------------------
class EpochPublisher:
    """Engine-side writer of the wait-free snapshot buffers.

    One publisher per serving engine (primary, follower, or shard
    worker).  :meth:`publish` is called at every epoch commit with the
    committed core map and the touched set; the publisher keeps a
    private mirror of the dense payload so a commit costs
    O(|touched| + memcpy), not O(|V|) re-encoding.

    The publisher owns every segment it creates and unlinks them in
    :meth:`close`; readers attach by ``ctrl_name`` and never own.
    """

    def __init__(self, capacity: int = 256, vocab_capacity: int = 8192,
                 interner: Optional[VertexInterner] = None) -> None:
        if capacity < 1 or vocab_capacity < _LEN.size + 1:
            raise ValueError("capacity/vocab_capacity too small")
        self._interner = interner if interner is not None else VertexInterner()
        self._mirror = int64_buffer(0)
        self._vocab_mirror = bytearray()
        for x in self._interner:
            self._note_vocab(x)
        self._capacity = max(capacity, len(self._interner))
        self._vocab_capacity = max(vocab_capacity, len(self._vocab_mirror))
        self._generation = 0
        self._active = 0
        self._seq = [0, 0]
        self._last = (NO_EPOCH, NO_EPOCH)  # (epoch, min_epoch) published
        self._ctrl = _Seg(_create(CTRL_BYTES), CTRL_SLOTS, owned=True)
        self._bufs: List[_Seg] = []
        self._vocab: Optional[_Seg] = None
        self._alloc_segments()
        self._write_ctrl()
        self.publishes = 0

    # -- layout ---------------------------------------------------------
    @property
    def ctrl_name(self) -> str:
        """The control segment name — the only address readers need."""
        return self._ctrl.shm.name

    @property
    def epoch(self) -> int:
        """The last published epoch (:data:`NO_EPOCH` before the first)."""
        return self._last[0]

    def _buf_bytes(self) -> int:
        return (HEADER_SLOTS + self._capacity) * INT64

    def _alloc_segments(self) -> None:
        self._bufs = [
            _Seg(_create(self._buf_bytes()), HEADER_SLOTS + self._capacity,
                 owned=True)
            for _ in range(2)
        ]
        self._vocab = _Seg(_create(self._vocab_capacity), 0, owned=True)
        self._seq = [0, 0]
        n = len(self._vocab_mirror)
        self._vocab.shm.buf[:n] = bytes(self._vocab_mirror)
        self._vocab_written = n
        for b in (0, 1):
            self._write_buffer(b, *self._last)

    def _write_ctrl(self) -> None:
        ctrl = self._ctrl.i64
        seq = ctrl[QP_CTRL_SEQ]
        ctrl[QP_CTRL_SEQ] = seq + 1  # odd: names/capacities changing
        _put_name(self._ctrl.shm.buf, 0, self._bufs[0].shm.name)
        _put_name(self._ctrl.shm.buf, 1, self._bufs[1].shm.name)
        _put_name(self._ctrl.shm.buf, 2, self._vocab.shm.name)
        ctrl[QP_CTRL_ACTIVE] = self._active
        ctrl[QP_CTRL_GENERATION] = self._generation
        ctrl[QP_CTRL_CAPACITY] = self._capacity
        ctrl[QP_CTRL_VOCAB_BYTES] = self._vocab_capacity
        ctrl[QP_CTRL_SEQ] = seq + 2

    def _write_buffer(self, b: int, epoch: int, min_epoch: int) -> None:
        """Seqlock-write buffer ``b``: odd stamps, payload + header
        fields, even echo, even stamp.  The echo is the last store
        after the payload; the stamp pair brackets every payload byte
        (module docstring, *Memory-model caveat*)."""
        seg = self._bufs[b]
        hdr = seg.i64
        self._seq[b] += 1
        hdr[QP_SEQ] = self._seq[b]
        hdr[QP_SEQ_ECHO] = self._seq[b]
        n = len(self._mirror)
        if n:
            hdr[HEADER_SLOTS:HEADER_SLOTS + n] = memoryview(self._mirror)[:n]
        hdr[QP_EPOCH] = epoch
        hdr[QP_MIN_EPOCH] = min_epoch
        hdr[QP_N] = n
        hdr[QP_VOCAB_LEN] = len(self._vocab_mirror)
        hdr[QP_VOCAB_COUNT] = len(self._interner)
        self._seq[b] += 1
        hdr[QP_SEQ_ECHO] = self._seq[b]
        hdr[QP_SEQ] = self._seq[b]

    # -- mirror maintenance ---------------------------------------------
    def _note_vocab(self, x: Vertex) -> None:
        blob = pickle.dumps(x, protocol=4)
        self._vocab_mirror += _LEN.pack(len(blob)) + blob

    def _intern(self, x: Vertex) -> int:
        n = len(self._interner)
        i = self._interner.intern(x)
        if i == n:  # newly assigned: append its vocab entry
            self._note_vocab(x)
        return i

    def _regrow(self) -> None:
        """Reallocate segments (doubled) and re-stamp the *previous*
        epoch into both buffers, so pinned readers of that epoch keep
        getting pre-grow-consistent answers; the caller then publishes
        the new epoch on top.  Old segments are unlinked — attached
        readers keep a valid mapping and re-attach on the next
        generation check."""
        old = (*self._bufs, self._vocab)
        while self._capacity < len(self._interner):
            self._capacity *= 2
        while self._vocab_capacity < len(self._vocab_mirror):
            self._vocab_capacity *= 2
        self._generation += 1
        self._alloc_segments()
        self._write_ctrl()
        for seg in old:
            seg.release(unlink=True)

    # -- the publish hook ------------------------------------------------
    def publish(self, epoch: int, min_epoch: int,
                cores: Dict[Vertex, int],
                touched: Optional[Iterable[Vertex]] = None) -> None:
        """Publish the core map of a committed epoch.

        ``touched`` is the commit's changed-vertex set (endpoints plus
        ``V*``); ``None`` forces a full mirror rewrite — the first
        publish and every rebind (recovery, promotion) pass ``None``.
        ``min_epoch`` moves the refusal boundary: pins below it get
        :data:`E_EPOCH_TRUNCATED`.
        """
        for x in (cores if touched is None else touched):
            self._intern(x)
        n = len(self._interner)
        # Extend the mirror with CORE_UNKNOWN slots only — newly
        # interned vertices were first seen in *this* commit, so the
        # extended mirror is still a faithful image of the *previous*
        # epoch's payload.  That matters right below: a regrow
        # re-stamps both fresh buffers with the previous
        # (epoch, min_epoch), so it must run before this epoch's
        # values land, or pinned readers of the previous epoch would
        # get new-epoch values under the old stamp.
        if len(self._mirror) < n:
            self._mirror.extend([CORE_UNKNOWN] * (n - len(self._mirror)))
        if (n > self._capacity
                or len(self._vocab_mirror) > self._vocab_capacity):
            self._regrow()
        elif len(self._vocab_mirror) > self._vocab_written:
            # append-only: ship the new vocab tail before the header
            # that advertises it, so readers never chase missing bytes
            w, m = self._vocab_written, len(self._vocab_mirror)
            self._vocab.shm.buf[w:m] = bytes(self._vocab_mirror[w:m])
            self._vocab_written = m
        lookup = self._interner.lookup
        if touched is None:
            self._mirror = int64_buffer(n, CORE_UNKNOWN)
            for x, k in cores.items():
                self._mirror[lookup(x)] = k
        else:
            get = cores.get
            for x in touched:
                self._mirror[lookup(x)] = get(x, CORE_UNKNOWN)
        back = 1 - self._active
        self._write_buffer(back, epoch, min_epoch)
        self._active = back
        self._ctrl.i64[QP_CTRL_ACTIVE] = back
        self._last = (epoch, min_epoch)
        self.publishes += 1

    # -- lifecycle -------------------------------------------------------
    def close(self, unlink: bool = True) -> None:
        """Release (and by default unlink) every owned segment."""
        if self._ctrl is None:
            return
        for seg in (*self._bufs, self._vocab, self._ctrl):
            seg.release(unlink)
        self._ctrl = None
        self._bufs = []
        self._vocab = None

    def __enter__(self) -> "EpochPublisher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# reader (query side)
# ----------------------------------------------------------------------
class SnapshotReader:
    """Wait-free decoder over a publisher's buffers.

    Usable in-process (tests, diagnostics) or inside a
    :class:`ReaderPool` worker.  Never blocks: a torn read retries, and
    ``max_spins`` bounds the retrying (a pathological publisher stall
    surfaces as a ``RuntimeError``, not a hang).
    """

    def __init__(self, ctrl_name: str, max_spins: int = 200_000) -> None:
        self._ctrl = _Seg(_attach(ctrl_name), CTRL_SLOTS, owned=False)
        #: raw buffers cached for the fast path (the ctrl one is fixed
        #: for the reader's lifetime; ``_hraw`` tracks reattachment)
        self._ctrl_raw = self._ctrl.shm.buf
        self._hraw: List[memoryview] = []
        self._max_spins = max_spins
        self._generation = -1
        self._bufs: List[_Seg] = []
        self._vocab: Optional[_Seg] = None
        self._capacity = 0
        self._externals: List[Vertex] = []
        self._slots: Dict[Vertex, int] = {}
        self._voff = 0
        #: observed torn reads (diagnostics; also exercised in tests)
        self.retries = 0
        self._view_cache: "Dict[int, Tuple[int, int, SnapshotView]]" = {}

    # -- attachment ------------------------------------------------------
    def _spin(self, spins: int) -> int:
        self.retries += 1
        spins += 1
        if spins >= self._max_spins:
            raise RuntimeError(
                "queryplane read did not stabilize "
                f"(>{self._max_spins} retries) — publisher stalled?"
            )
        if spins % 1024 == 0:
            time.sleep(0.0001)
        return spins

    def _read_ctrl(self) -> Tuple[int, int]:
        """Stable (active, generation); re-attaches segments when the
        generation moved.  The hot path — an unchanged generation, i.e.
        every read that isn't racing a regrow — loads three int slots
        and never touches the segment-name bytes."""
        ctrl = self._ctrl.i64
        buf = self._ctrl.shm.buf
        spins = 0
        while True:
            s1 = ctrl[QP_CTRL_SEQ]
            if s1 & 1:
                spins = self._spin(spins)
                continue
            active = ctrl[QP_CTRL_ACTIVE]
            gen = ctrl[QP_CTRL_GENERATION]
            if gen == self._generation:
                if ctrl[QP_CTRL_SEQ] != s1:
                    spins = self._spin(spins)
                    continue
                return active, gen
            cap = ctrl[QP_CTRL_CAPACITY]
            vocab_bytes = ctrl[QP_CTRL_VOCAB_BYTES]
            names = [_get_name(buf, f) for f in range(3)]
            if ctrl[QP_CTRL_SEQ] != s1:
                spins = self._spin(spins)
                continue
            self._reattach(gen, cap, vocab_bytes, names)
            return active, gen

    def _reattach(self, gen: int, cap: int, vocab_bytes: int,
                  names: List[str]) -> None:
        self._detach_data()
        self._bufs = [
            _Seg(_attach(names[b]), HEADER_SLOTS + cap, owned=False)
            for b in (0, 1)
        ]
        self._vocab = _Seg(_attach(names[2]), 0, owned=False)
        if self._vocab.shm.size < vocab_bytes:
            raise RuntimeError(
                f"queryplane vocab segment smaller than advertised "
                f"({self._vocab.shm.size} < {vocab_bytes}) — generation "
                "skew between ctrl and data segments"
            )
        self._hraw = [seg.shm.buf for seg in self._bufs]
        self._capacity = cap
        self._generation = gen
        # vocab entries survive regrows verbatim (append-only log is
        # copied whole), so the incremental decode state stays valid
        self._view_cache.clear()

    def _detach_data(self) -> None:
        self._hraw = []
        for seg in self._bufs:
            seg.release(unlink=False)
        if self._vocab is not None:
            self._vocab.release(unlink=False)
        self._bufs = []
        self._vocab = None

    # -- decoding --------------------------------------------------------
    def _decode_vocab(self, count: int, length: int) -> None:
        """Advance the incremental external-id table to ``count``
        entries (``length`` valid bytes).  Entries are append-only and
        complete before the header that advertises them, so no seqlock
        is needed here."""
        if len(self._externals) >= count:
            return
        buf = self._vocab.shm.buf
        off = self._voff
        while len(self._externals) < count:
            if off + _LEN.size > length:
                raise RuntimeError("queryplane vocab truncated")
            (n,) = _LEN.unpack(bytes(buf[off:off + _LEN.size]))
            off += _LEN.size
            x = pickle.loads(bytes(buf[off:off + n]))
            off += n
            self._slots[x] = len(self._externals)
            self._externals.append(x)
        self._voff = off

    def _stable_header(self, b: int) -> Optional[Tuple[int, ...]]:
        """One stable header read of buffer ``b`` or ``None`` if torn."""
        hdr = self._bufs[b].i64
        s1 = hdr[QP_SEQ]
        if s1 & 1:
            return None
        epoch = hdr[QP_EPOCH]
        min_epoch = hdr[QP_MIN_EPOCH]
        n = hdr[QP_N]
        vlen = hdr[QP_VOCAB_LEN]
        vcount = hdr[QP_VOCAB_COUNT]
        if hdr[QP_SEQ_ECHO] != s1 or hdr[QP_SEQ] != s1:
            return None
        return s1, epoch, min_epoch, n, vlen, vcount

    def latest_epoch(self) -> int:
        """The most recently published epoch (:data:`NO_EPOCH` if none)."""
        spins = 0
        while True:
            active, _gen = self._read_ctrl()
            meta = self._stable_header(active)
            if meta is not None:
                return meta[1]
            spins = self._spin(spins)

    def _locate(self, pin_epoch: Optional[int]):
        """Find a stable buffer answering ``pin_epoch`` (``None`` =
        latest).  Returns ``(b, meta, latest, refusal)`` where refusal
        is ``None`` or an ``(code, message)`` pair."""
        spins = 0
        while True:
            active, _gen = self._read_ctrl()
            meta = self._stable_header(active)
            if meta is None:
                spins = self._spin(spins)
                continue
            latest, min_epoch = meta[1], meta[2]
            if latest == NO_EPOCH:
                return None, None, latest, (
                    E_EPOCH_UNAVAILABLE, "nothing published yet",
                )
            if pin_epoch is None or pin_epoch == latest:
                return active, meta, latest, None
            if pin_epoch < min_epoch:
                return None, None, latest, (
                    E_EPOCH_TRUNCATED,
                    f"epoch {pin_epoch} below min_epoch {min_epoch} "
                    "(truncated by checkpoint recovery or promotion)",
                )
            other = 1 - active
            ometa = self._stable_header(other)
            if ometa is not None and ometa[1] == pin_epoch:
                return other, ometa, latest, None
            if ometa is None and self._stable_header(active) != meta:
                # the flip raced us: re-run the location from scratch
                spins = self._spin(spins)
                continue
            return None, None, latest, (
                E_EPOCH_UNAVAILABLE,
                f"epoch {pin_epoch} not buffered (latest {latest}); "
                "use the engine read path",
            )

    def _materialize(self, b: int, meta: Tuple[int, ...]) -> Optional[SnapshotView]:
        """A :class:`SnapshotView` of buffer ``b``'s payload, or ``None``
        on a torn copy.  Views are cached per epoch so aggregate kinds
        (``degeneracy`` …) reuse the satellite-cached results."""
        seq, epoch, _min_epoch, n, vlen, vcount = meta
        cached = self._view_cache.get(epoch)
        if cached is not None and cached[0] == seq and cached[1] == b:
            return cached[2]
        self._decode_vocab(vcount, vlen)
        hdr = self._bufs[b].i64
        vals = hdr[HEADER_SLOTS:HEADER_SLOTS + n].tolist()
        if hdr[QP_SEQ_ECHO] != seq or hdr[QP_SEQ] != seq:
            return None
        ext = self._externals
        cores = {
            ext[i]: v for i, v in enumerate(vals) if v != CORE_UNKNOWN
        }
        view = SnapshotView(epoch, cores)
        self._view_cache[epoch] = (seq, b, view)
        if len(self._view_cache) > 4:
            self._view_cache.pop(next(iter(self._view_cache)))
        return view

    # -- answering -------------------------------------------------------
    def answer(self, kind: str, args: Tuple = (),
               pin_epoch: Optional[int] = None) -> Tuple[Any, int, int, Optional[Tuple[str, str]]]:
        """Answer one query from shared memory.

        Returns ``(value, snapshot_epoch, staleness_epochs, error)``
        with ``error`` either ``None`` or an ``(code, message)`` pair —
        the raw envelope :class:`ReaderPool` ships over its pipes (a
        full :class:`~repro.service.requests.Response` is materialized
        caller-side to keep the pipe payload slim).
        """
        if pin_epoch is None and kind in _POINT_KINDS:
            raw = self._answer_point_fast(kind, args)
            if raw is not None:
                return raw
        handler = QUERY_KINDS.get(kind or "")
        if handler is None:
            return None, NO_EPOCH, 0, (
                E_UNKNOWN_QUERY,
                f"unknown query kind {kind!r} (known: {sorted(QUERY_KINDS)})",
            )
        spins = 0
        while True:
            b, meta, latest, refusal = self._locate(pin_epoch)
            if refusal is not None:
                return None, latest, 0, refusal
            seq, epoch = meta[0], meta[1]
            if kind in _POINT_KINDS:
                value, ok = self._answer_point(b, meta, handler, kind, args)
            else:
                view = self._materialize(b, meta)
                ok = view is not None
                value = None
                if ok:
                    try:
                        value = handler(view, args)
                    except TypeError as exc:
                        return None, epoch, self._staleness(epoch, latest), (
                            E_BAD_REQUEST,
                            f"bad arguments for {kind!r}: {exc}",
                        )
            if not ok:
                spins = self._spin(spins)
                continue
            if isinstance(value, _BadArgs):
                return None, epoch, self._staleness(epoch, latest), (
                    E_BAD_REQUEST, value.message,
                )
            if kind == "core" and value is None:
                return None, epoch, self._staleness(epoch, latest), (
                    E_UNKNOWN_VERTEX,
                    f"vertex {args[0]!r} unknown at epoch {epoch}",
                )
            return value, epoch, self._staleness(epoch, latest), None

    def _staleness(self, epoch: int, latest: int) -> int:
        """Epoch distance from the freshest published buffer as of this
        answer's own location pass — a pinned (or just-superseded)
        buffer reports how far behind it already was, without paying a
        second ctrl/header read per answer."""
        return max(0, latest - epoch)

    def _answer_point_fast(self, kind: str, args: Tuple):
        """Fused read for an unpinned point query: one stable pass over
        ctrl + header + the vertex's slot via C-level unpacks, computing
        the answer exactly as :mod:`repro.core.queries` does (``core`` =
        the slot value, ``in_k_core`` = known and ``>= k``).  Returns a
        raw envelope, or ``None`` to fall back to the general path on
        any instability, refusal, or argument problem — the fallback
        owns every non-happy case, so the two paths cannot diverge."""
        if kind == "core":
            if len(args) != 1:
                return None
        elif len(args) != 2:
            return None
        ctrl_buf = self._ctrl_raw
        s1, active, gen = _CTRL3.unpack_from(ctrl_buf)
        if (s1 & 1) or gen != self._generation:
            return None
        hbuf = self._hraw[active]
        h1, epoch, _min_epoch, n, vlen, vcount = _HDR6.unpack_from(hbuf)
        if (h1 & 1) or epoch == NO_EPOCH:
            return None
        u = args[0]
        slot = self._slots.get(u)
        if slot is None and vcount > len(self._externals):
            self._decode_vocab(vcount, vlen)
            slot = self._slots.get(u)
        if slot is not None and slot < n:
            val = _I64.unpack_from(hbuf, (HEADER_SLOTS + slot) * INT64)[0]
        else:
            val = CORE_UNKNOWN
        # confirm the whole pass was stable: header not restamped (both
        # stamp slots, the echo being the post-payload one), no buffer
        # flip or regrow behind our back
        hcheck = _HDR7.unpack_from(hbuf)
        if (hcheck[QP_SEQ] != h1 or hcheck[QP_SEQ_ECHO] != h1
                or _CTRL3.unpack_from(ctrl_buf) != (s1, active, gen)):
            return None
        if kind == "core":
            if val == CORE_UNKNOWN:
                return None, epoch, 0, (
                    E_UNKNOWN_VERTEX,
                    f"vertex {u!r} unknown at epoch {epoch}",
                )
            return val, epoch, 0, None
        try:
            return (val != CORE_UNKNOWN and val >= args[1]), epoch, 0, None
        except TypeError:
            return None  # bad k: the general path builds the refusal

    def _answer_point(self, b: int, meta: Tuple[int, ...], handler,
                      kind: str, args: Tuple):
        """Point kinds (``core``/``in_k_core``) skip the payload copy: a
        single slot load under the seqlock, dispatched through the same
        :data:`QUERY_KINDS` handler over a one-vertex view so the
        semantics cannot diverge from the in-engine path."""
        seq, _epoch, _min_epoch, n, vlen, vcount = meta
        if not args:
            return _BadArgs(f"bad arguments for {kind!r}: missing vertex"), True
        u = args[0]
        self._decode_vocab(vcount, vlen)
        slot = self._slots.get(u)
        hdr = self._bufs[b].i64
        val = hdr[HEADER_SLOTS + slot] if slot is not None and slot < n else CORE_UNKNOWN
        if hdr[QP_SEQ_ECHO] != seq or hdr[QP_SEQ] != seq:
            return None, False
        view = SnapshotView(meta[1], {} if val == CORE_UNKNOWN else {u: val})
        try:
            return handler(view, args), True
        except TypeError as exc:
            return _BadArgs(f"bad arguments for {kind!r}: {exc}"), True

    def respond(self, kind: str, args: Tuple = (),
                pin_epoch: Optional[int] = None,
                id: str = "qp") -> Response:
        """:meth:`answer`, materialized as a full
        :class:`~repro.service.requests.Response` envelope."""
        value, epoch, staleness, err = self.answer(kind, args, pin_epoch)
        return raw_to_response((value, epoch, staleness, err), id=id)

    def stats(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "generation": self._generation,
            "vocab": len(self._externals),
        }

    def close(self) -> None:
        self._detach_data()
        if self._ctrl is not None:
            self._ctrl.release(unlink=False)
            self._ctrl = None

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _BadArgs:
    """In-band marker for a TypeError raised under the seqlock."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message


#: kinds answered from a single payload slot (no full-map copy)
_POINT_KINDS = ("core", "in_k_core")


def raw_to_response(raw: Tuple[Any, int, int, Optional[Tuple[str, str]]],
                    id: str = "qp") -> Response:
    """Materialize a reader's raw ``(value, epoch, staleness, error)``
    envelope as a :class:`~repro.service.requests.Response`."""
    value, epoch, staleness, err = raw
    epoch_field = None if epoch == NO_EPOCH else epoch
    if err is not None:
        code, message = err
        return Response(
            id=id, op="query", status=STATUS_QUARANTINED,
            error=make_error(code, message),
            snapshot_epoch=epoch_field, staleness_epochs=staleness,
        )
    return Response(
        id=id, op="query", status=STATUS_COMMITTED, value=value,
        epoch=epoch_field, snapshot_epoch=epoch_field,
        staleness_epochs=staleness,
    )


# ----------------------------------------------------------------------
# reader pool (OS processes)
# ----------------------------------------------------------------------
def _reader_worker(conn, ctrl_name: str, counter_name: str,
                   idx: int, nreaders: int) -> None:
    """One OS reader process: drain batched query frames against its own
    :class:`SnapshotReader`, bumping a per-reader slot of the shared
    read counter after every answer (single writer per slot — that is
    the whole atomicity argument)."""
    reader = SnapshotReader(ctrl_name)
    counter = _attach(counter_name)
    counts = int64_view(counter.buf, nreaders)
    served = 0
    loaded: List[Tuple[str, Tuple]] = []
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            op = msg[0]
            if op == "q":
                _op, items, pin = msg
                out = []
                try:
                    for kind, args in items:
                        out.append(reader.answer(kind, args, pin))
                        served += 1
                        counts[idx] = served
                except Exception as exc:  # surface, don't wedge the pipe
                    conn.send(("err", repr(exc)))
                else:
                    conn.send(("ok", out))
            elif op == "load":
                # stage a private workload slice for a later "run" — the
                # transfer cost stays out of the measured window
                loaded = msg[1]
                conn.send(("ok", len(loaded)))
            elif op == "run":
                # answer the staged slice in a local loop: the parent is
                # not in the read path at all (it only applies updates),
                # so throughput scales with reader processes
                sample_every = msg[1]
                samples = []
                answer = reader.answer
                try:
                    for i, (kind, args) in enumerate(loaded):
                        raw = answer(kind, args, None)
                        served += 1
                        if not i % 64:
                            # the counter is monotone and read coarsely
                            # (pressure polls); a batched store is fine
                            counts[idx] = served
                        if not i % sample_every:
                            samples.append((i, raw))
                except Exception as exc:
                    counts[idx] = served
                    conn.send(("err", repr(exc)))
                else:
                    counts[idx] = served
                    conn.send(("ok", samples))
            elif op == "stats":
                conn.send(("ok", reader.stats()))
            elif op == "stop":
                conn.send(("ok", served))
                break
            else:  # pragma: no cover - protocol drift
                conn.send(("err", f"unknown op {op!r}"))
    finally:
        counts.release()
        counter.close()
        reader.close()
        conn.close()


class ReaderPool:
    """N OS reader processes answering snapshot queries in parallel.

    Queries are shipped in batched frames (round-robin, at most one
    frame outstanding per reader so a reply can never deadlock the
    request pipe) and answered entirely from shared memory — the engine
    process is not involved.  :meth:`reads_total` exposes the shared
    read counter; the engine polls it to keep ``query_pressure`` batch
    cuts firing even though no query ever ticks the batcher
    (:meth:`repro.service.engine.Engine.enable_queryplane`).
    """

    def __init__(self, ctrl_name: str, readers: int = 4) -> None:
        if readers < 1:
            raise ValueError("readers must be >= 1")
        from repro.parallel.procs import fork_context

        ctx = fork_context()
        self.readers = readers
        self._counter = _Seg(_create(readers * INT64), readers, owned=True)
        for i in range(readers):
            self._counter.i64[i] = 0
        self._conns = []
        self._procs = []
        for i in range(readers):
            parent, child = ctx.Pipe()
            p = ctx.Process(
                target=_reader_worker,
                args=(child, ctrl_name, self._counter.shm.name, i, readers),
                daemon=True,
            )
            p.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(p)
        self._next = 0
        self._tok = 0
        self._pending: List[List[int]] = [[] for _ in range(readers)]
        self._done: Dict[int, List] = {}

    # -- frame plumbing --------------------------------------------------
    def _recv(self, r: int):
        return self._recv_conn(self._conns[r])

    def _recv_conn(self, conn):
        status, payload = conn.recv()
        if status != "ok":
            raise RuntimeError(f"reader failed: {payload}")
        return payload

    def _collect_reader(self, r: int) -> None:
        pend = self._pending[r]
        while pend:
            self._done[pend.pop(0)] = self._recv(r)

    def dispatch(self, items: List[Tuple[str, Tuple]],
                 pin_epoch: Optional[int] = None) -> int:
        """Ship one frame of ``(kind, args)`` queries to the next
        reader; returns a token resolvable via :meth:`drain`.  Collects
        that reader's outstanding reply first, bounding pipe depth."""
        r = self._next
        self._next = (self._next + 1) % self.readers
        self._collect_reader(r)
        self._conns[r].send(("q", items, pin_epoch))
        tok = self._tok
        self._tok += 1
        self._pending[r].append(tok)
        return tok

    def drain(self) -> Dict[int, List]:
        """Collect every outstanding frame: token -> list of raw
        ``(value, epoch, staleness, error)`` envelopes, frame order
        preserved within each token."""
        for r in range(self.readers):
            self._collect_reader(r)
        out = self._done
        self._done = {}
        return out

    # -- convenience -----------------------------------------------------
    def query(self, kind: str, *args, pin_epoch: Optional[int] = None,
              id: str = "qp") -> Response:
        """One synchronous query through the pool (tests, CLI)."""
        tok = self.dispatch([(kind, tuple(args))], pin_epoch)
        raw = self.drain()[tok][0]
        return raw_to_response(raw, id=id)

    def query_many(self, items: List[Tuple[str, Tuple]],
                   pin_epoch: Optional[int] = None,
                   frame: int = 512) -> List:
        """Answer a batch across all readers; returns raw envelopes in
        input order."""
        toks = [
            self.dispatch(items[i:i + frame], pin_epoch)
            for i in range(0, len(items), frame)
        ]
        done = self.drain()
        return [raw for t in toks for raw in done[t]]

    # -- partitioned runs (bench / bulk serving) -------------------------
    def preload(self, slices: List[List[Tuple[str, Tuple]]]) -> List[int]:
        """Stage one workload slice per reader (``len(slices)`` must
        equal ``readers``) for a subsequent :meth:`run`.  The transfer
        happens now, so the run itself measures pure answering."""
        if len(slices) != self.readers:
            raise ValueError(
                f"need {self.readers} slices, got {len(slices)}"
            )
        for r, items in enumerate(slices):
            self._collect_reader(r)
            self._conns[r].send(("load", items))
        return [self._recv(r) for r in range(self.readers)]

    def run(self, sample_every: int = 512,
            on_tick: Optional[Callable[[], None]] = None,
            tick_s: float = 0.002) -> List[List[Tuple[int, Tuple]]]:
        """Answer every preloaded slice concurrently, one local loop per
        reader process — the parent never touches a query.  ``on_tick``
        is called between completion polls (the bench applies interleaved
        updates there).  Returns, per reader, the sampled ``(local_index,
        raw_envelope)`` pairs (every ``sample_every``-th answer)."""
        for r in range(self.readers):
            self._collect_reader(r)
            self._conns[r].send(("run", sample_every))
        done: List[Optional[List]] = [None] * self.readers
        if on_tick is None:
            # nothing to interleave: block idly instead of busy-polling
            # so the readers get the whole machine
            pending = {self._conns[r]: r for r in range(self.readers)}
            while pending:
                for conn in _mpconn.wait(list(pending)):
                    done[pending.pop(conn)] = self._recv_conn(conn)
            return done
        while any(d is None for d in done):
            for r in range(self.readers):
                if done[r] is None and self._conns[r].poll(tick_s):
                    done[r] = self._recv(r)
            on_tick()
        return done

    # -- the shared read counter ----------------------------------------
    def counters(self) -> List[int]:
        """Per-reader served counts, read directly from shared memory."""
        return self._counter.i64.tolist()

    def reads_total(self) -> int:
        """Total queries served by the pool — the atomic feedback signal
        for the engine's ``query_pressure`` cut."""
        return sum(self._counter.i64)

    def stats(self) -> List[Dict[str, int]]:
        out = []
        for r in range(self.readers):
            self._collect_reader(r)
            self._conns[r].send(("stats",))
            out.append(self._recv(r))
        return out

    def close(self) -> None:
        """Stop every reader and release the counter segment."""
        if self._counter is None:
            return
        for r, conn in enumerate(self._conns):
            try:
                self._collect_reader(r)
                conn.send(("stop",))
                self._recv(r)
            except (OSError, EOFError, BrokenPipeError, RuntimeError):
                # RuntimeError: a reader replied ('err', ...) to an
                # earlier frame — shutdown must still reach every
                # process and release the counter segment; closing the
                # pipe below unblocks the reader if "stop" never landed
                pass
            conn.close()
        for p in self._procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - wedged reader
                p.terminate()
                p.join(timeout=5)
        self._counter.release(unlink=True)
        self._counter = None

    def __enter__(self) -> "ReaderPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
