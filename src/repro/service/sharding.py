"""Sharded multi-engine serving: router + N engine shards.

``docs/sharding.md`` is the full design; the shape:

* **Topology.**  A :class:`ShardedEngine` owns a
  :class:`~repro.graph.interning.ShardedInterner` (stable content-hash
  placement: a vertex's shard never depends on arrival order, so it
  survives crash recovery) and N shard engines, each a complete
  :class:`~repro.service.engine.Engine` — own maintainer, own batcher,
  own snapshot store, own write-ahead journal (``<path>.shard<i>``).
  Shards are hosted in-process (``sim`` / ``thread`` backends) or in
  real OS processes (``process`` backend,
  :mod:`repro.parallel.procs`), one shared-nothing event loop each.

* **Routing.**  An update whose endpoints hash to the same shard is
  forwarded to that shard's engine and micro-batches there as usual
  (the process backend defers them into per-shard runs shipped as one
  frame).  A *cross-shard* edge commits through a two-shard
  prepare/commit protocol (2PC, presumed abort, redo-only) layered on
  the WAL, group-committed: the router buffers a kind-homogeneous run
  of cross edges (coalescing and annihilating duplicates exactly like
  the micro-batcher), then scatters one ``prepare`` frame per involved
  shard, gathers the votes, and scatters ``commit2``.  Each edge has
  exactly **one maintainer**: the coordinator shard — the owner of the
  canonical first endpoint — applies it to its order maintainer
  (role ``"apply"``); the peer owner journals the same prepare/commit
  pair but only updates a lightweight *foreign adjacency set*
  (role ``"track"``) used for validation votes and the stitch.  A
  prepare resolved by neither ``commit2`` nor ``abort2`` is *dangling*;
  the recovery resolution pass (:meth:`ShardedEngine.from_journals`)
  commits it iff any shard holds the transaction's ``commit2``, else
  aborts it on every participant — identical outcomes on both shards
  by construction, whichever role each side held.

* **Epoch stitching.**  Each shard publishes its own epoch sequence;
  the sharded engine's global epoch is their sum and a query answers
  against one consistent *stitched* view: per-shard core numbers are
  only lower bounds of global coreness (a subgraph can only shrink a
  core), so the stitch recomputes exact cores with the synchronous
  H-index refinement of :mod:`repro.parallel.hindex` over the union
  graph — bit-identical to a single engine on the same committed edge
  set, which is the differential guarantee the tests pin.  Views are
  cached per epoch vector and recomputed lazily.

Response-stream semantics intentionally differ from a monolithic engine
in two documented ways: update responses carry *shard-local* epochs
(queries carry the stitched global epoch), and cross-shard updates
commit synchronously instead of micro-batching.  Final state does not
differ — that is the acceptance bar.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Tuple

from repro.faults.plane import CRASH, ROUTER_SALT, derive_plane
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.interning import ShardedInterner
from repro.parallel.hindex import refine_cores
from repro.service.engine import Engine, EngineConfig
from repro.service.metrics import ServiceMetrics
from repro.service.requests import (
    E_BAD_REQUEST,
    E_SELF_LOOP,
    E_UNKNOWN_QUERY,
    E_UNKNOWN_VERTEX,
    STATUS_COMMITTED,
    STATUS_PENDING,
    STATUS_QUARANTINED,
    Request,
    Response,
    make_error,
)
from repro.service.snapshots import QUERY_KINDS, SnapshotView

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["ShardedEngine", "LocalShard", "RouterCrashed", "shard_paths"]

#: the 2PC steps the router can crash at (fault injection / tests), in
#: protocol order: after the coordinator prepare, after both prepares,
#: and after the coordinator's decision commit2
CRASH_POINTS = ("prepare-peer", "commit-coord", "commit-peer")


class RouterCrashed(RuntimeError):
    """The router died mid-2PC (injected).  Shard journals survive; the
    dangling transaction is resolved by :meth:`ShardedEngine.from_journals`."""

    def __init__(self, point: str, tx: str) -> None:
        super().__init__(f"router crashed at {point} of {tx}")
        self.point = point
        self.tx = tx


def shard_paths(base: Optional[str], nshards: int) -> List[Optional[str]]:
    """Per-shard journal paths derived from one base path."""
    if base is None:
        return [None] * nshards
    return [f"{base}.shard{i}" for i in range(nshards)]


class LocalShard:
    """In-process shard handle: direct calls into a shard's engine.

    The ``sim`` and ``thread`` backends use this; the ``process``
    backend substitutes :class:`repro.parallel.procs.ProcessShard`,
    which speaks the same surface over a pipe.
    """

    def __init__(self, shard_id: int, engine: Engine) -> None:
        self.shard_id = shard_id
        self.engine = engine

    # -- op plane ------------------------------------------------------
    def submit(self, request: Request) -> Response:
        return self.engine.submit(request)

    def submit_many(self, requests: List[Request]) -> List[Response]:
        return [self.engine.submit(r) for r in requests]

    def flush(self) -> List[Response]:
        return self.engine.flush()

    def take_completed(self) -> List[Response]:
        return self.engine.take_completed()

    def enable_queryplane(self, **kwargs) -> str:
        """Publish this shard's epochs (docs/queryplane.md); returns the
        ctrl segment name for attaching readers."""
        return self.engine.enable_queryplane(**kwargs).ctrl_name

    # -- 2PC participant ----------------------------------------------
    def prepare_cross(self, tx: str, kind: str, edge: Edge, rid: str,
                      peer: int, role: str = "apply") -> Optional[str]:
        return self.engine.prepare_cross(tx, kind, edge, rid,
                                         self.shard_id, peer, role=role)

    def commit_cross(self, tx: str) -> int:
        return self.engine.commit_cross(tx)

    def abort_cross(self, tx: str) -> None:
        self.engine.abort_cross(tx)

    def prepare_group(self, items: List[Tuple]) -> List[Optional[str]]:
        """Prepare a group of cross txs; one vote per item, in order."""
        return [self.engine.prepare_cross(tx, kind, edge, rid,
                                          self.shard_id, peer, role=role)
                for tx, kind, edge, rid, peer, role in items]

    def commit_group(self, txs: List[str]) -> int:
        return self.engine.commit_cross_group(txs)

    def abort_group(self, txs: List[str]) -> None:
        for tx in txs:
            self.engine.abort_cross(tx)

    # -- stitch inputs -------------------------------------------------
    def epoch(self) -> int:
        return self.engine.epoch

    def pending_ops(self) -> int:
        return self.engine.pending_ops()

    def edges(self) -> List[Edge]:
        """Edges this shard co-owns: maintained plus foreign-tracked."""
        return list(self.engine.graph.edges()) + self.engine.foreign_edges()

    def present_vertices(self) -> List[Vertex]:
        out = list(self.engine.graph.vertices())
        seen = set(out)
        for u, v in self.engine.foreign_edges():
            for x in (u, v):
                if x not in seen:
                    seen.add(x)
                    out.append(x)
        return out

    def metrics(self) -> Dict:
        return self.engine.metrics()

    def check(self) -> None:
        self.engine.check()

    # -- shutdown (docs/sharding.md: quiesce BEFORE checkpoint) --------
    def quiesce(self) -> Dict:
        """Stop the shard's worker and return its checkpoint payload.
        In-process shards have no worker to join — the engine is
        already quiescent once this (synchronous) call runs."""
        eng = self.engine
        return {
            "epoch": eng.epoch,
            "edges": eng._graph_edges(),
            "cores": eng.maintainer.cores(),
            "order": eng.maintainer.order_sequence(),
            "foreign": eng.foreign_edges(),
        }

    def final_checkpoint(self, payload: Dict) -> None:
        self.engine.journal.log_checkpoint(
            payload["epoch"], payload["edges"], payload["cores"],
            payload["order"], foreign=payload.get("foreign", ()),
        )

    def close(self) -> None:
        self.engine.close()

    def abandon(self) -> None:
        """Crash-stop: drop the journal handle with no checkpoint (what
        a killed process leaves behind)."""
        self.engine.journal.close()


@dataclass
class _Resolution:
    """Outcome of the recovery resolution pass for one dangling tx."""

    tx: str
    id: str
    committed: bool
    shards: Tuple[int, ...]     #: shards the resolution touched


class ShardedEngine:
    """Router + N engine shards behind the monolithic-engine surface.

    Parameters
    ----------
    graph:
        Initial committed graph.  Edges are partitioned by the stable
        endpoint hash: intra-shard edges go to their owner's initial
        graph; a cross-shard edge goes to its coordinator's initial
        graph and to the peer owner's foreign set.
    config:
        An :class:`EngineConfig`; ``shards`` picks N, ``backend`` picks
        the shard substrate (``process`` hosts each shard engine in its
        own OS process).  ``num_workers`` is the *total* worker budget,
        dealt as ``max(1, num_workers // shards)`` per shard.
    crash_2pc:
        Test hook: ``{point: tx_seq}`` crashes the router (raises
        :class:`RouterCrashed`) at the named 2PC step of the tx with
        that sequence number.  Seeded injection uses ``config.faults``:
        the router derives its own plane (``ROUTER_SALT``) and draws a
        crash decision at every 2PC step; shard engines get their own
        independently-seeded planes (``SHARD_SALT``).
    """

    def __init__(
        self,
        graph: Optional[DynamicGraph] = None,
        config: Optional[EngineConfig] = None,
        *,
        crash_2pc: Optional[Dict[str, int]] = None,
        _shards: Optional[List] = None,
        _interner: Optional[ShardedInterner] = None,
        **overrides,
    ) -> None:
        cfg = config or EngineConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        if cfg.shards < 1:
            raise ValueError("shards must be >= 1")
        if cfg.window is not None:
            # engine-native expiry cannot see cross-shard edges (they
            # bypass the shard batcher via 2PC); windowed traffic on a
            # sharded engine is driven by the trace layer instead
            # (repro.traffic model mode, docs/traffic.md)
            raise ValueError(
                "config.window is a monolithic-engine feature; drive "
                "sliding windows on a sharded engine through "
                "repro.traffic (model mode)"
            )
        self.config = cfg
        self.nshards = cfg.shards
        self.interner = _interner or ShardedInterner(self.nshards)
        self.crash_2pc = dict(crash_2pc or {})
        self.faults = derive_plane(cfg.faults, self.nshards,
                                   seed=cfg.seed, salt=ROUTER_SALT)
        self.metrics_collector = ServiceMetrics(ingress_capacity=None)
        self.now: float = 0.0
        self._seq = 0
        self._txseq = 0
        self._seen_ids: set = set()
        # router-side cross-shard run buffer (mirrors AdaptiveBatcher's
        # coalesce/cancel/kind-conflict semantics, see _submit_cross)
        self._xkind: Optional[str] = None
        self._xedges: List[Edge] = []
        self._xriders: Dict[Edge, List[Tuple[str, str]]] = {}
        # deferred intra-shard ops per process shard (see _flush_local)
        self._lbuf: Dict[int, List[Request]] = {}
        #: group-commit run size for cross buffer and deferred-local runs
        self._group_cap = (self.config.cross_group
                           or 4 * self.config.max_batch)
        self._completed: List[Response] = []
        self._stitch_cache: Optional[Tuple[Tuple[int, ...], SnapshotView]] = None
        self.resolutions: List[_Resolution] = []
        self._closed = False
        #: stitched-global query plane (docs/queryplane.md): refreshed
        #: whenever the stitch cache recomputes, plus on every flush
        self._queryplane = None
        self._qp_min_epoch = 0
        self._shard_planes: List[str] = []
        if _shards is not None:
            self.shards = _shards
            for sh in self.shards:
                for x in sh.present_vertices():
                    self.interner.intern(x)
            return
        init = [[] for _ in range(self.nshards)]
        finit = [[] for _ in range(self.nshards)]
        if graph is not None:
            for u, v in graph.edges():
                e = canonical_edge(u, v)
                su = self.interner.shard_of(e[0])
                sv = self.interner.shard_of(e[1])
                init[su].append(e)
                if sv != su:
                    # single-maintainer rule: the coordinator (owner of
                    # the canonical first endpoint) maintains the edge,
                    # the peer only tracks it
                    finit[sv].append(e)
        self.shards = self._build_shards(init, finit)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _shard_config(self, shard: int) -> EngineConfig:
        """One shard's engine config: monolithic, its own journal file,
        its slice of the worker budget, its own derived fault plane.
        A process shard's worker hosts a *thread*-backed engine: the
        worker already provides process isolation, and the thread
        machine runs the maintainer without the sim machine's
        virtual-time bookkeeping."""
        cfg = self.config
        paths = shard_paths(cfg.journal_path, self.nshards)
        return replace(
            cfg,
            shards=1,
            backend="thread" if cfg.backend == "process" else cfg.backend,
            num_workers=max(1, cfg.num_workers // self.nshards),
            journal_path=paths[shard],
            faults=derive_plane(cfg.faults, shard, seed=cfg.seed),
        )

    def _build_shards(self, init: List[List[Edge]],
                      finit: List[List[Edge]]) -> List:
        if self.config.backend == "process":
            from repro.parallel.procs import ProcessShard

            return [
                ProcessShard.start(s, self._shard_spec(s), init[s],
                                   self.nshards, foreign=finit[s])
                for s in range(self.nshards)
            ]
        return [
            LocalShard(s, Engine(DynamicGraph(init[s]),
                                 self._shard_config(s),
                                 foreign=finit[s]))
            for s in range(self.nshards)
        ]

    def _shard_spec(self, shard: int) -> Dict:
        """A picklable shard-engine spec for the process backend: the
        derived plane cannot cross the fork (it holds a mutex), so the
        worker rebuilds it from ``(spec, seed)``."""
        cfg = self._shard_config(shard)
        plane = cfg.faults
        cfg = replace(cfg, faults=None)
        return {
            "config": cfg,
            "fault_spec": None if plane is None else plane.spec,
            "fault_seed": 0 if plane is None else plane.seed,
        }

    # ------------------------------------------------------------------
    # public surface (Engine-shaped)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Global epoch: the sum of every shard's committed epoch."""
        return sum(self._epoch_vector())

    def _epoch_vector(self) -> Tuple[int, ...]:
        return tuple(sh.epoch() for sh in self.shards)

    def pending_ops(self) -> int:
        return (sum(sh.pending_ops() for sh in self.shards)
                + sum(len(r) for r in self._xriders.values())
                + sum(len(b) for b in self._lbuf.values()))

    def insert(self, u: Vertex, v: Vertex, *, id: Optional[str] = None,
               deadline: Optional[float] = None) -> Response:
        return self.submit(Request("insert", u=u, v=v, id=id,
                                   deadline=deadline))

    def remove(self, u: Vertex, v: Vertex, *, id: Optional[str] = None,
               deadline: Optional[float] = None) -> Response:
        return self.submit(Request("remove", u=u, v=v, id=id,
                                   deadline=deadline))

    def query(self, kind: str, *args, id: Optional[str] = None) -> Response:
        return self.submit(Request("query", kind=kind, args=tuple(args),
                                   id=id))

    def submit(self, request: Request) -> Response:
        """Route one request; never raises for bad input (RouterCrashed
        is an *injected* fault, not bad input)."""
        rid = request.id
        if rid is None:
            rid = f"g{self._seq}"
            self._seq += 1
        elif rid in self._seen_ids:
            self.metrics_collector.admitted += 1
            return self._quarantine(request, rid, E_BAD_REQUEST,
                                    f"request id {rid!r} already seen")
        self._seen_ids.add(rid)
        if request.op == "query":
            return self._submit_query(request, rid)
        if request.op in ("insert", "remove"):
            return self._submit_update(request, rid)
        self.metrics_collector.admitted += 1
        return self._quarantine(request, rid, E_BAD_REQUEST,
                                f"unknown op {request.op!r}")

    def advance_to(self, t: float) -> None:
        """Advance the router's service clock to a trace arrival time
        (monotonic no-op when behind).  Shards keep their own clocks;
        window expiry on a sharded engine is the trace driver's job
        (see :meth:`__init__`'s ``window`` rejection)."""
        if t > self.now:
            self.now = t

    def flush(self) -> List[Response]:
        for s in sorted(self._lbuf):
            self._flush_local(s)
        self._cut_cross("flush")
        out = self._completed
        self._completed = []
        for sh in self.shards:
            out.extend(sh.flush())
        if self._queryplane is not None:
            self.view()  # refresh the stitched buffer at the new vector
        return out

    # ------------------------------------------------------------------
    # wait-free query plane (docs/queryplane.md)
    # ------------------------------------------------------------------
    def enable_queryplane(self, publisher=None, per_shard: bool = False,
                          **kwargs):
        """Attach the stitched-global epoch publisher (and optionally a
        per-shard plane on every shard engine).

        The global buffer carries the stitched core map stamped with the
        global epoch (the shard-epoch vector sum) and refreshes whenever
        the stitch recomputes — after :meth:`flush` and on any
        :meth:`view` at a new epoch vector.  Its ``min_epoch`` is the
        global epoch at enable time: pre-stitch history is not
        reconstructible, so older pins get a structured refusal.

        With ``per_shard=True`` every shard engine additionally
        publishes its *own* epochs from its own process (workers publish
        at each local commit — no router involvement); the ctrl names
        are returned by :meth:`shard_queryplanes`.
        """
        if publisher is None:
            from repro.service.queryplane import EpochPublisher

            publisher = EpochPublisher(**kwargs)
        self._queryplane = publisher
        self._qp_min_epoch = self.epoch
        if per_shard:
            self._shard_planes = [
                sh.enable_queryplane(**kwargs) for sh in self.shards
            ]
        self._stitch_cache = None  # force a fresh stitch + publish
        self.view()
        return publisher

    def shard_queryplanes(self) -> List[str]:
        """Ctrl segment names of the per-shard planes (empty unless
        ``enable_queryplane(per_shard=True)``)."""
        return list(self._shard_planes)

    def take_completed(self) -> List[Response]:
        out = self._completed
        self._completed = []
        for sh in self.shards:
            out.extend(sh.take_completed())
        return out

    def core(self, u: Vertex) -> Optional[int]:
        return self.view().core(u)

    def cores(self) -> Dict[Vertex, int]:
        """The stitched global core map (exact; see module docstring)."""
        return self.view().cores()

    def view(self) -> SnapshotView:
        """One consistent stitched view of the latest committed state.

        Cached per epoch vector: a view is recomputed only when some
        shard committed since the last stitch.
        """
        vec = self._epoch_vector()
        if self._stitch_cache is not None and self._stitch_cache[0] == vec:
            return self._stitch_cache[1]
        view = SnapshotView(sum(vec), self._stitch())
        self._stitch_cache = (vec, view)
        if self._queryplane is not None:
            # publish after the epoch-vector refinement settles: global
            # epochs are the (strictly increasing) vector sum, so every
            # stamped epoch names exactly one stitched state
            self._queryplane.publish(
                view.epoch, self._qp_min_epoch, view.mapping, None
            )
        return view

    def metrics(self) -> Dict:
        """Router ledger plus every shard's own metrics surface."""
        return {
            "router": self.metrics_collector.as_dict(
                pending_depth=self.pending_ops(), now=self.now,
                epoch=self.epoch,
            ),
            "shards": [sh.metrics() for sh in self.shards],
        }

    def check(self) -> None:
        """Flush everything, then assert per-shard and router invariants
        plus the stitch's exactness against a fresh decomposition."""
        self.flush()
        for sh in self.shards:
            sh.check()
        self.metrics_collector.assert_invariant()

    # ------------------------------------------------------------------
    # shutdown — quiesce workers BEFORE the final checkpoint
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop shard workers, then checkpoint, then close journals.

        Ordering is the point (and is what the torn-tail regression
        pins): the process backend's workers append to their journals
        from *their* process, so the final checkpoint may only be
        written once every worker has been joined — checkpointing while
        a worker still held the file would interleave a torn tail.
        Idempotent, like :meth:`Engine.close`.
        """
        if self._closed:
            return
        self._closed = True
        payloads = [sh.quiesce() for sh in self.shards]   # 1. join workers
        for sh, payload in zip(self.shards, payloads):    # 2. checkpoint
            sh.final_checkpoint(payload)
        for sh in self.shards:                            # 3. release
            sh.close()

    def abandon(self) -> None:
        """Crash-stop every shard (no checkpoint, no flush): what the
        cross-shard crash tests use to simulate the whole serving
        process dying mid-2PC."""
        self._closed = True
        for sh in self.shards:
            sh.abandon()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _submit_update(self, request: Request, rid: str) -> Response:
        self.metrics_collector.admitted += 1
        self.now += self.config.ingest_cost
        u, v = request.u, request.v
        if u == v or u is None or v is None:
            return self._quarantine(
                request, rid, E_SELF_LOOP,
                f"self-loop or missing endpoint: {u!r}",
            )
        su = self.interner.shard_of(u)
        sv = self.interner.shard_of(v)
        if su == sv:
            # intra-shard: the shard's own engine batches it; its
            # admission verdict is authoritative (it holds the edge).
            # The shard engine cannot see a duplicate id (the router
            # deduplicates globally), so the verdict is about the edge.
            self.metrics_collector.admitted -= 1  # shard ledger counts it
            sh = self.shards[su]
            if not hasattr(sh, "send"):
                return sh.submit(replace(request, id=rid))
            # process shard: defer — one submit_many frame per run of
            # local ops beats a pipe round-trip per op.  The shard's
            # admission verdict (e.g. duplicate-edge quarantine)
            # surfaces through take_completed() instead.
            buf = self._lbuf.setdefault(su, [])
            buf.append(replace(request, id=rid))
            if len(buf) >= self._group_cap:
                self._flush_local(su)
            return Response(id=rid, op=request.op, status=STATUS_PENDING)
        return self._submit_cross(request, rid)

    def _flush_local(self, s: int) -> None:
        """Ship shard ``s``'s deferred intra-shard ops in one frame.
        Non-pending verdicts (quarantines) are terminal responses the
        monolith would have returned synchronously — they surface via
        the completed-response drain."""
        reqs = self._lbuf.pop(s, None)
        if not reqs:
            return
        for resp in self.shards[s].submit_many(reqs):
            if resp.status != STATUS_PENDING:
                self._completed.append(resp)

    def _submit_query(self, request: Request, rid: str) -> Response:
        self.metrics_collector.admitted += 1
        self.now += self.config.query_cost
        handler = QUERY_KINDS.get(request.kind or "")
        if handler is None:
            return self._quarantine(
                request, rid, E_UNKNOWN_QUERY,
                f"unknown query kind {request.kind!r} "
                f"(known: {sorted(QUERY_KINDS)})",
            )
        view = self.view()
        try:
            value = handler(view, request.args)
        except TypeError as exc:
            return self._quarantine(
                request, rid, E_BAD_REQUEST,
                f"bad arguments for {request.kind!r}: {exc}",
            )
        if request.kind == "core" and value is None:
            return self._quarantine(
                request, rid, E_UNKNOWN_VERTEX,
                f"vertex {request.args[0]!r} unknown at epoch {view.epoch}",
            )
        m = self.metrics_collector
        m.committed += 1
        m.committed_queries += 1
        m.note_latency("query", self.config.query_cost)
        return Response(id=rid, op="query", status=STATUS_COMMITTED,
                        value=value, epoch=view.epoch,
                        latency=self.config.query_cost)

    # ------------------------------------------------------------------
    # cross-shard 2PC (router/coordinator side)
    # ------------------------------------------------------------------
    def _submit_cross(self, request: Request, rid: str) -> Response:
        """Queue one cross-shard op into the router's run buffer.

        The buffer mirrors the micro-batcher's semantics edge-for-edge:
        a same-kind duplicate coalesces onto the queued edge, an
        opposite-kind op annihilates the pair (both sides commit as a
        net no-op), a kind conflict on a *fresh* edge cuts the pending
        group first.  A full group (``max_batch`` edges) commits through
        one grouped prepare/commit round per shard — one maintainer
        batch and one epoch per shard instead of an edge at a time.
        """
        kind = "+" if request.op == "insert" else "-"
        e = canonical_edge(request.u, request.v)
        m = self.metrics_collector
        if e in self._xriders:
            if kind == self._xkind:
                self._xriders[e].append((rid, request.op))
                m.coalesced += 1
                return Response(id=rid, op=request.op,
                                status=STATUS_PENDING, detail="coalesced")
            for orid, oop in self._xriders.pop(e):
                self._finish(orid, oop, STATUS_COMMITTED, detail="cancelled")
            self._xedges.remove(e)
            m.cancelled += 1
            m.committed += 1
            m.committed_updates += 1
            m.note_latency(request.op, 0.0)
            return Response(id=rid, op=request.op, status=STATUS_COMMITTED,
                            epoch=self.epoch, latency=0.0, detail="cancelled")
        if self._xkind is not None and kind != self._xkind and self._xedges:
            self._cut_cross("conflict")
        self._xkind = kind
        self._xedges.append(e)
        self._xriders[e] = [(rid, request.op)]
        if len(self._xedges) >= self._group_cap:
            self._cut_cross("size")
        return Response(id=rid, op=request.op, status=STATUS_PENDING)

    _INFLIGHT = object()

    def _scatter(self, point: str, frame: str, payloads, seqs) -> Dict:
        """Send one group frame per shard (ascending id), then gather.

        Process shards overlap — each worker runs its maintainer batch
        while the router is still scattering — so a group's wall time is
        the *slowest* shard, not the sum.  Local shards execute at send
        time (a direct call), which keeps sim semantics identical.  The
        crash point fires between sends: frames already sent are
        processed (and journaled) by their workers even if the router
        dies before gathering, which is exactly the torn window the
        recovery resolution pass owns.  After a :class:`RouterCrashed`
        the engine must be abandoned — a gather was skipped, so a pipe
        may hold a stale reply.
        """
        staged = []
        for i, (s, payload) in enumerate(payloads):
            if i:
                self._crash_point(point, seqs)
            sh = self.shards[s]
            if hasattr(sh, "send"):
                sh.send(frame, payload)
                staged.append((s, sh, self._INFLIGHT))
            else:
                staged.append((s, sh, getattr(sh, frame)(payload)))
        return {s: (sh.recv() if res is self._INFLIGHT else res)
                for s, sh, res in staged}

    def _crash_point(self, point: str, seqs) -> None:
        if self.crash_2pc.get(point) in seqs:
            raise RouterCrashed(point, f"tx{self.crash_2pc[point]}")
        if self.faults is not None:
            decision = self.faults.decide(CRASH_POINTS.index(point), "tick")
            if decision is not None and decision[0] == CRASH:
                raise RouterCrashed(point, f"group@{min(seqs)}")

    def _cut_cross(self, reason: str) -> None:
        """Commit the pending cross-shard group through grouped 2PC.

        Protocol order (the crash windows the recovery tests pin):
        ``prepare`` scattered to every involved shard in ascending shard
        order (``prepare-peer`` crashes between sends), gather all
        votes, then — the group now decided — ``commit2`` scattered in
        ascending shard order (``commit-coord`` crashes before the first
        commit, leaving every prepare dangling → recovery aborts;
        ``commit-peer`` between commits, leaving a commit2 on one shard
        → recovery redoes the rest).  Resolution needs no coordinator
        identity: *any* shard's ``commit2`` is proof of decision.
        """
        edges, riders, kind = self._xedges, self._xriders, self._xkind
        self._xedges, self._xriders, self._xkind = [], {}, None
        if not edges:
            return
        self.metrics_collector.cuts[reason] += 1
        group = []   # (tx, seq, edge, coord, part)
        by_shard: Dict[int, List[Tuple]] = {}
        for e in edges:
            seq = self._txseq
            tx = f"tx{seq}"
            self._txseq += 1
            coord = self.interner.shard_of(e[0])
            part = self.interner.shard_of(e[1])
            group.append((tx, seq, e, coord, part))
            rid0 = riders[e][0][0]
            by_shard.setdefault(coord, []).append(
                (tx, kind, e, rid0, part, "apply"))
            by_shard.setdefault(part, []).append(
                (tx, kind, e, rid0, coord, "track"))
        seqs = {g[1] for g in group}
        # phase 1: prepare, scattered to every involved shard
        votes = self._scatter("prepare-peer", "prepare_group",
                              sorted(by_shard.items()), seqs)
        errors: Dict[str, str] = {}
        prepared_on: Dict[str, List[int]] = {}
        for s, items in sorted(by_shard.items()):
            for it, err in zip(items, votes[s]):
                if err is None:
                    prepared_on.setdefault(it[0], []).append(s)
                else:
                    errors.setdefault(it[0], err)
        # failed votes: abort wherever prepared, quarantine the riders
        aborts: Dict[int, List[str]] = {}
        for tx, seq, e, coord, part in group:
            if tx not in errors:
                continue
            for s in prepared_on.get(tx, ()):
                aborts.setdefault(s, []).append(tx)
            for orid, oop in riders[e]:
                self._finish(
                    orid, oop, STATUS_QUARANTINED,
                    error=make_error(errors[tx],
                                     f"cross-shard op rejected: {e!r}"),
                )
        for s, txs in sorted(aborts.items()):
            self.shards[s].abort_group(txs)
        decided = [g for g in group if g[0] not in errors]
        if not decided:
            return
        # phase 2: the group is decided — commit, scattered
        self._crash_point("commit-coord", seqs)
        commit_by_shard: Dict[int, List[str]] = {}
        for tx, seq, e, coord, part in decided:
            commit_by_shard.setdefault(coord, []).append(tx)
            commit_by_shard.setdefault(part, []).append(tx)
        epochs = self._scatter("commit-peer", "commit_group",
                               sorted(commit_by_shard.items()), seqs)
        self._stitch_cache = None
        for tx, seq, e, coord, part in decided:
            ep = epochs[coord]
            for orid, oop in riders[e]:
                self._finish(orid, oop, STATUS_COMMITTED, epoch=ep,
                             detail="cross-shard")

    def _finish(self, rid: str, op: str, status: str, *,
                epoch: Optional[int] = None, error: Optional[Dict] = None,
                detail: Optional[str] = None) -> None:
        m = self.metrics_collector
        if status == STATUS_COMMITTED:
            m.committed += 1
            m.committed_updates += 1
            m.note_latency(op, 0.0)
        elif status == STATUS_QUARANTINED:
            m.quarantined += 1
        self._completed.append(Response(id=rid, op=op, status=status,
                                        error=error, epoch=epoch,
                                        latency=0.0, detail=detail))

    def _quarantine(self, request: Request, rid: str, code: str,
                    message: str) -> Response:
        self.metrics_collector.quarantined += 1
        return Response(id=rid, op=request.op, status=STATUS_QUARANTINED,
                        error=make_error(code, message))

    # ------------------------------------------------------------------
    # epoch stitch
    # ------------------------------------------------------------------
    def _stitch(self) -> Dict[Vertex, int]:
        """Exact global cores over the union of shard subgraphs.

        In-process backends refine here; the process backend runs the
        same synchronous rounds *in the shard workers* over two shared
        int64 arrays (:meth:`repro.parallel.procs.ProcessShard.refine`),
        with the router acting as the round barrier.
        """
        if self.config.backend == "process":
            from repro.parallel.procs import refine_distributed

            gid_cores, present = refine_distributed(self.shards,
                                                    self.interner)
            return {self.interner.external(g): gid_cores[g]
                    for g in sorted(present)}
        intern = self.interner.intern
        seen = set()
        adj: Dict[int, List[int]] = {}
        present: List[int] = []
        for sh in self.shards:
            for x in sh.present_vertices():
                g = intern(x)
                if g not in adj:
                    adj[g] = []
                    present.append(g)
            for u, v in sh.edges():
                gu, gv = intern(u), intern(v)
                key = (gu, gv) if gu <= gv else (gv, gu)
                if key in seen:   # cross edges: coordinator graph + peer
                    continue      # foreign set both report them
                seen.add(key)
                adj[gu].append(gv)
                adj[gv].append(gu)
        n = len(self.interner)
        from array import array

        indptr = array("q", [0])
        targets = array("q")
        for g in range(n):
            targets.extend(adj.get(g, ()))
            indptr.append(len(targets))
        vals = refine_cores(indptr, targets, n)
        return {self.interner.external(g): vals[g] for g in present}

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def from_journals(
        cls,
        base_path: str,
        config: Optional[EngineConfig] = None,
        **overrides,
    ) -> "ShardedEngine":
        """Restart a sharded engine from its per-shard journals.

        Three phases (``docs/sharding.md``):

        1. every shard restarts via :meth:`Engine.from_journal`
           (checkpoint fast-path + committed replay, cross-shard
           ``commit2`` batches included);
        2. the router-side **resolution pass** settles every dangling
           prepare: commit (redo + the missing ``commit2``) iff *any*
           shard holds that transaction's ``commit2``, else ``abort2``
           on every shard that prepared — both participants always
           resolve identically;
        3. for the process backend, the resolved journals are handed to
           fresh shard workers.
        """
        cfg = config or EngineConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        if cfg.journal_path is None:
            cfg = replace(cfg, journal_path=base_path)
        paths = shard_paths(base_path, cfg.shards)
        for p in paths:
            if not os.path.exists(p):
                raise FileNotFoundError(p)
        router = cls(None, cfg, _shards=[])
        # phase 1: per-shard restart (in-process, fault-free replay)
        engines: List[Engine] = []
        replays = []
        for s in range(cfg.shards):
            shard_cfg = replace(router._shard_config(s), backend="sim",
                                faults=None)
            eng = Engine.from_journal(paths[s], shard_cfg)
            engines.append(eng)
            replays.append(eng.journal.replay())
        # phase 2: resolution pass over dangling prepares
        decided = set()
        for rp in replays:
            decided |= rp.commit2
        for s, rp in enumerate(replays):
            for tx in sorted(rp.prepared):
                prep = rp.prepared[tx]
                commit = tx in decided
                engines[s].resolve_prepared(prep, commit)
                router.resolutions.append(_Resolution(
                    tx=tx, id=prep.id, committed=commit, shards=(s,),
                ))
        # effects-without-decision is a protocol violation worth loud
        # failure: a commit2 on one shard whose peer journal holds
        # neither prepare nor commit2 cannot happen under the write
        # ordering (peer prepare is durable before any commit2)
        for s, rp in enumerate(replays):
            for tx in rp.commit2:
                others = [o for o in range(cfg.shards) if o != s]
                if others and not any(
                    tx in replays[o].commit2 or tx in replays[o].abort2
                    or any(r.tx == tx for r in router.resolutions)
                    for o in others
                ):
                    raise ValueError(
                        f"commit2 for {tx!r} with no peer prepare — "
                        "2PC write ordering violated"
                    )
        # restore the router's id space
        for rp in replays:
            router._seen_ids.update(rp.ids)
        for rid in router._seen_ids:
            if isinstance(rid, str) and rid.startswith("g") and rid[1:].isdigit():
                router._seq = max(router._seq, int(rid[1:]) + 1)
        router._txseq = max(
            (int(tx[2:]) + 1
             for rp in replays
             for tx in (set(rp.commit2) | set(rp.abort2) | set(rp.prepared))
             if tx.startswith("tx") and tx[2:].isdigit()),
            default=0,
        )
        # phase 3: hand the resolved journals to their shard hosts
        if cfg.backend == "process":
            from repro.parallel.procs import ProcessShard

            for eng in engines:
                eng.close()
            router.shards = [
                ProcessShard.start(s, router._shard_spec(s), None,
                                   cfg.shards, recover_from=paths[s])
                for s in range(cfg.shards)
            ]
        else:
            router.shards = [LocalShard(s, eng)
                             for s, eng in enumerate(engines)]
        for s in range(cfg.shards):
            for x in router.shards[s].present_vertices():
                router.interner.intern(x)
        return router
