"""Request/response envelope of the serving engine.

Every interaction with :class:`repro.service.engine.Engine` is a
:class:`Request` in and one or more :class:`Response` objects out.  The
engine never raises for bad input — malformed, duplicate, rejected and
late requests all come back as structured responses so a serving loop can
keep draining its stream (the ISSUE's "partial-failure report instead of
an exception escaping the engine").

Lifecycle
---------
An update request is either **rejected** at the door (ingress queue full,
it was never admitted), or admitted and then finished in exactly one of
four terminal states: **committed** (applied in some epoch, or netted
out by a cancelling opposite operation), **quarantined** (malformed or
duplicate — structured error attached), **timed_out** (its deadline
passed before its micro-batch was cut), or **abandoned** (its batch
crashed under fault injection and every retry — after engine recovery
from the write-ahead journal — crashed too; see ``docs/faults.md``).  A
batch that commits after one or more crash/recover/retry rounds still
ends **committed** (with ``detail="retried:N"``), so abandonment is
reserved for retries-exhausted.  A query is admitted and answered
immediately against the last committed epoch, so its only terminal
states are committed / quarantined / timed_out.  That yields the
accounting invariant checked by CI::

    admitted == committed + quarantined + timed_out + abandoned
                                                         (at quiescence)

Deadlines are *absolute simulated times* (the engine clock advances by
ingest/query costs and batch makespans, see ``repro.parallel.costs``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

Vertex = Hashable

__all__ = [
    "Request",
    "Response",
    "STATUS_PENDING",
    "STATUS_COMMITTED",
    "STATUS_QUARANTINED",
    "STATUS_REJECTED",
    "STATUS_TIMED_OUT",
    "STATUS_ABANDONED",
    "E_SELF_LOOP",
    "E_DUPLICATE_ID",
    "E_EDGE_EXISTS",
    "E_EDGE_MISSING",
    "E_UNKNOWN_QUERY",
    "E_UNKNOWN_VERTEX",
    "E_BACKPRESSURE",
    "E_DEADLINE",
    "E_BATCH_FAILED",
    "E_BAD_REQUEST",
    "E_WORKER_CRASH",
    "E_RETRIES_EXHAUSTED",
    "E_REPLICA_UNREADY",
    "E_PRIMARY_DOWN",
    "E_EPOCH_TRUNCATED",
    "E_EPOCH_UNAVAILABLE",
]

# terminal + transient statuses
STATUS_PENDING = "pending"          # admitted update, waiting for its batch
STATUS_COMMITTED = "committed"      # applied (or answered, for queries)
STATUS_QUARANTINED = "quarantined"  # malformed/duplicate, never applied
STATUS_REJECTED = "rejected"        # backpressure: never admitted
STATUS_TIMED_OUT = "timed_out"      # deadline passed before commit
STATUS_ABANDONED = "abandoned"      # batch crashed; retries exhausted

# structured error codes
E_SELF_LOOP = "self-loop"
E_DUPLICATE_ID = "duplicate-id"
E_EDGE_EXISTS = "edge-exists"
E_EDGE_MISSING = "edge-missing"
E_UNKNOWN_QUERY = "unknown-query"
E_UNKNOWN_VERTEX = "unknown-vertex"
E_BACKPRESSURE = "backpressure"
E_DEADLINE = "deadline-exceeded"
E_BATCH_FAILED = "batch-failed"
E_BAD_REQUEST = "bad-request"
E_WORKER_CRASH = "worker-crash"
E_RETRIES_EXHAUSTED = "retries-exhausted"
# replication-plane codes (docs/replication.md)
E_REPLICA_UNREADY = "replica-unready"   # follower has no init record yet
E_PRIMARY_DOWN = "primary-down"         # primary dead, no promotable follower
# query-plane refusals (docs/queryplane.md): a pinned epoch the wait-free
# buffers can no longer answer gets a structured refusal, never a stale
# or torn answer
E_EPOCH_TRUNCATED = "epoch-truncated"      # pin below the published min_epoch
E_EPOCH_UNAVAILABLE = "epoch-unavailable"  # pin valid but not buffered


@dataclass(frozen=True)
class Request:
    """One item of the interleaved insert/remove/query stream.

    ``op`` is ``"insert"``/``"remove"`` (with ``u``, ``v``) or ``"query"``
    (with ``kind`` and positional ``args``).  ``id`` must be unique per
    engine; leave it ``None`` to have the engine assign a sequence id.
    ``deadline`` is an absolute simulated time; ``None`` means no bound.
    """

    op: str
    u: Optional[Vertex] = None
    v: Optional[Vertex] = None
    kind: Optional[str] = None
    args: Tuple = ()
    id: Optional[str] = None
    deadline: Optional[float] = None


@dataclass
class Response:
    """Outcome (possibly interim) of one request.

    ``error`` is ``{"code": ..., "message": ...}`` for quarantined /
    rejected / timed-out responses.  ``epoch`` is the epoch the request
    committed in (for queries: the epoch it was answered against).
    ``latency`` is simulated time from admission to the terminal state.
    ``detail`` carries coalescing notes (``"coalesced"``, ``"cancelled"``).

    The two ``replica_*`` fields are the read-replica staleness contract
    (``docs/replication.md``): a query answered by a
    :class:`~repro.replication.FollowerEngine` carries the epoch its
    replica had applied (``replica_epoch``) and how many primary journal
    records it had not yet replayed at answer time
    (``replica_lag_records``).  Both stay ``None`` on primary answers.

    The two ``snapshot_*``/``staleness_*`` fields are the wait-free
    query plane's bounded-staleness contract (``docs/queryplane.md``):
    an answer served from the shared-memory buffers carries the epoch of
    the buffer it read (``snapshot_epoch``) and how many epochs the
    freshest published buffer was ahead at answer time
    (``staleness_epochs``, 0 for an up-to-date read).  Both stay
    ``None`` on the in-engine read path.
    """

    id: str
    op: str
    status: str
    value: Any = None
    error: Optional[Dict[str, str]] = None
    epoch: Optional[int] = None
    latency: Optional[float] = None
    detail: Optional[str] = None
    replica_epoch: Optional[int] = None
    replica_lag_records: Optional[int] = None
    snapshot_epoch: Optional[int] = None
    staleness_epochs: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True while the request is pending or ended committed."""
        return self.status in (STATUS_PENDING, STATUS_COMMITTED)

    @property
    def terminal(self) -> bool:
        return self.status != STATUS_PENDING


def make_error(code: str, message: str) -> Dict[str, str]:
    """The structured error payload attached to failure responses."""
    return {"code": code, "message": message}
