"""Adaptive micro-batching for the serving engine.

The paper's batch algorithms (``repro.parallel.batch``) need homogeneous
batches — all insertions or all removals.  :class:`PendingOps` is the
coalescing/cancellation buffer that used to live inside
``StreamProcessor``: it accumulates one homogeneous *run* of edge
operations, coalesces duplicate same-kind operations, cancels an
operation against a queued opposite operation on the same edge, and
reports a *conflict* when an opposite-kind operation on a fresh edge
means the current run must be cut first.

:class:`AdaptiveBatcher` wraps a :class:`PendingOps` with the cut policy
of the engine's micro-batcher.  A run is cut when any of:

* **size** — the run reached ``max_batch`` operations (the old
  ``StreamProcessor.max_batch`` auto-flush);
* **time** — ``max_delay`` simulated time units elapsed since the run's
  first operation was queued (bounds update latency);
* **pressure** — ``query_pressure`` queries were answered since the last
  commit (bounds snapshot *staleness*: readers never block, so the only
  cost of a long-lived run is answering from an older epoch);
* **conflict** — an opposite-kind operation arrived (homogeneity forces
  the cut, exactly as in the old stream driver);
* **flush** — the caller forced it.

The batcher never applies anything itself — the engine owns the clock and
the maintainer; the batcher just says *when* and *what*.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.dynamic_graph import canonical_edge

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["PendingOps", "AdaptiveBatcher", "CUT_REASONS"]

CUT_REASONS = ("size", "time", "pressure", "conflict", "flush")

#: actions returned by :meth:`PendingOps.classify`
QUEUE = "queue"
COALESCE = "coalesce"
CANCEL = "cancel"
CONFLICT = "conflict"


class PendingOps:
    """One homogeneous run of pending edge operations.

    ``kind`` is ``"+"`` (insertions), ``"-"`` (removals) or ``None``
    (empty).  Edges are stored canonicalized, in arrival order.
    """

    def __init__(self) -> None:
        self.kind: Optional[str] = None
        self._ops: Dict[Edge, None] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, edge: Edge) -> bool:
        return canonical_edge(*edge) in self._ops

    def edges(self) -> List[Edge]:
        """The queued edges in arrival order."""
        return list(self._ops)

    # ------------------------------------------------------------------
    def classify(self, kind: str, u: Vertex, v: Vertex) -> Tuple[str, Edge]:
        """What would happen if ``(kind, u, v)`` were pushed now.

        Returns ``(action, canonical_edge)`` with action one of
        ``"queue"`` (fresh same-kind op), ``"coalesce"`` (duplicate of a
        queued op), ``"cancel"`` (opposite of a queued op — the pair nets
        to a no-op), ``"conflict"`` (opposite kind on a fresh edge — the
        run must be cut before this op can be queued).  Nothing is
        mutated; the caller follows up with :meth:`queue` or :meth:`drop`.
        """
        e = canonical_edge(u, v)
        if self.kind is not None and self.kind != kind:
            return (CANCEL if e in self._ops else CONFLICT), e
        if e in self._ops:
            return COALESCE, e
        return QUEUE, e

    def queue(self, kind: str, edge: Edge) -> None:
        """Append a fresh operation (caller already classified it)."""
        if self.kind not in (None, kind):
            raise ValueError(f"kind {kind!r} conflicts with pending {self.kind!r} run")
        self.kind = kind
        self._ops[edge] = None

    def drop(self, edge: Edge) -> None:
        """Remove a queued operation (the cancellation path)."""
        del self._ops[edge]
        if not self._ops:
            self.kind = None

    def cut(self) -> Tuple[Optional[str], List[Edge]]:
        """Return ``(kind, edges)`` of the current run and reset to empty."""
        kind, edges = self.kind, list(self._ops)
        self.kind = None
        self._ops.clear()
        return kind, edges


class AdaptiveBatcher:
    """Cut policy around a :class:`PendingOps` run.

    Parameters
    ----------
    max_batch:
        Cut when the run reaches this many operations (>= 1).
    max_delay:
        Cut when this much simulated time passed since the run's first
        operation (``None`` disables the time trigger).
    query_pressure:
        Cut when this many queries were answered since the last commit
        while updates are pending (``None`` disables the trigger).
    """

    def __init__(
        self,
        max_batch: int = 512,
        max_delay: Optional[float] = None,
        query_pressure: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay is not None and max_delay <= 0:
            raise ValueError("max_delay must be positive or None")
        if query_pressure is not None and query_pressure < 1:
            raise ValueError("query_pressure must be >= 1 or None")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.query_pressure = query_pressure
        self.pending = PendingOps()
        self._first_queued_at: Optional[float] = None
        self._queries_since_commit = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pending)

    @property
    def kind(self) -> Optional[str]:
        return self.pending.kind

    def classify(self, kind: str, u: Vertex, v: Vertex) -> Tuple[str, Edge]:
        return self.pending.classify(kind, u, v)

    def queue(self, kind: str, edge: Edge, now: float) -> None:
        if not self.pending:
            self._first_queued_at = now
        self.pending.queue(kind, edge)

    def drop(self, edge: Edge) -> None:
        self.pending.drop(edge)
        if not self.pending:
            self._first_queued_at = None

    def note_query(self) -> None:
        self.note_queries(1)

    def note_queries(self, n: int) -> None:
        """Record ``n`` answered queries at once.

        The wait-free query plane answers reads in other OS processes —
        none of them pass through :meth:`note_query` — so the engine
        periodically folds the plane's shared read counter in here
        (:meth:`repro.service.engine.Engine.enable_queryplane`), keeping
        the ``pressure`` cut trigger honest under wait-free reads.
        """
        self._queries_since_commit += n

    # ------------------------------------------------------------------
    def cut_reason(self, now: float) -> Optional[str]:
        """The first triggered cut policy, or ``None`` if the run may
        keep accumulating."""
        if not self.pending:
            return None
        if len(self.pending) >= self.max_batch:
            return "size"
        if (
            self.max_delay is not None
            and self._first_queued_at is not None
            and now - self._first_queued_at >= self.max_delay
        ):
            return "time"
        if (
            self.query_pressure is not None
            and self._queries_since_commit >= self.query_pressure
        ):
            return "pressure"
        return None

    def cut(self) -> Tuple[Optional[str], List[Edge]]:
        """Take the current run (kind, edges) and reset all triggers."""
        self._first_queued_at = None
        self._queries_since_commit = 0
        return self.pending.cut()
