"""Metrics surface of the serving engine.

Everything the engine can report is collected here and exported as plain
dicts (:meth:`ServiceMetrics.as_dict`) so the bench harness and the
``repro-serve`` CLI can render or JSON-dump it without touching engine
internals.  Glossary (see also ``docs/service.md``):

counters
    ``admitted`` — requests accepted past admission control;
    ``rejected`` — refused at the door by backpressure (never admitted);
    ``committed`` — terminal successes (updates applied or netted out,
    queries answered); ``quarantined`` — malformed/duplicate requests
    ended with a structured error; ``timed_out`` — deadline passed before
    commit; ``abandoned`` — the batch crashed under fault injection and
    retries were exhausted; ``coalesced``/``cancelled`` — duplicate-op
    merges and insert/remove annihilations inside a pending run;
    ``in_flight`` — admitted but not yet terminal.  At quiescence::

        admitted == committed + quarantined + timed_out + abandoned

faults
    The crash-recovery block (``docs/faults.md``): ``crashed_batches`` —
    batch attempts lost to injected faults; ``recoveries`` — maintainer
    rebuilds from the write-ahead journal; ``retries`` — re-submissions
    after a recovery; ``retried_ops`` — operations that still committed
    after ≥1 retry; plus the folded injection counters (``crashes``,
    ``worker_errors``, ``stalls_injected``, ``timeouts_injected``,
    ``locks_orphaned``) from every attempt's report.

cuts
    Why each micro-batch was cut: ``size``, ``time``, ``pressure``,
    ``conflict``, ``flush`` (see :mod:`repro.service.batcher`).

epochs
    One row per commit: batch size/kind, simulated makespan, commit time
    and the latency percentiles of the updates it carried.

sim
    The folded :class:`~repro.parallel.runtime.SimReport` totals across
    all batches (work, spin, contention, lock traffic).

latency
    Simulated admission→terminal latency percentiles, split by class
    (updates vs queries).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.parallel.runtime import SimReport
from repro.service.batcher import CUT_REASONS

__all__ = ["ServiceMetrics", "percentile", "summarize_latencies"]


def percentile(sorted_data: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]) of pre-sorted data."""
    if not sorted_data:
        return 0.0
    if p <= 0:
        return float(sorted_data[0])
    rank = math.ceil(p / 100.0 * len(sorted_data))
    return float(sorted_data[min(len(sorted_data), max(1, rank)) - 1])


def summarize_latencies(data: Sequence[float]) -> Dict[str, float]:
    """count/mean/p50/p90/p99/max summary of a latency sample."""
    if not data:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    s = sorted(data)
    return {
        "count": len(s),
        "mean": sum(s) / len(s),
        "p50": percentile(s, 50),
        "p90": percentile(s, 90),
        "p99": percentile(s, 99),
        "max": float(s[-1]),
    }


class ServiceMetrics:
    """Mutable collector; the engine is the only writer."""

    def __init__(self, ingress_capacity: Optional[int] = None) -> None:
        self.ingress_capacity = ingress_capacity
        self.admitted = 0
        self.rejected = 0
        self.committed = 0
        self.quarantined = 0
        self.timed_out = 0
        self.abandoned = 0
        self.committed_updates = 0
        self.committed_queries = 0
        self.coalesced = 0
        self.cancelled = 0
        self.cuts: Dict[str, int] = {r: 0 for r in CUT_REASONS}
        self.max_queue_depth = 0
        self.query_latencies: List[float] = []
        self.update_latencies: List[float] = []
        self.epoch_log: List[Dict[str, object]] = []
        self.sim: Dict[str, float] = {
            "makespan": 0.0,
            "total_work": 0.0,
            "spin_time": 0.0,
            "contended_time": 0.0,
            "lock_acquires": 0,
            "lock_failures": 0,
            "batches": 0,
        }
        # sliding-window plane (docs/traffic.md): expiries armed at
        # commit, expiry removes submitted, and backpressure-deferred
        # expiries re-armed for a later attempt
        self.window: Dict[str, int] = {
            "scheduled": 0,
            "fired": 0,
            "rebuffered": 0,
        }
        self.faults: Dict[str, int] = {
            "crashed_batches": 0,
            "recoveries": 0,
            "retries": 0,
            "retried_ops": 0,
            "crashes": 0,
            "worker_errors": 0,
            "stalls_injected": 0,
            "timeouts_injected": 0,
            "locks_orphaned": 0,
        }

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return (self.admitted - self.committed - self.quarantined
                - self.timed_out - self.abandoned)

    def note_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def note_latency(self, op: str, latency: Optional[float]) -> None:
        if latency is None:
            return
        if op == "query":
            self.query_latencies.append(latency)
        else:
            self.update_latencies.append(latency)

    def fold_report(self, report: SimReport) -> None:
        """Accumulate one batch's :class:`SimReport` into the totals."""
        self.sim["makespan"] += report.makespan
        self.sim["total_work"] += report.total_work
        self.sim["spin_time"] += report.spin_time
        self.sim["contended_time"] += report.contended_time
        self.sim["lock_acquires"] += report.lock_acquires
        self.sim["lock_failures"] += report.lock_failures
        self.sim["batches"] += 1
        self.fold_faults(report)

    def fold_faults(self, report) -> None:
        """Accumulate a report's injection counters (also called for
        *crashed* attempts, whose reports never reach :meth:`fold_report`
        because the batch did not commit)."""
        f = self.faults
        f["crashes"] += getattr(report, "crashes", 0)
        f["worker_errors"] += getattr(report, "worker_errors", 0)
        f["stalls_injected"] += getattr(report, "stalls_injected", 0)
        f["timeouts_injected"] += getattr(report, "timeouts_injected", 0)
        f["locks_orphaned"] += getattr(report, "locks_orphaned", 0)

    def record_epoch(
        self,
        epoch: int,
        kind: Optional[str],
        batch_size: int,
        makespan: float,
        committed_at: float,
        update_latencies: Sequence[float],
    ) -> None:
        self.epoch_log.append(
            {
                "epoch": epoch,
                "kind": kind,
                "batch_size": batch_size,
                "makespan": makespan,
                "committed_at": committed_at,
                "latency": summarize_latencies(update_latencies),
            }
        )

    # ------------------------------------------------------------------
    def assert_invariant(self) -> None:
        """The quiescence accounting identity checked by CI."""
        assert self.in_flight == 0, (
            f"admitted != committed + quarantined + timed_out + abandoned: "
            f"{self.admitted} != {self.committed} + {self.quarantined} "
            f"+ {self.timed_out} + {self.abandoned}"
        )

    def as_dict(self, pending_depth: int = 0, now: float = 0.0,
                epoch: int = 0, event_now: float = 0.0,
                window_armed: int = 0) -> Dict:
        return {
            "now": now,
            "event_now": event_now,
            "epoch": epoch,
            "counters": {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "committed": self.committed,
                "quarantined": self.quarantined,
                "timed_out": self.timed_out,
                "abandoned": self.abandoned,
                "committed_updates": self.committed_updates,
                "committed_queries": self.committed_queries,
                "coalesced": self.coalesced,
                "cancelled": self.cancelled,
                "in_flight": self.in_flight,
            },
            "cuts": dict(self.cuts),
            "queues": {
                "pending_depth": pending_depth,
                "max_pending_depth": self.max_queue_depth,
                "ingress_capacity": self.ingress_capacity,
            },
            "latency": {
                "update": summarize_latencies(self.update_latencies),
                "query": summarize_latencies(self.query_latencies),
            },
            "sim": dict(self.sim),
            "window": {**self.window, "armed": window_armed},
            "faults": dict(self.faults),
            "epochs": [dict(e) for e in self.epoch_log],
        }
