"""repro.service — a streaming core-maintenance serving engine.

The library's batch algorithms answer "apply ΔE with P workers"; this
package answers "serve an interleaved stream of updates and queries":

* :class:`Engine` / :class:`EngineConfig` — the serving engine: adaptive
  micro-batching over OurI/OurR, snapshot-isolated reads, admission
  control, structured partial-failure reporting, metrics;
* :class:`PendingOps` / :class:`AdaptiveBatcher` — the coalescing /
  cancellation run buffer (factored out of the old ``StreamProcessor``)
  plus the size/time/pressure cut policy;
* :class:`SnapshotStore` / :class:`SnapshotView` — epoch-versioned core
  views built on :class:`~repro.core.history.CoreHistory` deltas;
* :class:`Request` / :class:`Response` — the request envelope and
  structured results;
* :class:`ServiceMetrics` — counters, queue depths, per-epoch latency
  percentiles and folded simulation reports;
* :class:`EdgeJournal` — the write-ahead edge journal + checkpoint
  records behind crash recovery and ``Engine.from_journal`` (see
  ``docs/faults.md``);
* :class:`ShardedEngine` — router + N engine shards with cross-shard
  two-phase commit on the journal and exact epoch-stitched views; the
  ``process`` backend hosts each shard in its own OS process (see
  ``docs/sharding.md``);
* :class:`EpochPublisher` / :class:`SnapshotReader` / :class:`ReaderPool`
  — the wait-free query plane: seqlocked shared-memory epoch snapshots
  served by parallel OS reader processes that never enter the engine
  loop (see ``docs/queryplane.md``).

See ``docs/service.md`` for the architecture tour and the metrics
glossary, and ``repro-serve`` (``python -m repro.service``) for the CLI.
"""

from repro.service.batcher import AdaptiveBatcher, PendingOps
from repro.service.engine import Engine, EngineConfig
from repro.service.journal import EdgeJournal, Replay
from repro.service.metrics import ServiceMetrics, percentile, summarize_latencies
from repro.service.queryplane import EpochPublisher, ReaderPool, SnapshotReader
from repro.service.requests import Request, Response
from repro.service.sharding import LocalShard, RouterCrashed, ShardedEngine
from repro.service.snapshots import SnapshotStore, SnapshotView

__all__ = [
    "Engine",
    "EngineConfig",
    "ShardedEngine",
    "LocalShard",
    "RouterCrashed",
    "EdgeJournal",
    "Replay",
    "PendingOps",
    "AdaptiveBatcher",
    "SnapshotStore",
    "SnapshotView",
    "EpochPublisher",
    "SnapshotReader",
    "ReaderPool",
    "Request",
    "Response",
    "ServiceMetrics",
    "percentile",
    "summarize_latencies",
]
