"""``repro-serve`` — drive the serving engine from the command line.

Runs an interleaved insert/remove/query trace through
:class:`repro.service.Engine` and prints the metrics surface::

    repro-serve --dataset BA --ops 1000 --query-rate 0.3 --workers 8
    repro-serve --edge-list graph.txt --ops 500 --max-batch 128 --json
    repro-serve --trace examples/traces/uniform.jsonl --trace-mode engine

Input is either a registered dataset stand-in (``--dataset``), a real
edge-list file (``--edge-list``), or a timed-operation trace
(``--trace``, the ``repro.traffic`` format of ``docs/traffic.md``).
Edge lists are read leniently: malformed lines and self-loops are
counted and skipped (``read_edge_list(strict=False)``) — the file-level
twin of the engine's request quarantine — and reported in the output
under ``ingest``.  Traces are *generated* artifacts and therefore
strict: a malformed trace exits 2.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.bench.reporting import render_service_metrics
from repro.bench.workloads import service_trace, trace_from_edges
from repro.graph.datasets import DATASETS
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.io import read_edge_list
from repro.service.engine import Engine, EngineConfig

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve an interleaved update/query stream over a graph "
        "and report engine metrics.",
    )
    src = p.add_mutually_exclusive_group()
    src.add_argument("--dataset", default="BA", choices=sorted(DATASETS),
                     help="registered dataset stand-in (default: BA)")
    src.add_argument("--edge-list", metavar="PATH",
                     help="edge-list file (read leniently; malformed lines "
                     "and self-loops counted and skipped)")
    src.add_argument("--trace", metavar="PATH",
                     help="replay a timed-operation trace file "
                     "(repro.traffic canonical JSONL, docs/traffic.md); "
                     "strict — a malformed trace exits 2")
    p.add_argument("--ops", type=int, default=1000, help="trace length")
    p.add_argument("--query-rate", type=float, default=0.25)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--max-batch", type=int, default=64,
                   help="micro-batch size cut threshold")
    p.add_argument("--max-delay", type=float, default=20_000.0,
                   help="micro-batch age cut threshold (simulated units; "
                   "0 disables)")
    p.add_argument("--query-pressure", type=int, default=32,
                   help="queries since last commit before a staleness cut "
                   "(0 disables)")
    p.add_argument("--max-pending", type=int, default=0,
                   help="ingress queue bound; overflow is rejected "
                   "(0 = unbounded)")
    p.add_argument("--schedule", choices=("min-clock", "random"),
                   default="min-clock")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--crash-rate", type=float, default=0.0,
                   help="fault injection: per-event worker crash "
                   "probability (0 disables the fault plane)")
    p.add_argument("--stall-rate", type=float, default=0.0,
                   help="fault injection: per-event stall probability")
    p.add_argument("--timeout-rate", type=float, default=0.0,
                   help="fault injection: per-try acquire-timeout "
                   "probability")
    p.add_argument("--max-crashes", type=int, default=8,
                   help="fault injection: total crash budget")
    p.add_argument("--max-retries", type=int, default=16,
                   help="crashed-batch retries before abandonment")
    p.add_argument("--journal", metavar="PATH",
                   help="persist the write-ahead journal to this file")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="journal checkpoint cadence in epochs (0 = never)")
    p.add_argument("--recover-from", metavar="PATH",
                   help="restart from a journal file written by a previous "
                   "run (--journal) instead of building a fresh engine; "
                   "the trace then continues against the recovered state "
                   "and keeps appending to that file (or to --journal, if "
                   "given, via a rebase)")
    shrd = p.add_argument_group("sharding (docs/sharding.md)")
    shrd.add_argument("--shards", type=int, default=1,
                      help="engine shards behind the router (1 = the "
                      "classic monolithic engine, the default)")
    shrd.add_argument("--backend", choices=("sim", "thread", "process"),
                      default="sim",
                      help="batch-loop substrate: 'sim' (simulated "
                      "machine), 'thread' (real threads), 'process' "
                      "(each shard engine in its own OS process; "
                      "requires --shards >= 2)")
    qp = p.add_argument_group("wait-free query plane (docs/queryplane.md)")
    qp.add_argument("--readers", type=int, default=0,
                    help="OS reader processes answering queries from the "
                    "shared-memory epoch snapshot instead of the engine "
                    "loop (0 = classic in-engine reads, the default)")
    qp.add_argument("--read-mix", type=float, default=1.0,
                    metavar="FRAC",
                    help="with --readers: fraction of trace queries routed "
                    "to the reader pool; the rest still take the in-engine "
                    "path (default 1.0 = all reads wait-free)")
    tfc = p.add_argument_group("traffic replay (docs/traffic.md)")
    tfc.add_argument("--trace-mode", choices=("model", "engine"),
                     default="model",
                     help="with --trace: 'model' submits the trace's expiry "
                     "removes like any other op (works on every backend, "
                     "including --shards); 'engine' skips them and arms the "
                     "engine's own sliding-window plane "
                     "(EngineConfig.window) instead")
    tfc.add_argument("--check-boundaries", action="store_true",
                     help="with --trace: quiesce at each window boundary "
                     "and bit-compare the cores against a from-scratch "
                     "decomposition of the ideal windowed edge set; the "
                     "run is made lossless (SLO deadlines off — a "
                     "deadline-dropped insert diverges from the ideal by "
                     "design) and batching is perturbed by the quiesces; "
                     "exits 1 on mismatch")
    repl = p.add_argument_group("replication (docs/replication.md)")
    repl.add_argument("--replicas", type=int, default=0,
                      help="follower read replicas behind the primary "
                      "(0 = unreplicated serving, the default)")
    repl.add_argument("--ship-lag", type=int, default=8,
                      help="async replicas are shipped journal records only "
                      "once they fall more than this many records behind")
    repl.add_argument("--ship-batch", type=int, default=0,
                      help="max records per shipping poll (0 = unbounded)")
    repl.add_argument("--promote-on-crash", action="store_true",
                      help="fail over to the most-caught-up follower when "
                      "the primary process dies (otherwise the set goes "
                      "headless and updates are rejected)")
    repl.add_argument("--primary-crash-rate", type=float, default=0.0,
                      help="seeded primary process-death probability per "
                      "update submission (0 disables)")
    repl.add_argument("--primary-crashes", type=int, default=1,
                      help="total primary-death budget")
    p.add_argument("--check", action="store_true",
                   help="assert engine invariants after the drain")
    p.add_argument("--json", action="store_true",
                   help="dump the metrics dict as JSON instead of text")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    ingest = {"kept": 0, "malformed": 0, "self_loops": 0}
    if args.trace:
        if args.readers or args.replicas or args.recover_from:
            print("--trace replays a self-contained timed trace; it cannot "
                  "be combined with --readers, --replicas or --recover-from",
                  file=sys.stderr)
            return 2
        if args.trace_mode == "engine" and args.shards > 1:
            print("--trace-mode engine arms the monolithic engine's "
                  "sliding-window plane; a sharded engine replays traces "
                  "in model mode (docs/traffic.md)", file=sys.stderr)
            return 2
        initial, trace = [], []
        source, ingest = args.trace, None
    elif args.edge_list:
        edges = read_edge_list(args.edge_list, strict=False, counters=ingest)
        if not edges:
            print("edge list is empty after lenient parsing", file=sys.stderr)
            return 2
        initial, trace = trace_from_edges(
            edges, args.ops, query_rate=args.query_rate, seed=args.seed
        )
        source = args.edge_list
    else:
        initial, trace = service_trace(
            args.dataset, args.ops, query_rate=args.query_rate, seed=args.seed
        )
        source = args.dataset
        ingest = None

    faults = None
    if args.crash_rate or args.stall_rate or args.timeout_rate:
        from repro.faults.plane import FaultSpec

        faults = FaultSpec(
            crash_rate=args.crash_rate,
            stall_rate=args.stall_rate,
            timeout_rate=args.timeout_rate,
            max_crashes=args.max_crashes or None,
        )
    # sharding/backend validation (exit 2 = config error, docs/sharding.md)
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.backend == "process" and args.shards < 2:
        print("--backend process hosts each shard engine in its own OS "
              "process; it requires --shards >= 2 (use --backend sim or "
              "thread for a monolithic engine)", file=sys.stderr)
        return 2
    if args.readers < 0:
        print("--readers must be >= 0", file=sys.stderr)
        return 2
    if not 0.0 <= args.read_mix <= 1.0:
        print("--read-mix must be in [0, 1]", file=sys.stderr)
        return 2
    if args.readers and (args.shards > 1 or args.replicas):
        print("--readers serves the monolithic engine's query plane; it "
              "cannot be combined with --shards or --replicas (enable "
              "those planes programmatically, see docs/queryplane.md)",
              file=sys.stderr)
        return 2
    if args.shards > 1 and args.replicas:
        print("--shards cannot be combined with --replicas: the "
              "replication plane ships one primary journal, a sharded "
              "engine writes one journal per shard", file=sys.stderr)
        return 2
    if args.shards > 1 and args.recover_from:
        if args.journal and args.journal != args.recover_from:
            print("sharded recovery continues its per-shard journals in "
                  "place; --journal must be omitted or equal "
                  "--recover-from", file=sys.stderr)
            return 2
        written = 0
        while os.path.exists(f"{args.recover_from}.shard{written}"):
            written += 1
        if written == 0:
            print(f"no shard journals at {args.recover_from}.shard0..N "
                  "(was the run sharded?)", file=sys.stderr)
            return 2
        if written != args.shards:
            print(f"--recover-from journals were written by {written} "
                  f"shard(s) but --shards is {args.shards}; the shard "
                  "count (and vertex placement) is fixed at write time",
                  file=sys.stderr)
            return 2
    cfg = EngineConfig(
        max_batch=args.max_batch,
        max_delay=args.max_delay or None,
        query_pressure=args.query_pressure or None,
        max_pending=args.max_pending or None,
        num_workers=args.workers,
        backend=args.backend,
        shards=args.shards,
        schedule=args.schedule,
        seed=args.seed,
        faults=faults,
        journal_path=None if args.recover_from else args.journal,
        checkpoint_every=args.checkpoint_every or None,
        max_retries=args.max_retries,
    )
    if args.trace:
        return _serve_trace(args, cfg)
    if args.shards > 1:
        return _serve_sharded(args, cfg, initial, trace, source, ingest)
    if args.replicas:
        if args.recover_from:
            print("--replicas cannot be combined with --recover-from: a "
                  "replica set bootstraps its followers from the primary "
                  "journal's birth record", file=sys.stderr)
            return 2
        return _serve_replicated(args, cfg, initial, trace, source, ingest)

    if args.recover_from:
        try:
            eng = Engine.from_journal(args.recover_from, cfg)
        except OSError as exc:
            print(f"cannot recover from {args.recover_from}: {exc}",
                  file=sys.stderr)
            return 2
        journal_at = args.recover_from
        if args.journal and args.journal != args.recover_from:
            try:
                eng.journal.rebase(args.journal)
            except OSError as exc:
                print(f"cannot continue the journal at {args.journal}: "
                      f"{exc}", file=sys.stderr)
                eng.close()
                return 2
            journal_at = args.journal
        print(f"recovered from {args.recover_from}: epoch {eng.epoch}, "
              f"{eng.graph.num_edges} edges; journal continues at "
              f"{journal_at}", file=sys.stderr)
    else:
        eng = Engine(DynamicGraph(initial), cfg)
    with eng:
        if args.readers:
            qp_stats = _drive_with_readers(eng, trace, args)
        else:
            qp_stats = None
            _drive_trace(eng, trace)
        eng.flush()
        if args.check:
            eng.check()
        metrics = eng.metrics()
    if qp_stats is not None:
        metrics["queryplane"] = qp_stats
    if ingest is not None:
        metrics["ingest"] = ingest

    if args.json:
        print(json.dumps(metrics, indent=2, default=repr))
    else:
        print(f"source: {source}  initial edges: {len(initial)}  "
              f"trace ops: {len(trace)}")
        if ingest is not None:
            print(f"ingest: kept {ingest['kept']}  "
                  f"malformed {ingest['malformed']}  "
                  f"self-loops {ingest['self_loops']}")
        if qp_stats is not None:
            print(f"queryplane: readers {qp_stats['readers']}  "
                  f"wait-free reads {qp_stats['wait_free_reads']} "
                  f"(mix {qp_stats['read_mix']:g}, counter "
                  f"{qp_stats['reads_total']})")
        print(render_service_metrics(metrics))
    return 0 if _accounting_ok(metrics) else 1


def _drive_trace(target, trace) -> None:
    """Feed one workload trace into an Engine or ReplicaSet."""
    for item in trace:
        if item[0] == "query":
            target.query(item[1], *item[2])
        elif item[0] == "insert":
            target.insert(item[1], item[2])
        else:
            target.remove(item[1], item[2])


def _drive_with_readers(eng, trace, args):
    """The ``--readers N`` serving path (docs/queryplane.md).

    Updates go to the engine as usual; ``--read-mix`` of the queries are
    answered by the reader pool from the shared-memory snapshot (the
    rest take the classic in-engine path).  The pool's read counter is
    bound back into the batcher so ``query_pressure`` cuts keep firing
    even when reads never enter the engine loop.
    """
    import random as _random

    from repro.service.queryplane import ReaderPool

    publisher = eng.enable_queryplane()
    rng = _random.Random(args.seed ^ 0x51CA)
    wait_free = 0
    try:
        with ReaderPool(publisher.ctrl_name, readers=args.readers) as pool:
            eng.bind_read_counter(pool.reads_total)
            for item in trace:
                if item[0] == "query":
                    if rng.random() < args.read_mix:
                        pool.query(item[1], *item[2])
                        wait_free += 1
                    else:
                        eng.query(item[1], *item[2])
                elif item[0] == "insert":
                    eng.insert(item[1], item[2])
                else:
                    eng.remove(item[1], item[2])
            stats = {
                "readers": args.readers,
                "read_mix": args.read_mix,
                "wait_free_reads": wait_free,
                "reads_total": pool.reads_total(),
                "per_reader": pool.counters(),
            }
            eng.flush()  # fold the final read-counter delta
    finally:
        eng.bind_read_counter(None)
        publisher.close()
    return stats


def _accounting_ok(metrics) -> bool:
    c = metrics["counters"]
    ok = (
        c["admitted"]
        == c["committed"] + c["quarantined"] + c["timed_out"] + c["abandoned"]
        and c["in_flight"] == 0
    )
    if not ok:
        print("accounting invariant VIOLATED", file=sys.stderr)
    return ok


def _serve_trace(args, cfg) -> int:
    """The ``--trace PATH`` serving path (docs/traffic.md): replay a
    timed-operation trace through the engine and report SLO attainment
    next to the usual metrics surface."""
    import dataclasses

    from repro.traffic import Trace, replay

    try:
        trace = Trace.load(args.trace).materialized()
    except (OSError, ValueError) as exc:
        print(f"cannot replay trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    header = trace.header
    if args.trace_mode == "engine":
        cfg = dataclasses.replace(cfg, window=header.window)
    if args.shards > 1:
        from repro.service.sharding import ShardedEngine

        eng = ShardedEngine(DynamicGraph(), cfg)
    else:
        eng = Engine(DynamicGraph(), cfg)
    with eng:
        rep = replay(eng, trace, mode=args.trace_mode,
                     slo=({"update": None, "query": None}
                          if args.check_boundaries else None),
                     check_boundaries=args.check_boundaries)
        metrics = rep.metrics

    if args.json:
        print(json.dumps(rep.as_dict(), indent=2, default=repr))
    else:
        print(f"source: {args.trace}  shape: {header.shape}  "
              f"records: {header.ops}  window: {header.window:g}  "
              f"mode: {args.trace_mode}"
              + (f"  shards: {cfg.shards}" if args.shards > 1 else ""))
        print(f"trace sha256 {rep.trace_digest[:16]}  "
              f"cores sha256 {rep.cores_digest[:16]}"
              + (f"  journal sha256 {rep.journal_digest[:16]}"
                 if rep.journal_digest else ""))
        for cls, s in sorted(rep.slo.items()):
            lat = s["latency"]
            print(f"{cls}: n={s['count']} hit-rate {s['hit_rate']:.3f} "
                  f"(budget {s['budget']})  p50={lat['p50']:.0f} "
                  f"p99={lat['p99']:.0f}  late={s['late']} "
                  f"rejected={s['rejected']} timed_out={s['timed_out']} "
                  f"abandoned={s['abandoned']}")
        if rep.expiry and args.trace_mode == "model":
            print(f"expiry: {rep.expiry}")
        if rep.boundaries:
            bad = [b for b in rep.boundaries if not b["ok"]]
            print(f"boundaries: {len(rep.boundaries)} checked, "
                  f"{len(bad)} mismatched")
        if "router" in metrics:
            print("router:")
            print(render_service_metrics(metrics["router"]))
        else:
            print(render_service_metrics(metrics))
    ok = rep.invariant_ok and rep.boundaries_ok
    if not ok:
        print("trace replay FAILED "
              f"(invariant={rep.invariant_ok} "
              f"boundaries={rep.boundaries_ok})", file=sys.stderr)
    return 0 if ok else 1


def _serve_sharded(args, cfg, initial, trace, source, ingest) -> int:
    """The ``--shards N`` serving path: router + N engine shards."""
    from repro.service.sharding import ShardedEngine

    if args.recover_from:
        try:
            eng = ShardedEngine.from_journals(args.recover_from, cfg)
        except (OSError, ValueError) as exc:
            print(f"cannot recover from {args.recover_from}.shard*: {exc}",
                  file=sys.stderr)
            return 2
        resolved = sum(1 for r in eng.resolutions if r.committed)
        aborted = sum(1 for r in eng.resolutions if not r.committed)
        print(f"recovered {cfg.shards} shards from {args.recover_from}: "
              f"epoch {eng.epoch}; resolution pass committed {resolved}, "
              f"aborted {aborted} dangling prepare(s)", file=sys.stderr)
    else:
        eng = ShardedEngine(DynamicGraph(initial), cfg)
    with eng:
        _drive_trace(eng, trace)
        eng.flush()
        if args.check:
            eng.check()
        metrics = eng.metrics()
    if ingest is not None:
        metrics["ingest"] = ingest
    if args.json:
        print(json.dumps(metrics, indent=2, default=repr))
    else:
        print(f"source: {source}  initial edges: {len(initial)}  "
              f"trace ops: {len(trace)}  shards: {cfg.shards}  "
              f"backend: {cfg.backend}")
        if ingest is not None:
            print(f"ingest: kept {ingest['kept']}  "
                  f"malformed {ingest['malformed']}  "
                  f"self-loops {ingest['self_loops']}")
        for i, sm in enumerate(metrics["shards"]):
            c = sm["counters"]
            print(f"shard {i}: epoch {sm['epoch']}  "
                  f"admitted {c['admitted']}  committed {c['committed']}  "
                  f"quarantined {c['quarantined']}")
        print("router:")
        print(render_service_metrics(metrics["router"]))
    ok = _accounting_ok(metrics["router"])
    for sm in metrics["shards"]:
        ok = _accounting_ok(sm) and ok
    return 0 if ok else 1


def _serve_replicated(args, cfg, initial, trace, source, ingest) -> int:
    """The ``--replicas N`` serving path: primary + followers + failover."""
    from repro.bench.reporting import render_replication
    from repro.replication import ReplicaSet

    primary_faults = None
    if args.primary_crash_rate:
        from repro.faults.plane import FaultSpec

        primary_faults = FaultSpec(
            crash_rate=args.primary_crash_rate,
            max_crashes=args.primary_crashes or None,
        )
    with ReplicaSet(
        DynamicGraph(initial),
        cfg,
        replicas=args.replicas,
        ship_lag=args.ship_lag,
        ship_batch=args.ship_batch or None,
        primary_faults=primary_faults,
        promote_on_crash=args.promote_on_crash,
    ) as rs:
        _drive_trace(rs, trace)
        rs.flush()
        repl = rs.metrics()
        if rs.primary is None:
            print("primary died and no follower was promoted "
                  "(pass --promote-on-crash)", file=sys.stderr)
            if args.json:
                print(json.dumps({"replication": repl}, indent=2,
                                 default=repr))
            else:
                print(render_replication(repl))
            return 1
        if args.check:
            rs.check()
        metrics = rs.primary.metrics()
        metrics["replication"] = repl
    if ingest is not None:
        metrics["ingest"] = ingest
    if args.json:
        print(json.dumps(metrics, indent=2, default=repr))
    else:
        print(f"source: {source}  initial edges: {len(initial)}  "
              f"trace ops: {len(trace)}  replicas: {args.replicas}")
        if ingest is not None:
            print(f"ingest: kept {ingest['kept']}  "
                  f"malformed {ingest['malformed']}  "
                  f"self-loops {ingest['self_loops']}")
        print(render_replication(metrics["replication"]))
        print(render_service_metrics(metrics))
    return 0 if _accounting_ok(metrics) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
