"""Write-ahead edge journal + checkpoint/replay for the serving engine.

The engine's durability story (``docs/faults.md``) is the classic
WAL + checkpoint pair, scaled down to the reproduction's simulated
serving plane:

* every micro-batch writes an **intent** record *before* touching the
  maintainer, and a **commit** record only after the batch applied and
  its epoch was published to the snapshot store;
* an intent with no matching commit is an *aborted attempt* — the batch
  crashed mid-application (``BatchCrashed`` / a simulated deadlock) and
  its partial effects were discarded — so replay skips it;
* a periodic **checkpoint** record stores the committed graph, its core
  numbers and the *full OM order* so recovery can rebuild the
  maintainer bit-identically via
  :meth:`~repro.parallel.batch.ParallelOrderMaintainer.from_checkpoint`
  without replaying history from the initial graph;
* a **promote** record marks a replication failover: the journal up to
  that point is the committed prefix a follower replayed before taking
  over as the new primary (:mod:`repro.replication`,
  ``docs/replication.md``);
* **prepare** / **commit2** / **abort2** records carry the two-shard
  commit protocol for cross-shard edges (:mod:`repro.service.sharding`,
  ``docs/sharding.md``): a prepare is a yes-vote holding full redo
  information, the coordinator's commit2 is the decision, and a prepare
  resolved by neither is *dangling* — the router's recovery resolution
  pass commits it iff any shard holds a commit2 for the same
  transaction, else aborts it on every participant (presumed abort).

Records are canonical JSON lines (sorted keys, no whitespace), which
makes the journal *byte-comparable*: two runs with the same seed and the
same request stream produce identical journals (the determinism
regression test), and :meth:`EdgeJournal.digest` is a stable fingerprint.

The journal is in-memory by default; give it a ``path`` to also append
each record to a file (one JSON object per line, flushed per record).
:meth:`EdgeJournal.load` reads such a file back for a post-restart
:meth:`Engine.from_journal <repro.service.engine.Engine.from_journal>`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.graph.core import canonical_edge

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["EdgeJournal", "Replay", "CommittedBatch", "Checkpoint",
           "PreparedTx"]

#: record types, in the order they may legally appear
REC_INIT = "init"
REC_INTENT = "intent"
REC_COMMIT = "commit"
REC_CHECKPOINT = "checkpoint"
#: a follower took over as primary at this point (``docs/replication.md``);
#: written by :meth:`repro.replication.ReplicaSet.promote` at the head of
#: each new primary generation's journal continuation
REC_PROMOTE = "promote"
#: cross-shard two-phase commit (``docs/sharding.md``): a shard voted yes
#: on a cross-shard edge transaction and holds its redo information
REC_PREPARE = "prepare"
#: the cross-shard transaction applied on this shard at ``epoch`` — the
#: first ``commit2`` written anywhere (the coordinator's) is the decision
REC_COMMIT2 = "commit2"
#: the cross-shard transaction was abandoned; the prepare above it is void
REC_ABORT2 = "abort2"

_KINDS = (REC_INIT, REC_INTENT, REC_COMMIT, REC_CHECKPOINT, REC_PROMOTE,
          REC_PREPARE, REC_COMMIT2, REC_ABORT2)


def _canon(record: Dict) -> str:
    """One canonical JSON line (sorted keys, minimal separators)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _edges_out(edges: Sequence[Edge]) -> List[List[Vertex]]:
    return [[u, v] for u, v in edges]


def _edges_in(edges: Sequence[Sequence[Vertex]]) -> Tuple[Edge, ...]:
    return tuple((u, v) for u, v in edges)


@dataclass(frozen=True)
class CommittedBatch:
    """One durably committed micro-batch, as reconstructed by replay."""

    kind: str               #: ``"+"`` (insert) or ``"-"`` (remove)
    edges: Tuple[Edge, ...]
    ids: Tuple[str, ...]    #: request ids the batch carried
    epoch: int              #: epoch it committed as
    attempt: int = 0        #: 0 = first try; >0 = committed after retries


@dataclass(frozen=True)
class PreparedTx:
    """A cross-shard transaction this shard voted yes on (``prepare``
    record).  Carries everything needed to *redo* the local apply if the
    router decides commit during recovery (``docs/sharding.md``)."""

    tx: str                 #: router-global transaction id
    kind: str               #: ``"+"`` or ``"-"``
    edge: Edge
    id: str                 #: the originating request id
    shard: int              #: the shard this journal belongs to
    peer: int               #: the other participant shard
    #: ``"apply"`` — this shard is the edge's coordinator and runs order
    #: maintenance on it; ``"track"`` — this shard is the peer owner and
    #: only records the edge in its foreign adjacency (durability +
    #: stitch adjacency, no maintainer work; see ``docs/sharding.md``)
    role: str = "apply"


@dataclass(frozen=True)
class Checkpoint:
    """A full engine snapshot: graph + cores + the exact OM order."""

    epoch: int
    edges: Tuple[Edge, ...]
    cores: Tuple[Tuple[Vertex, int], ...]
    order: Tuple[Vertex, ...]
    #: cross-shard edges this shard tracks but does not maintain
    #: (peer-owner replicas; empty for monolithic engines)
    foreign: Tuple[Edge, ...] = ()


@dataclass
class Replay:
    """Everything recovery needs, distilled from the record stream."""

    initial_edges: Tuple[Edge, ...] = ()
    committed: List[CommittedBatch] = field(default_factory=list)
    checkpoint: Optional[Checkpoint] = None
    #: every request id named by any intent (also aborted ones) — used to
    #: restore duplicate-id detection across a restart
    ids: Set[str] = field(default_factory=set)
    #: intents that were superseded or never committed (crashed attempts)
    aborted_intents: int = 0
    last_epoch: int = 0
    #: how many failovers this journal has lived through (promote records)
    promotions: int = 0
    #: primary generation: 0 for the original primary, bumped per promote
    generation: int = 0
    #: cross-shard transactions still *dangling* at the end of the journal
    #: (prepare without a commit2/abort2) — the router's recovery
    #: resolution pass decides their fate (``docs/sharding.md``)
    prepared: Dict[str, PreparedTx] = field(default_factory=dict)
    #: cross-shard transactions that applied locally (commit2 records)
    commit2: Set[str] = field(default_factory=set)
    #: cross-shard transactions abandoned locally (abort2 records)
    abort2: Set[str] = field(default_factory=set)
    #: the running foreign-adjacency set (peer-owner replicas of cross
    #: edges, ``role == "track"``) as of the end of the journal
    foreign: Set[Edge] = field(default_factory=set)

    def batches_after(self, epoch: int) -> List[CommittedBatch]:
        """Committed batches strictly after ``epoch``, in commit order."""
        return [b for b in self.committed if b.epoch > epoch]


class EdgeJournal:
    """Append-only, canonical-JSONL write-ahead log.

    Parameters
    ----------
    path:
        ``None`` (default) keeps the journal purely in memory.  A path
        additionally appends every record to that file, flushed per
        record, so a crashed *process* can be restarted with
        :meth:`load` + ``Engine.from_journal``.  A fresh journal
        truncates an existing file (it is a new engine lifetime); use
        :meth:`load` to continue one.
    """

    def __init__(self, path: Optional[str] = None, _truncate: bool = True) -> None:
        self.path = path
        self.records: List[Dict] = []
        self._fh = None
        if path is not None:
            self._fh = open(path, "w" if _truncate else "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Dict) -> None:
        """Append one record (validated, canonicalized, flushed)."""
        t = record.get("t")
        if t not in _KINDS:
            raise ValueError(f"unknown journal record type {t!r}")
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(_canon(record) + "\n")
            self._fh.flush()

    def log_init(self, edges: Sequence[Edge],
                 foreign: Sequence[Edge] = ()) -> None:
        """Record the engine's birth graph (epoch 0).  ``foreign`` is the
        birth foreign-adjacency set of a peer-owner shard (cross edges it
        tracks without maintaining); omitted when empty so monolithic
        journals keep their historical byte shape."""
        rec = {"t": REC_INIT, "edges": _edges_out(edges),
               "foreign": _edges_out(foreign)}
        if not foreign:
            del rec["foreign"]
        self.append(rec)

    def log_intent(self, kind: str, edges: Sequence[Edge],
                   ids: Sequence[str], attempt: int = 0) -> None:
        """Write-ahead: about to apply this batch (attempt N)."""
        self.append({
            "t": REC_INTENT, "kind": kind, "edges": _edges_out(edges),
            "ids": list(ids), "attempt": attempt,
        })

    def log_commit(self, epoch: int) -> None:
        """The immediately preceding intent applied and published."""
        self.append({"t": REC_COMMIT, "epoch": epoch})

    def log_checkpoint(self, epoch: int, edges: Sequence[Edge],
                       cores: Dict[Vertex, int],
                       order: Sequence[Vertex],
                       foreign: Sequence[Edge] = ()) -> None:
        """Durable snapshot: graph + cores + full OM order at ``epoch``.

        ``cores`` is stored as a list of pairs ordered by ``order`` so the
        record is canonical without requiring sortable vertex ids.
        ``foreign`` snapshots a shard's foreign adjacency (omitted when
        empty) — without it, recovery from the checkpoint fast-path
        would lose peer-owner replicas committed before the checkpoint.
        """
        rec = {
            "t": REC_CHECKPOINT, "epoch": epoch,
            "edges": _edges_out(edges),
            "cores": [[u, cores[u]] for u in order],
            "order": list(order),
            "foreign": _edges_out(foreign),
        }
        if not foreign:
            del rec["foreign"]
        self.append(rec)

    def log_promote(self, epoch: int, records: int, generation: int,
                    replica: int) -> None:
        """A follower was promoted to primary: it replayed ``records``
        records of the dead primary's journal, its last committed epoch
        was ``epoch``, and it starts generation ``generation``
        (``docs/replication.md``)."""
        self.append({
            "t": REC_PROMOTE, "epoch": epoch, "records": records,
            "generation": generation, "replica": replica,
        })

    def log_prepare(self, tx: str, kind: str, edge: Edge, id: str,
                    shard: int, peer: int, role: str = "apply") -> None:
        """Cross-shard write-ahead: this shard votes yes on transaction
        ``tx`` (a single ``kind`` op on the cross-shard ``edge``) and can
        redo the apply from this record alone (``docs/sharding.md``).
        ``role`` records which side of the edge this shard holds:
        ``"apply"`` (coordinator, runs order maintenance) or ``"track"``
        (peer owner, foreign adjacency only)."""
        u, v = edge
        self.append({
            "t": REC_PREPARE, "tx": tx, "kind": kind, "edge": [u, v],
            "id": id, "shard": shard, "peer": peer, "role": role,
        })

    def log_commit2(self, tx: str, epoch: int) -> None:
        """The prepared cross-shard transaction ``tx`` applied locally
        and published as ``epoch``.  The coordinator's commit2 is the
        protocol's decision record: once it is durable anywhere, every
        participant must (re)do its apply."""
        self.append({"t": REC_COMMIT2, "tx": tx, "epoch": epoch})

    def log_abort2(self, tx: str) -> None:
        """The prepared cross-shard transaction ``tx`` was abandoned:
        no shard wrote a commit2, so its prepare is void everywhere."""
        self.append({"t": REC_ABORT2, "tx": tx})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def rebase(self, path: str) -> None:
        """Move the journal to ``path``: write every record already held
        to the new file, then keep appending there.  Used by
        ``repro-serve --recover-from OLD --journal NEW`` so a recovered
        engine stays durable in a *fresh* file instead of silently
        dropping the ``--journal`` request."""
        fh = open(path, "w", encoding="utf-8")
        for rec in self.records:
            fh.write(_canon(rec) + "\n")
        fh.flush()
        self.close()
        self.path = path
        self._fh = fh

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "EdgeJournal":
        """Read a journal file back; further appends continue the file."""
        j = cls(path=None)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    j.records.append(json.loads(line))
        j.path = path
        j._fh = open(path, "a", encoding="utf-8")
        return j

    @classmethod
    def from_bytes(cls, data: bytes) -> "EdgeJournal":
        """Rehydrate an in-memory journal from :meth:`to_bytes` output."""
        j = cls(path=None)
        for line in data.decode("utf-8").splitlines():
            if line:
                j.records.append(json.loads(line))
        return j

    def to_bytes(self) -> bytes:
        """The canonical byte serialization (JSONL, sorted keys)."""
        return "".join(_canon(r) + "\n" for r in self.records).encode("utf-8")

    def prefix_bytes(self, records: int) -> bytes:
        """Canonical bytes of the first ``records`` records — what a
        follower that has received that many records holds locally, and
        what promotion verifies against ``Engine.from_journal``."""
        return "".join(
            _canon(r) + "\n" for r in self.records[:records]
        ).encode("utf-8")

    def committed_prefix_len(self) -> int:
        """Number of leading records up to and including the last record
        that is *not* a dangling intent — i.e. the longest prefix whose
        replay loses no committed batch.  A trailing intent (a batch the
        primary died mid-applying) is excluded: its effects were never
        acknowledged, so failover may drop it."""
        n = len(self.records)
        while n > 0 and self.records[n - 1].get("t") == REC_INTENT:
            n -= 1
        return n

    def digest(self) -> str:
        """sha256 fingerprint of :meth:`to_bytes` — the determinism
        regression tests compare this across same-seed runs."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self) -> Replay:
        """Distill the record stream into recovery state.

        Intent-without-commit (trailing, or superseded by a retry's
        intent) is an aborted attempt: its effects were rolled back by
        rebuilding the maintainer, so replay ignores it beyond counting.
        """
        out = Replay()
        pending: Optional[Dict] = None
        for rec in self.records:
            t = rec["t"]
            if t == REC_INIT:
                out.initial_edges = _edges_in(rec["edges"])
                out.foreign = {canonical_edge(u, v)
                               for u, v in rec.get("foreign", ())}
            elif t == REC_INTENT:
                if pending is not None:
                    out.aborted_intents += 1
                out.ids.update(rec["ids"])
                pending = rec
            elif t == REC_COMMIT:
                if pending is None:
                    raise ValueError(
                        f"commit for epoch {rec['epoch']} without an intent"
                    )
                out.committed.append(CommittedBatch(
                    kind=pending["kind"],
                    edges=_edges_in(pending["edges"]),
                    ids=tuple(pending["ids"]),
                    epoch=rec["epoch"],
                    attempt=pending.get("attempt", 0),
                ))
                out.last_epoch = rec["epoch"]
                pending = None
            elif t == REC_CHECKPOINT:
                out.checkpoint = Checkpoint(
                    epoch=rec["epoch"],
                    edges=_edges_in(rec["edges"]),
                    cores=tuple((u, k) for u, k in rec["cores"]),
                    order=tuple(rec["order"]),
                    foreign=_edges_in(rec.get("foreign", ())),
                )
                out.foreign = {canonical_edge(u, v)
                               for u, v in rec.get("foreign", ())}
            elif t == REC_PREPARE:
                # cross-shard vote: independent of the local intent/commit
                # stream (a prepare can never interleave inside a local
                # batch — the engine's commit path is synchronous)
                tx = rec["tx"]
                u, v = rec["edge"]
                out.prepared[tx] = PreparedTx(
                    tx=tx, kind=rec["kind"], edge=(u, v), id=rec["id"],
                    shard=rec["shard"], peer=rec["peer"],
                    role=rec.get("role", "apply"),
                )
                out.ids.add(rec["id"])
            elif t == REC_COMMIT2:
                tx = rec["tx"]
                prep = out.prepared.pop(tx, None)
                if prep is None:
                    raise ValueError(
                        f"commit2 for transaction {tx!r} without a prepare"
                    )
                if prep.role == "track":
                    # peer-owner replica: update the foreign adjacency,
                    # no maintainer batch to fold (the coordinator's
                    # journal owns the apply)
                    e = canonical_edge(*prep.edge)
                    if prep.kind == "+":
                        out.foreign.add(e)
                    else:
                        out.foreign.discard(e)
                    out.commit2.add(tx)
                    continue
                # a cross-shard *group* applies as one maintainer batch
                # and publishes one epoch, then writes one commit2 per
                # transaction with that shared epoch — fold those runs
                # back into a single CommittedBatch so restart replays
                # the same batches (and epoch sequence) the live engine
                # committed
                last = out.committed[-1] if out.committed else None
                if (last is not None and last.epoch == rec["epoch"]
                        and last.kind == prep.kind):
                    out.committed[-1] = CommittedBatch(
                        kind=last.kind, edges=last.edges + (prep.edge,),
                        ids=last.ids + (prep.id,), epoch=last.epoch,
                    )
                else:
                    out.committed.append(CommittedBatch(
                        kind=prep.kind, edges=(prep.edge,), ids=(prep.id,),
                        epoch=rec["epoch"],
                    ))
                out.last_epoch = rec["epoch"]
                out.commit2.add(tx)
            elif t == REC_ABORT2:
                tx = rec["tx"]
                if out.prepared.pop(tx, None) is None:
                    raise ValueError(
                        f"abort2 for transaction {tx!r} without a prepare"
                    )
                out.abort2.add(tx)
            elif t == REC_PROMOTE:
                # failover marker: a dangling intent left by the dead
                # primary (had there been one) was truncated before the
                # promote record was written, so ``pending`` is clear
                if pending is not None:
                    raise ValueError(
                        f"promote record at generation {rec['generation']} "
                        "follows an unresolved intent — the failover "
                        "truncation was skipped"
                    )
                out.promotions += 1
                out.generation = rec["generation"]
        if pending is not None:
            out.aborted_intents += 1
        return out

    def final_edges(self) -> List[Edge]:
        """The committed edge set at the end of the journal (sorted) —
        the differential tests' ground truth for the recovered graph."""
        replay = self.replay()
        present: Set[Edge] = set()
        for u, v in replay.initial_edges:
            present.add(canonical_edge(u, v))
        for b in replay.committed:
            for u, v in b.edges:
                e = canonical_edge(u, v)
                if b.kind == "+":
                    present.add(e)
                else:
                    present.discard(e)
        return sorted(present, key=repr)
