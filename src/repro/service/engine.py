"""The streaming core-maintenance engine.

:class:`Engine` turns the batch library into a serving system: it accepts
an interleaved stream of ``insert`` / ``remove`` / ``query`` requests
(with per-request ids and deadlines) and keeps three promises:

1. **Homogeneous micro-batches.**  Updates accumulate in an adaptive
   micro-batcher (:mod:`repro.service.batcher`) and are applied through
   :class:`~repro.parallel.batch.ParallelOrderMaintainer` — the paper's
   OurI/OurR — when a cut policy fires (size, elapsed simulated time,
   query pressure, a kind conflict, or an explicit flush).

2. **Snapshot-isolated reads.**  Queries never touch the live maintainer
   state: they answer against the last committed epoch through
   :class:`~repro.service.snapshots.SnapshotStore`, so a read issued
   while a batch is pending returns the previous epoch's values in
   bounded time — it can never block on, or observe, an in-flight batch.

3. **No escaping exceptions.**  Admission control bounds the ingress
   queue (backpressure → ``rejected``), malformed or duplicate requests
   are quarantined with structured errors, and per-request deadlines
   produce ``timed_out`` responses — a partial-failure report per batch —
   instead of raising.

Time is simulated (work units, see :mod:`repro.parallel.costs`): the
engine clock advances by a small ingest/query cost per request and by
each batch's simulated makespan at commit, which is what makes latency
percentiles and deadline semantics deterministic and testable.

>>> from repro.graph.dynamic_graph import DynamicGraph
>>> from repro.service import Engine
>>> eng = Engine(DynamicGraph([(0, 1), (1, 2), (0, 2)]))
>>> eng.query("core", 0).value
2
>>> eng.insert(0, 3).status
'pending'
>>> eng.query("core", 3).value is None   # snapshot: not committed yet
True
>>> _ = eng.flush()
>>> eng.query("core", 3).value
1
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import (
    Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple,
)

from repro.faults.plane import BatchCrashed, as_plane
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.batch import (
    BatchResult,
    ParallelOrderMaintainer,
    validate_batch,
)
from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimDeadlockError
from repro.service.batcher import (
    CANCEL,
    COALESCE,
    CONFLICT,
    AdaptiveBatcher,
)
from repro.service.journal import EdgeJournal, PreparedTx, Replay
from repro.service.metrics import ServiceMetrics
from repro.service.requests import (
    E_BACKPRESSURE,
    E_BAD_REQUEST,
    E_BATCH_FAILED,
    E_DEADLINE,
    E_DUPLICATE_ID,
    E_EDGE_EXISTS,
    E_EDGE_MISSING,
    E_RETRIES_EXHAUSTED,
    E_SELF_LOOP,
    E_UNKNOWN_QUERY,
    E_UNKNOWN_VERTEX,
    STATUS_ABANDONED,
    STATUS_COMMITTED,
    STATUS_PENDING,
    STATUS_QUARANTINED,
    STATUS_REJECTED,
    STATUS_TIMED_OUT,
    Request,
    Response,
    make_error,
)
from repro.service.snapshots import QUERY_KINDS, SnapshotStore, SnapshotView

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Engine", "EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Tunable knobs of the serving engine.

    Batching: ``max_batch`` / ``max_delay`` / ``query_pressure`` are the
    micro-batcher cut triggers (see :class:`AdaptiveBatcher`).  Admission:
    ``max_pending`` bounds the ingress queue — an update arriving while
    that many operations are pending is rejected (backpressure);
    ``None`` disables the bound.  Costs: ``ingest_cost`` / ``query_cost``
    advance the simulated clock per request.

    Faults & durability (``docs/faults.md``): ``faults`` arms a seeded
    :class:`~repro.faults.FaultSpec` / :class:`~repro.faults.FaultPlane`
    against every batch; ``journal_path`` additionally persists the
    write-ahead journal to a file; ``checkpoint_every`` writes a full
    graph+cores+order checkpoint record every N epochs; a crashed batch
    is retried up to ``max_retries`` times after recovery, each retry
    preceded by a simulated ``retry_backoff * 2**(attempt-1)`` delay.

    The remaining fields are forwarded to
    :class:`ParallelOrderMaintainer`.
    """

    max_batch: int = 512
    max_delay: Optional[float] = None
    query_pressure: Optional[int] = None
    max_pending: Optional[int] = None
    ingest_cost: float = 1.0
    query_cost: float = 5.0
    num_workers: int = 4
    #: how the batch loop executes: ``"sim"`` (simulated machine),
    #: ``"thread"`` (real threads), or ``"process"`` (shard workers in
    #: real OS processes — requires the sharded engine,
    #: :mod:`repro.service.sharding`)
    backend: str = "sim"
    #: number of engine shards (1 = the classic monolithic engine;
    #: >1 routes through :class:`~repro.service.sharding.ShardedEngine`)
    shards: int = 1
    #: group-commit size of the router's cross-shard 2PC buffer — how
    #: many cross edges are committed per grouped prepare/commit round
    #: (None = ``4 * max_batch``; the distributed commit amortizes its
    #: per-round cost over a larger run than the in-engine micro-batch)
    cross_group: Optional[int] = None
    costs: Optional[CostModel] = None
    schedule: str = "min-clock"
    seed: int = 0
    #: batch scheduling policy name or instance
    #: (:data:`repro.parallel.scheduling.POLICIES`)
    policy: Any = "fifo"
    snapshot_cache: int = 8
    #: fault-injection plane (None = no injection, the default)
    faults: Any = None
    #: persist the write-ahead journal to this file (None = in-memory)
    journal_path: Optional[str] = None
    #: checkpoint cadence in epochs (None = never checkpoint)
    checkpoint_every: Optional[int] = None
    #: crashed-batch retries before the batch is abandoned
    max_retries: int = 3
    #: simulated backoff before retry N is 2^(N-1) times this
    retry_backoff: float = 64.0
    #: sliding-window retention in *event-clock* units (``docs/traffic.md``):
    #: every committed insert arms a deterministic expiry remove at
    #: ``arrival + window``, fired by :meth:`Engine.advance_to` through
    #: the normal admission path.  ``None`` (the default) disables the
    #: window plane entirely.
    window: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be >= 1 or None")
        if self.ingest_cost < 0 or self.query_cost < 0:
            raise ValueError("costs must be non-negative")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.backend not in ("sim", "thread", "process"):
            raise ValueError(
                f"unknown backend {self.backend!r} "
                "(use 'sim', 'thread' or 'process')"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.cross_group is not None and self.cross_group < 1:
            raise ValueError("cross_group must be >= 1 or None")
        if self.window is not None and self.window <= 0:
            raise ValueError("window must be > 0 or None")


@dataclass
class _Tracked:
    """A pending update request attached to a queued edge."""

    request: Request
    admitted_at: float


class Engine:
    """Streaming core-maintenance engine.  See module docstring.

    Parameters
    ----------
    graph:
        Initial committed graph (epoch 0).  Ownership transfers to the
        maintainer.
    config:
        An :class:`EngineConfig`; keyword overrides are applied on top,
        so ``Engine(g, max_batch=64)`` works too.
    journal:
        An :class:`EdgeJournal` to adopt (continue appending to) instead
        of opening a fresh one — the :meth:`from_journal` restart path.
        Default: a new journal (at ``config.journal_path`` if set) whose
        first record is the initial graph.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        config: Optional[EngineConfig] = None,
        *,
        journal: Optional[EdgeJournal] = None,
        _maintainer: Optional[ParallelOrderMaintainer] = None,
        _epoch0: int = 0,
        foreign: Sequence[Edge] = (),
        **overrides,
    ) -> None:
        cfg = config or EngineConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        self.config = cfg
        # The engine owns the plane (not the maintainer): its per-run
        # counter must survive maintainer rebuilds during recovery, or
        # the fault schedule would restart and re-kill every retry.
        self.faults = as_plane(cfg.faults, seed=cfg.seed)
        if _maintainer is not None:
            self.maintainer = _maintainer
            self.maintainer.faults = self.faults
        else:
            self.maintainer = self._maintainer_cls(cfg)(
                graph,
                num_workers=cfg.num_workers,
                costs=cfg.costs,
                schedule=cfg.schedule,
                seed=cfg.seed,
                policy=cfg.policy,
                faults=self.faults,
            )
        self.snapshots = SnapshotStore(
            self.maintainer, cache_epochs=cfg.snapshot_cache, epoch0=_epoch0
        )
        #: cross-shard edges this engine co-owns but does NOT maintain:
        #: the coordinator shard (owner of the canonical first endpoint)
        #: applies them to its order maintainer; this engine only tracks
        #: them for validation and adjacency stitching.
        self._foreign: set = {canonical_edge(*e) for e in foreign}
        if journal is not None:
            self.journal = journal
        else:
            self.journal = EdgeJournal(cfg.journal_path)
            self.journal.log_init(
                self._graph_edges(),
                foreign=sorted(self._foreign, key=repr),
            )
        self.batcher = AdaptiveBatcher(
            max_batch=cfg.max_batch,
            max_delay=cfg.max_delay,
            query_pressure=cfg.query_pressure,
        )
        self.metrics_collector = ServiceMetrics(ingress_capacity=cfg.max_pending)
        self.now: float = 0.0
        #: event (arrival) clock — advanced only by :meth:`advance_to`.
        #: Distinct from the *service* clock ``now`` (which also counts
        #: ingest/query costs and batch makespans, and therefore differs
        #: across backends): expiry due-times live on the event clock so
        #: a trace replays to the same windowed graph on every backend.
        self.event_now: float = 0.0
        # sliding-window expiry plane (config.window): a due-time heap
        # over committed-present edges.  _expiry_due is the authority —
        # a heap entry whose due-time disagrees with it is stale (the
        # edge was re-armed or disarmed) and is skipped on pop.
        self._expiry_heap: List[Tuple[float, int, Edge]] = []
        self._expiry_due: Dict[Edge, float] = {}
        self._arrival: Dict[Edge, float] = {}
        self._expiry_push = 0  # heap tiebreak: edges are never compared
        self._expiry_ids = 0
        self._seq = 0
        self._seen_ids: set = set()
        #: cross-shard transactions prepared but not yet decided (2PC)
        self._prepared: Dict[str, PreparedTx] = {}
        self._edge_reqs: Dict[Edge, List[_Tracked]] = {}
        self._completed: List[Response] = []
        self._batch_results: List[BatchResult] = []
        #: wait-free query plane (docs/queryplane.md): an
        #: EpochPublisher fed at every commit, plus the plane's shared
        #: read counter folded into the batcher's pressure trigger
        self._queryplane = None
        self._read_counter: Optional[Callable[[], int]] = None
        self._reads_seen = 0
        self._query_kinds: Dict[str, Callable[[SnapshotView, Tuple], Any]] = (
            dict(QUERY_KINDS)
        )

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The committed graph (pending operations not applied)."""
        return self.maintainer.graph

    @property
    def epoch(self) -> int:
        """The last committed epoch."""
        return self.snapshots.epoch

    def pending_ops(self) -> int:
        """Number of buffered, uncommitted update operations."""
        return len(self.batcher)

    def view(self, epoch: Optional[int] = None) -> SnapshotView:
        """A snapshot-isolated read view (default: latest committed)."""
        return self.snapshots.view(epoch)

    def core(self, u: Vertex) -> Optional[int]:
        """Committed-epoch core number of ``u``."""
        return self.view().core(u)

    def cores(self) -> Dict[Vertex, int]:
        """Committed-epoch core map."""
        return self.view().cores()

    def insert(self, u: Vertex, v: Vertex, *, id: Optional[str] = None,
               deadline: Optional[float] = None,
               timeout: Optional[float] = None) -> Response:
        """Submit an edge insertion (``timeout`` is relative to now)."""
        return self.submit(Request("insert", u=u, v=v, id=id,
                                   deadline=self._abs(deadline, timeout)))

    def remove(self, u: Vertex, v: Vertex, *, id: Optional[str] = None,
               deadline: Optional[float] = None,
               timeout: Optional[float] = None) -> Response:
        """Submit an edge removal."""
        return self.submit(Request("remove", u=u, v=v, id=id,
                                   deadline=self._abs(deadline, timeout)))

    def query(self, kind: str, *args, id: Optional[str] = None,
              deadline: Optional[float] = None,
              timeout: Optional[float] = None) -> Response:
        """Submit a snapshot query; the response carries the value and
        the epoch it was answered against."""
        return self.submit(Request("query", kind=kind, args=tuple(args), id=id,
                                   deadline=self._abs(deadline, timeout)))

    def submit(self, request: Request) -> Response:
        """Admit and process one request; never raises for bad input."""
        self._poll_external_reads()
        rid = self._assign_id(request)
        if rid is None:  # duplicate id
            return self._quarantine_direct(
                request, request.id, E_DUPLICATE_ID,
                f"request id {request.id!r} already seen",
            )
        if request.op == "query":
            return self._submit_query(request, rid)
        if request.op in ("insert", "remove"):
            return self._submit_update(request, rid)
        return self._quarantine_direct(
            request, rid, E_BAD_REQUEST, f"unknown op {request.op!r}"
        )

    def flush(self) -> List[Response]:
        """Force-cut the pending run and return every update response
        that became terminal since the last drain."""
        self._poll_external_reads()
        self._fire_due_expiries()
        self._cut("flush")
        return self.take_completed()

    # ------------------------------------------------------------------
    # sliding-window plane (docs/traffic.md)
    # ------------------------------------------------------------------
    def advance_to(self, t: float) -> None:
        """Advance the **event clock** to ``t`` (a trace arrival time).

        The service clock is dragged along when it lags (a quiet stream
        still ages the pending run), due window expiries fire as
        ``remove`` requests through the normal admission path — they
        compete with live traffic for admission and batching — and any
        time-based cut trigger that became due fires.  Monotonic:
        ``t`` below the current event clock is a no-op advance."""
        if t > self.event_now:
            self.event_now = t
        if t > self.now:
            self.now = t
        self._fire_due_expiries()
        reason = self.batcher.cut_reason(self.now)
        if reason is not None:
            self._cut(reason)

    def drain_window(self) -> List[Response]:
        """Flush until quiescent *at the current event clock*: no pending
        operations and no armed expiry that is already due.  Each round
        fires due expiries then force-cuts, so removes armed by a commit
        inside the round are caught by the next one."""
        out: List[Response] = []
        while True:
            out.extend(self.flush())
            if not self.pending_ops() and not self._has_due_expiry():
                return out

    def expiries_armed(self) -> int:
        """Number of committed-present edges with a scheduled expiry."""
        return len(self._expiry_due)

    def rearm_window(self, asof: Optional[float] = None) -> None:
        """(Re)arm an expiry for every committed edge at ``asof +
        window`` (default: the current event clock).  The restart path:
        the WAL does not journal the expiry schedule, so a restarted
        engine grants every surviving edge a fresh window from the
        restart point — deterministic, and documented in
        ``docs/traffic.md``."""
        if self.config.window is None:
            return
        t = self.event_now if asof is None else asof
        for e in self._graph_edges():
            self._arm_expiry(e, t + self.config.window)

    def _arm_expiry(self, e: Edge, due: float) -> None:
        self._expiry_due[e] = due
        self._expiry_push += 1
        heapq.heappush(self._expiry_heap, (due, self._expiry_push, e))
        self.metrics_collector.window["scheduled"] += 1

    def _has_due_expiry(self) -> bool:
        heap = self._expiry_heap
        while heap and self._expiry_due.get(heap[0][2]) != heap[0][0]:
            heapq.heappop(heap)  # prune stale entries
        return bool(heap) and heap[0][0] <= self.event_now

    def _fire_due_expiries(self) -> None:
        """Submit a ``remove`` for every armed edge whose due-time has
        passed on the event clock.  Expiry requests carry the reserved
        ``exp:`` id prefix and no deadline (retention is a correctness
        obligation, not a latency SLO).  A backpressure rejection does
        not lose the expiry: it is re-armed ``retry_backoff`` later and
        keeps competing for admission."""
        if self.config.window is None:
            return
        heap = self._expiry_heap
        while heap and heap[0][0] <= self.event_now:
            due, _, e = heapq.heappop(heap)
            if self._expiry_due.get(e) != due:
                continue  # stale: re-armed later or disarmed
            rid = f"exp:{self._expiry_ids}"
            self._expiry_ids += 1
            resp = self.submit(Request("remove", u=e[0], v=e[1], id=rid))
            if resp.status == STATUS_REJECTED:
                self.metrics_collector.window["rebuffered"] += 1
                self._arm_expiry(e, self.event_now + self.config.retry_backoff)
            else:
                self.metrics_collector.window["fired"] += 1

    def _note_commit_window(self, kind: str, batch: Sequence[Edge]) -> None:
        """Window bookkeeping at batch commit: a committed insert arms
        its expiry at ``arrival + window``; a committed remove (live or
        expiry) disarms the edge."""
        if self.config.window is None:
            return
        w = self.config.window
        if kind == "+":
            for e in batch:
                self._arm_expiry(e, self._arrival.pop(e, self.event_now) + w)
        else:
            for e in batch:
                self._expiry_due.pop(e, None)

    def _requeue_window(self, kind: str,
                        live: Dict[Edge, List[_Tracked]]) -> None:
        """Window bookkeeping for a batch that terminally *failed to
        apply* (quarantined re-validation, abandoned after retries).
        Inserts never committed: drop their arrival stamps.  For removes
        the edges stay present; any whose *fired expiry* died with the
        batch is re-armed a backoff later, so retention is eventually
        enforced even through an abandoned batch."""
        if self.config.window is None:
            return
        for e, trackers in live.items():
            if kind == "+":
                self._arrival.pop(e, None)
            elif any((tr.request.id or "").startswith("exp:")
                     for tr in trackers):
                self._arm_expiry(e, self.event_now + self.config.retry_backoff)

    # ------------------------------------------------------------------
    # wait-free query plane (docs/queryplane.md)
    # ------------------------------------------------------------------
    def enable_queryplane(self, publisher=None,
                          read_counter: Optional[Callable[[], int]] = None,
                          **kwargs):
        """Attach (or create) an epoch publisher and publish the current
        committed state.

        ``publisher`` lets a restarted engine rebind the buffers its
        predecessor served (:meth:`from_journal` recovery): the rebind
        re-publishes the full mirror at the restarted engine's epoch and
        ``min_epoch``, so readers pinned below a checkpoint-truncated
        epoch start getting structured refusals immediately.  ``kwargs``
        (``capacity``, ``vocab_capacity``) size a freshly created
        publisher.

        ``read_counter`` is a zero-arg callable polled on every submit
        and flush — normally
        :meth:`repro.service.queryplane.ReaderPool.reads_total` — whose
        *delta* feeds :meth:`AdaptiveBatcher.note_queries`, keeping
        ``query_pressure`` cuts firing although wait-free reads never
        enter the engine.

        The engine does **not** own the publisher: close it (and any
        reader pool) caller-side after :meth:`close`.
        """
        if publisher is None:
            from repro.service.queryplane import EpochPublisher

            publisher = EpochPublisher(**kwargs)
        self._queryplane = publisher
        if read_counter is not None:
            self.bind_read_counter(read_counter)
        self._publish_epoch(None)
        return publisher

    def bind_read_counter(
        self, read_counter: Optional[Callable[[], int]]
    ) -> None:
        """Start folding an external (query-plane) read counter into the
        batcher's pressure trigger.  The counter must be monotonic; the
        engine tracks the last value it folded.  Pass ``None`` to unbind
        (e.g. before the reader pool's counter segment is released)."""
        self._read_counter = read_counter
        self._reads_seen = read_counter() if read_counter is not None else 0

    def _poll_external_reads(self) -> None:
        if self._read_counter is None:
            return
        total = self._read_counter()
        delta = total - self._reads_seen
        if delta > 0:
            self._reads_seen = total
            self.batcher.note_queries(delta)

    def _publish_epoch(self, touched=None) -> None:
        """Publish the last committed epoch to the query plane (no-op
        without one).  ``touched`` bounds the mirror update; ``None``
        forces a full rewrite (first publish, rebind)."""
        if self._queryplane is None:
            return
        view = self.snapshots.view()
        self._queryplane.publish(
            view.epoch, self.snapshots.min_epoch, view.mapping, touched
        )

    def take_completed(self) -> List[Response]:
        """Drain the asynchronously-completed update responses."""
        out = self._completed
        self._completed = []
        return out

    def take_batch_results(self) -> List[BatchResult]:
        """Drain the per-batch :class:`BatchResult` reports (the
        compatibility surface ``StreamProcessor.flush`` returns)."""
        out = self._batch_results
        self._batch_results = []
        return out

    def metrics(self) -> Dict:
        """The full metrics surface as a plain dict."""
        return self.metrics_collector.as_dict(
            pending_depth=len(self.batcher), now=self.now, epoch=self.epoch,
            event_now=self.event_now, window_armed=self.expiries_armed(),
        )

    def check(self) -> None:
        """Flush, then assert maintainer, snapshot and accounting
        invariants."""
        self.flush()
        self.maintainer.check()
        self.snapshots.history.check()
        self.metrics_collector.assert_invariant()

    def close(self) -> None:
        """Release the engine's durable resources (the journal's file
        handle, if any).  Idempotent.  The engine object stays queryable
        — only further *journaled* work is off the table, exactly like a
        cleanly stopped process.  Use the engine as a context manager to
        get this on every exit path::

            with Engine(graph, journal_path=path) as eng:
                ...
        """
        self.journal.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission paths
    # ------------------------------------------------------------------
    def _abs(self, deadline: Optional[float], timeout: Optional[float]) -> Optional[float]:
        if timeout is not None:
            return self.now + timeout
        return deadline

    def _assign_id(self, request: Request) -> Optional[str]:
        rid = request.id
        if rid is None:
            rid = f"r{self._seq}"
            self._seq += 1
        elif rid in self._seen_ids:
            return None
        self._seen_ids.add(rid)
        return rid

    def _submit_update(self, request: Request, rid: str) -> Response:
        cfg = self.config
        # admission control: bounded ingress queue -> backpressure
        if cfg.max_pending is not None and len(self.batcher) >= cfg.max_pending:
            self.metrics_collector.rejected += 1
            return Response(
                id=rid, op=request.op, status=STATUS_REJECTED,
                error=make_error(
                    E_BACKPRESSURE,
                    f"ingress queue full ({cfg.max_pending} pending)",
                ),
            )
        self.metrics_collector.admitted += 1
        self.now += cfg.ingest_cost
        u, v = request.u, request.v
        if u == v or u is None or v is None:
            return self._quarantine(
                request, rid, E_SELF_LOOP, f"self-loop or missing endpoint: {u!r}"
            )
        if request.deadline is not None and request.deadline < self.now:
            return self._timeout_direct(request, rid)
        kind = "+" if request.op == "insert" else "-"
        action, e = self.batcher.classify(kind, u, v)
        if action == CONFLICT:
            # homogeneity: opposite-kind op on a fresh edge cuts the run
            self._cut("conflict")
            action = "queue"
        if action == CANCEL:
            # opposite op on a queued edge annihilates the pair: both
            # sides commit as a net no-op at the current epoch
            self.batcher.drop(e)
            for tr in self._edge_reqs.pop(e, []):
                self._finish_async(tr, STATUS_COMMITTED, detail="cancelled")
            self.metrics_collector.cancelled += 1
            if self.config.window is not None:
                if kind == "+":
                    # the insert annihilated a pending remove: the edge
                    # stays committed-present and its retention window
                    # restarts at this arrival
                    self._arm_expiry(e, self.event_now + self.config.window)
                else:
                    # the remove annihilated a pending insert: no commit
                    # will ever arm it
                    self._arrival.pop(e, None)
            return self._commit_direct(request, rid, detail="cancelled")
        if action == COALESCE:
            self._edge_reqs[e].append(_Tracked(request=replace(request, id=rid),
                                               admitted_at=self.now))
            self.metrics_collector.coalesced += 1
            return Response(id=rid, op=request.op, status=STATUS_PENDING,
                            detail="coalesced")
        # fresh op: validate against the committed graph (the pending run
        # is same-kind, so it cannot make this op valid or invalid)
        has = self.graph.has_edge(*e)
        if kind == "+" and has:
            return self._quarantine(
                request, rid, E_EDGE_EXISTS, f"edge already present: {e!r}"
            )
        if kind == "-" and not has:
            return self._quarantine(
                request, rid, E_EDGE_MISSING, f"edge not present: {e!r}"
            )
        self.batcher.queue(kind, e, self.now)
        if kind == "+" and self.config.window is not None:
            # stamp the arrival on the event clock; the expiry arms at
            # commit (an insert lost to overload must not leave a
            # phantom expiry behind)
            self._arrival.setdefault(e, self.event_now)
        self._edge_reqs.setdefault(e, []).append(
            _Tracked(request=replace(request, id=rid), admitted_at=self.now)
        )
        self.metrics_collector.note_depth(len(self.batcher))
        reason = self.batcher.cut_reason(self.now)
        if reason is not None:
            self._cut(reason)
        return Response(id=rid, op=request.op, status=STATUS_PENDING)

    def _submit_query(self, request: Request, rid: str) -> Response:
        self.metrics_collector.admitted += 1
        self.now += self.config.query_cost
        latency = self.config.query_cost
        if request.deadline is not None and request.deadline < self.now:
            return self._timeout_direct(request, rid)
        handler = self._query_kinds.get(request.kind or "")
        if handler is None:
            return self._quarantine(
                request, rid, E_UNKNOWN_QUERY,
                f"unknown query kind {request.kind!r} "
                f"(known: {sorted(self._query_kinds)})",
            )
        view = self.view()
        try:
            value = handler(view, request.args)
        except TypeError as exc:
            return self._quarantine(request, rid, E_BAD_REQUEST,
                                    f"bad arguments for {request.kind!r}: {exc}")
        if request.kind == "core" and value is None:
            resp = self._quarantine(
                request, rid, E_UNKNOWN_VERTEX,
                f"vertex {request.args[0]!r} unknown at epoch {view.epoch}",
            )
        else:
            self.metrics_collector.committed += 1
            self.metrics_collector.committed_queries += 1
            self.metrics_collector.note_latency("query", latency)
            resp = Response(
                id=rid, op="query", status=STATUS_COMMITTED, value=value,
                epoch=view.epoch, latency=latency,
            )
        # staleness pressure: enough reads against an old epoch -> cut
        self.batcher.note_query()
        if self.batcher.cut_reason(self.now) == "pressure":
            self._cut("pressure")
        return resp

    # ------------------------------------------------------------------
    # commit path
    # ------------------------------------------------------------------
    def _cut(self, reason: str) -> None:
        kind, edges = self.batcher.cut()
        if not edges:
            return
        self.metrics_collector.cuts[reason] += 1
        # deadline pass: expired requests are timed out and detached;
        # an edge with no live requester left is dropped from the batch
        live: Dict[Edge, List[_Tracked]] = {}
        for e in edges:
            trackers = self._edge_reqs.pop(e, [])
            alive = []
            for tr in trackers:
                dl = tr.request.deadline
                if dl is not None and dl < self.now:
                    self._finish_async(tr, STATUS_TIMED_OUT)
                else:
                    alive.append(tr)
            if alive:
                live[e] = alive
            elif kind == "+":
                # the insert never applies: no window will arm for it
                self._arrival.pop(e, None)
        if not live:
            return
        batch = list(live)
        inserting = kind == "+"
        try:
            # defensive re-validation: submission-time checks make this
            # unreachable, but an engine bug must surface as a structured
            # partial failure, not an exception escaping to the caller
            validate_batch(self.graph, batch, inserting)
        except (ValueError, KeyError) as exc:
            for trackers in live.values():
                for tr in trackers:
                    self._finish_async(
                        tr, STATUS_QUARANTINED,
                        error=make_error(E_BATCH_FAILED, str(exc)),
                    )
            self._requeue_window(kind, live)
            return
        cfg = self.config
        attempt = 0
        while True:
            # write-ahead: intend before touching the maintainer, so a
            # crashed attempt leaves an intent-without-commit the replay
            # recognizes as aborted
            ids = sorted(tr.request.id or ""
                         for trackers in live.values() for tr in trackers)
            self.journal.log_intent(kind, batch, ids, attempt)
            try:
                result = (
                    self.maintainer.insert_edges(batch)
                    if inserting
                    else self.maintainer.remove_edges(batch)
                )
                break
            except (BatchCrashed, SimDeadlockError) as exc:
                if self.faults is None:
                    raise  # a real protocol bug, not an injected fault
                self.metrics_collector.faults["crashed_batches"] += 1
                rep = getattr(exc, "report", None)
                if rep is not None:
                    # the doomed attempt still burned simulated time and
                    # its injections must show up in the totals
                    self.metrics_collector.fold_faults(rep)
                    self.now += getattr(rep, "makespan", 0.0)
                self._recover()
                attempt += 1
                if attempt > cfg.max_retries:
                    for trackers in live.values():
                        for tr in trackers:
                            self._finish_async(
                                tr, STATUS_ABANDONED,
                                error=make_error(
                                    E_RETRIES_EXHAUSTED,
                                    f"batch crashed {attempt} time(s), "
                                    f"giving up: {exc}",
                                ),
                            )
                    self._requeue_window(kind, live)
                    return
                self.metrics_collector.faults["retries"] += 1
                self.now += cfg.retry_backoff * (2 ** (attempt - 1))
                # the backoff advanced the clock: expire deadlines again
                still: Dict[Edge, List[_Tracked]] = {}
                for e, trackers in live.items():
                    alive = []
                    for tr in trackers:
                        dl = tr.request.deadline
                        if dl is not None and dl < self.now:
                            self._finish_async(tr, STATUS_TIMED_OUT)
                        else:
                            alive.append(tr)
                    if alive:
                        still[e] = alive
                    elif kind == "+":
                        self._arrival.pop(e, None)
                live = still
                if not live:
                    return
                batch = list(live)
        self.now += result.makespan
        self._batch_results.append(result)
        self.metrics_collector.fold_report(result.report)
        touched = {w for e in batch for w in e}
        for s in result.stats:
            touched.update(s.v_star)
        epoch = self.snapshots.commit(touched)
        self.journal.log_commit(epoch)
        self._publish_epoch(touched)
        self._note_commit_window(kind, batch)
        detail = f"retried:{attempt}" if attempt else None
        if attempt:
            self.metrics_collector.faults["retried_ops"] += sum(
                len(t) for t in live.values()
            )
        latencies: List[float] = []
        for trackers in live.values():
            for tr in trackers:
                lat = self.now - tr.admitted_at
                latencies.append(lat)
                self._finish_async(tr, STATUS_COMMITTED, epoch=epoch,
                                   latency=lat, detail=detail)
        self.metrics_collector.record_epoch(
            epoch=epoch, kind=kind, batch_size=len(batch),
            makespan=result.makespan, committed_at=self.now,
            update_latencies=latencies,
        )
        self._maybe_checkpoint(epoch)

    # ------------------------------------------------------------------
    # durability: checkpoints, recovery, restart
    # ------------------------------------------------------------------
    def _graph_edges(self) -> List[Edge]:
        """Committed graph as a canonical sorted edge list (journal form)."""
        g = self.maintainer.graph
        return sorted((canonical_edge(u, v) for u, v in g.edges()), key=repr)

    def foreign_edges(self) -> List[Edge]:
        """Tracked-but-not-maintained cross-shard edges (sorted)."""
        return sorted(self._foreign, key=repr)

    def _maybe_checkpoint(self, epoch: int) -> None:
        ce = self.config.checkpoint_every
        if ce is None or epoch % ce != 0:
            return
        self.journal.log_checkpoint(
            epoch, self._graph_edges(), self.maintainer.cores(),
            self.maintainer.order_sequence(),
            foreign=self.foreign_edges(),
        )

    @staticmethod
    def _maintainer_cls(cfg: EngineConfig):
        """The batch-loop backend class for ``cfg.backend``.

        ``"process"`` has no in-engine maintainer: shard workers each
        host a sim-backed engine in their own OS process
        (:mod:`repro.parallel.procs`), so constructing a monolithic
        engine with it is a config error the sharded router prevents.
        """
        if cfg.backend == "thread":
            from repro.parallel.threads import ThreadBackedMaintainer

            return ThreadBackedMaintainer
        if cfg.backend == "process":
            raise ValueError(
                "backend 'process' runs shard workers in OS processes — "
                "construct a repro.service.sharding.ShardedEngine instead"
            )
        return ParallelOrderMaintainer

    @classmethod
    def _base_maintainer(
        cls, replay: Replay, cfg: EngineConfig
    ) -> Tuple[ParallelOrderMaintainer, int]:
        """A *clean* (fault-free) maintainer at the replay's starting
        point: the latest checkpoint if there is one, else the initial
        graph.  Returns it with the epoch it represents."""
        kw = dict(
            num_workers=cfg.num_workers, costs=cfg.costs,
            schedule=cfg.schedule, seed=cfg.seed, policy=cfg.policy,
        )
        mcls = cls._maintainer_cls(cfg)
        ck = replay.checkpoint
        if ck is not None:
            m = mcls.from_checkpoint(
                DynamicGraph(list(ck.edges)), dict(ck.cores),
                list(ck.order), **kw,
            )
            return m, ck.epoch
        return mcls(
            DynamicGraph(list(replay.initial_edges)), **kw
        ), 0

    def _recover(self) -> None:
        """Discard the (presumed corrupt) maintainer and rebuild the last
        *committed* state from the journal: checkpoint fast-path, then a
        clean replay of every later committed batch.  The epoch ledger is
        untouched — recovery never invents or loses an epoch."""
        replay = self.journal.replay()
        m, start = self._base_maintainer(replay, self.config)
        for b in replay.batches_after(start):
            if b.kind == "+":
                m.insert_edges(list(b.edges))
            else:
                m.remove_edges(list(b.edges))
        self.snapshots.rebind(m)
        # re-arm only after the clean rebuild: the plane must not inject
        # into replay, and its run counter keeps advancing across the
        # swap so retries see fresh schedules
        m.faults = self.faults
        self.maintainer = m
        self.metrics_collector.faults["recoveries"] += 1
        # the buffers already carry the last committed epoch, but a full
        # re-publish pins them to the *rebuilt* state — recovery must
        # never leave the wait-free plane answering from a corrupt map
        self._publish_epoch(None)

    @classmethod
    def from_journal(
        cls,
        source,
        config: Optional[EngineConfig] = None,
        **overrides,
    ) -> "Engine":
        """Restart an engine from its write-ahead journal (a path, raw
        bytes, or an :class:`EdgeJournal`) after a simulated process
        crash.

        The maintainer is rebuilt from the latest checkpoint (or the
        init record) and every later *committed* batch is re-applied and
        re-committed, so the restarted engine answers the same epochs
        with the same cores as the engine that wrote the journal —
        aborted intents are skipped.  Request ids named by any intent
        are remembered, preserving duplicate-id detection across the
        restart.  Metrics start fresh (counters are per-process);
        pending-but-uncut operations are lost by design (they were never
        journaled), which is the usual WAL contract.
        """
        if isinstance(source, EdgeJournal):
            journal = source
        elif isinstance(source, bytes):
            journal = EdgeJournal.from_bytes(source)
        else:
            journal = EdgeJournal.load(source)
        cfg = config or EngineConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        replay = journal.replay()
        m, epoch0 = cls._base_maintainer(replay, cfg)
        eng = cls(DynamicGraph(), cfg, journal=journal,
                  _maintainer=m, _epoch0=epoch0)
        m.faults = None  # replay must be fault-free
        for b in replay.batches_after(epoch0):
            result = (
                m.insert_edges(list(b.edges))
                if b.kind == "+"
                else m.remove_edges(list(b.edges))
            )
            touched = {w for e in b.edges for w in e}
            for s in result.stats:
                touched.update(s.v_star)
            epoch = eng.snapshots.commit(touched)
            if epoch != b.epoch:
                raise ValueError(
                    f"journal epoch mismatch on replay: rebuilt epoch "
                    f"{epoch}, journal says {b.epoch}"
                )
        m.faults = eng.faults
        eng._seen_ids.update(replay.ids)
        eng._foreign = set(replay.foreign)
        for rid in replay.ids:
            if rid.startswith("r") and rid[1:].isdigit():
                eng._seq = max(eng._seq, int(rid[1:]) + 1)
            elif rid.startswith("exp:") and rid[4:].isdigit():
                eng._expiry_ids = max(eng._expiry_ids, int(rid[4:]) + 1)
        # window recovery: the expiry schedule is volatile state — every
        # surviving edge gets a fresh window from the restart point
        eng.rearm_window()
        return eng

    # ------------------------------------------------------------------
    # cross-shard 2PC participant surface (docs/sharding.md)
    # ------------------------------------------------------------------
    def validate_cross(self, kind: str, edge: Edge) -> Optional[str]:
        """Error code if a cross-shard op is inapplicable, else None.

        Only the *committed* graph matters: a cross-shard edge can never
        sit in this engine's local batcher (its routing class is fixed
        by the endpoint hash), so pending local ops cannot make it valid
        or invalid.  Edges this engine merely *tracks* (peer-owner role;
        the coordinator shard maintains them) count as present, so both
        owners always cast the same vote.
        """
        has = (self.graph.has_edge(*edge)
               or canonical_edge(*edge) in self._foreign)
        if kind == "+" and has:
            return E_EDGE_EXISTS
        if kind == "-" and not has:
            return E_EDGE_MISSING
        return None

    def prepare_cross(self, tx: str, kind: str, edge: Edge, rid: str,
                      shard: int, peer: int,
                      role: str = "apply") -> Optional[str]:
        """Phase 1: vote on transaction ``tx``.  A yes-vote writes a
        durable ``prepare`` record (the redo information) and parks the
        transaction; a validation failure returns the error code and
        writes nothing.  ``role`` records which side of the edge this
        engine is: the coordinator (``"apply"``) runs order maintenance
        at commit; the peer (``"track"``) only updates its foreign
        adjacency set."""
        err = self.validate_cross(kind, edge)
        if err is not None:
            return err
        e = canonical_edge(*edge)
        self.journal.log_prepare(tx, kind, e, rid, shard, peer, role=role)
        self._prepared[tx] = PreparedTx(tx=tx, kind=kind, edge=e, id=rid,
                                        shard=shard, peer=peer, role=role)
        self._seen_ids.add(rid)
        return None

    def commit_cross(self, tx: str) -> int:
        """Phase 2: apply the prepared transaction and publish it.

        Returns the epoch the edge committed as on this shard.  The
        ``commit2`` record written here is, on the coordinator, the
        protocol's decision record.
        """
        return self._apply_cross(self._prepared.pop(tx))

    def commit_cross_group(self, txs: List[str]) -> int:
        """Phase 2 for a whole cross-shard *group*: apply every decided
        edge as one maintainer batch, publish one epoch, then write one
        ``commit2`` per transaction carrying that shared epoch (replay
        folds the run back into one batch).  The router guarantees the
        group is kind-homogeneous and duplicate-free — the same
        contract the micro-batcher gives local batches."""
        return self._apply_cross_batch([self._prepared.pop(tx) for tx in txs])

    def abort_cross(self, tx: str) -> None:
        """Phase 2 (abort): void the prepared transaction."""
        self._prepared.pop(tx)
        self.journal.log_abort2(tx)

    def resolve_prepared(self, prep: PreparedTx, commit: bool) -> Optional[int]:
        """Recovery resolution for a *dangling* prepare (one this engine
        re-read from its journal rather than parked live).  ``commit``
        redoes the apply and writes the missing ``commit2``; otherwise
        an ``abort2`` voids it.  Driven by the router's resolution pass
        (:meth:`repro.service.sharding.ShardedEngine.from_journals`)."""
        if commit:
            return self._apply_cross(prep)
        self.journal.log_abort2(prep.tx)
        return None

    def _apply_cross(self, prep: PreparedTx) -> int:
        return self._apply_cross_batch([prep])

    def _apply_cross_batch(self, preps: List[PreparedTx]) -> int:
        """Apply decided cross-shard edges to the local maintainer.

        No intent record is written — the ``prepare`` *is* the
        write-ahead — and the decision is redo-only: an injected crash
        during the apply recovers and retries, it can never abort.

        Only ``"apply"``-role transactions (this engine coordinates the
        edge) touch the maintainer and publish an epoch; ``"track"``-role
        ones (the peer coordinates) just update the foreign adjacency
        set and journal their ``commit2`` with the current epoch — the
        coordinator's journal owns the redo."""
        applied = [p for p in preps if p.role != "track"]
        tracked = [p for p in preps if p.role == "track"]
        inserting = preps[0].kind == "+"
        makespan = 0.0
        if applied:
            batch = [p.edge for p in applied]
            cfg = self.config
            attempt = 0
            while True:
                try:
                    result = (
                        self.maintainer.insert_edges(batch)
                        if inserting
                        else self.maintainer.remove_edges(batch)
                    )
                    break
                except (BatchCrashed, SimDeadlockError) as exc:
                    if self.faults is None:
                        raise
                    self.metrics_collector.faults["crashed_batches"] += 1
                    rep = getattr(exc, "report", None)
                    if rep is not None:
                        self.metrics_collector.fold_faults(rep)
                        self.now += getattr(rep, "makespan", 0.0)
                    self._recover()
                    attempt += 1
                    if attempt > cfg.max_retries:
                        # a decided transaction cannot be abandoned; this
                        # is only reachable with an unbounded crash budget
                        raise
                    self.metrics_collector.faults["retries"] += 1
                    self.now += cfg.retry_backoff * (2 ** (attempt - 1))
            makespan = result.makespan
            self.now += makespan
            self.metrics_collector.fold_report(result.report)
            touched = {w for e in batch for w in e}
            for s in result.stats:
                touched.update(s.v_star)
            epoch = self.snapshots.commit(touched)
            self._publish_epoch(touched)
        else:
            epoch = self.epoch
        for p in tracked:
            if p.kind == "+":
                self._foreign.add(p.edge)
            else:
                self._foreign.discard(p.edge)
        for p in preps:
            self.journal.log_commit2(p.tx, epoch)
        n = len(preps)
        self.metrics_collector.admitted += n
        self.metrics_collector.committed += n
        self.metrics_collector.committed_updates += n
        op = "insert" if inserting else "remove"
        for _ in preps:
            self.metrics_collector.note_latency(op, makespan)
        if applied:
            self.metrics_collector.record_epoch(
                epoch=epoch, kind=preps[0].kind, batch_size=len(applied),
                makespan=makespan, committed_at=self.now,
                update_latencies=[makespan] * len(applied),
            )
            self._maybe_checkpoint(epoch)
        return epoch

    # ------------------------------------------------------------------
    # response bookkeeping
    # ------------------------------------------------------------------
    def _finish_async(
        self,
        tracked: _Tracked,
        status: str,
        *,
        epoch: Optional[int] = None,
        latency: Optional[float] = None,
        error: Optional[Dict[str, str]] = None,
        detail: Optional[str] = None,
    ) -> None:
        req = tracked.request
        if status == STATUS_TIMED_OUT and error is None:
            error = make_error(
                E_DEADLINE,
                f"deadline {req.deadline} passed before commit (now {self.now})",
            )
        if latency is None:
            latency = self.now - tracked.admitted_at
        resp = Response(id=req.id, op=req.op, status=status, error=error,
                        epoch=epoch, latency=latency, detail=detail)
        self._count_terminal(resp)
        self._completed.append(resp)

    def _commit_direct(self, request: Request, rid: str,
                       detail: Optional[str] = None) -> Response:
        resp = Response(id=rid, op=request.op, status=STATUS_COMMITTED,
                        epoch=self.epoch, latency=0.0, detail=detail)
        self._count_terminal(resp)
        return resp

    def _quarantine(self, request: Request, rid: str, code: str,
                    message: str) -> Response:
        resp = Response(id=rid, op=request.op, status=STATUS_QUARANTINED,
                        error=make_error(code, message))
        self._count_terminal(resp)
        return resp

    def _quarantine_direct(self, request: Request, rid: Optional[str],
                           code: str, message: str) -> Response:
        # duplicate-id / bad-op quarantine: the request *was* admitted
        self.metrics_collector.admitted += 1
        return self._quarantine(request, rid or "?", code, message)

    def _timeout_direct(self, request: Request, rid: str) -> Response:
        resp = Response(
            id=rid, op=request.op, status=STATUS_TIMED_OUT,
            error=make_error(
                E_DEADLINE,
                f"deadline {request.deadline} already passed at admission "
                f"(now {self.now})",
            ),
            latency=0.0,
        )
        self._count_terminal(resp)
        return resp

    def _count_terminal(self, resp: Response) -> None:
        m = self.metrics_collector
        if resp.status == STATUS_COMMITTED:
            m.committed += 1
            if resp.op == "query":
                m.committed_queries += 1
            else:
                m.committed_updates += 1
                m.note_latency(resp.op, resp.latency)
        elif resp.status == STATUS_QUARANTINED:
            m.quarantined += 1
        elif resp.status == STATUS_TIMED_OUT:
            m.timed_out += 1
        elif resp.status == STATUS_ABANDONED:
            m.abandoned += 1
