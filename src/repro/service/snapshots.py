"""Epoch-versioned, snapshot-isolated core views.

The serving engine commits updates in micro-batches; each commit is an
**epoch**.  Readers never look at the maintainer's live state — they get
a :class:`SnapshotView` pinned to a committed epoch, so a query issued
while a batch is pending (or, in a real deployment, mid-application)
answers against the last *consistent* core assignment.  This is the
asynchronous-reads serving shape of Liu et al. (arXiv 2401.08015) mapped
onto our order-based maintainer.

Storage is delta-based, not copy-based: :class:`SnapshotStore` records
each commit's touched vertices into a :class:`repro.core.history.CoreHistory`
(O(|V*|) per epoch), and materializes a full core map per epoch lazily,
with a small LRU cache so the common case — many queries against the
latest epoch — pays the materialization once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple,
)

from repro.core.history import CoreHistory
from repro.core.queries import (
    degeneracy,
    in_k_core,
    innermost_core,
    k_core_vertices,
    k_shell,
    shell_histogram,
)

Vertex = Hashable

__all__ = ["FrozenCoreMap", "SnapshotStore", "SnapshotView", "QUERY_KINDS"]


class FrozenCoreMap(dict):
    """A read-only dict for cached query results shared across callers.

    The per-view caches hand the *same* object to every caller (and the
    ``QUERY_KINDS`` handlers ship it as ``Response.value`` on the
    in-engine path), so mutation would silently corrupt every later
    answer at that epoch — here it raises instead.  Pickling reduces to
    a plain ``dict``, so cross-process consumers (reader pools, shard
    pipes) receive their own private, mutable copy; ``.copy()`` gives
    the same in-process.
    """

    __slots__ = ()

    def _frozen(self, *args, **kwargs):
        raise TypeError(
            "snapshot query results are read-only (shared per-epoch "
            "cache); take dict(result) to mutate a private copy"
        )

    __setitem__ = __delitem__ = _frozen
    clear = pop = popitem = setdefault = update = _frozen

    def __reduce__(self):
        return (dict, (dict(self),))


class SnapshotView:
    """An immutable core-number view pinned to one committed epoch.

    All answers come from the frozen ``cores`` map via the helpers of
    :mod:`repro.core.queries`; the view never touches the maintainer, so
    reading can never block on (or observe) an in-flight batch.

    The map never changes after construction, so the derived aggregates
    (:meth:`degeneracy`, :meth:`shell_histogram`, :meth:`innermost`) and
    the :meth:`cores` export are computed once per view and cached —
    under a read-heavy mix these, not the maintainer, are the hot path.
    """

    __slots__ = ("epoch", "_cores", "_copy", "_degeneracy", "_innermost",
                 "_histogram", "_shells", "_kcores")

    def __init__(self, epoch: int, cores: Dict[Vertex, int]) -> None:
        self.epoch = epoch
        self._cores = cores
        self._copy: Optional["FrozenCoreMap"] = None
        self._degeneracy: Optional[int] = None
        self._innermost: Optional[Tuple[int, FrozenSet[Vertex]]] = None
        self._histogram: Optional["FrozenCoreMap"] = None
        self._shells: Dict[int, FrozenSet[Vertex]] = {}
        self._kcores: Dict[int, FrozenSet[Vertex]] = {}

    def __len__(self) -> int:
        return len(self._cores)

    def __contains__(self, u: Vertex) -> bool:
        return u in self._cores

    @property
    def mapping(self) -> Dict[Vertex, int]:
        """The view's internal core map — shared, **read-only**.  The
        zero-copy surface the query-plane publisher encodes from
        (:meth:`repro.service.queryplane.EpochPublisher.publish`);
        mutating it corrupts the epoch ledger."""
        return self._cores

    def core(self, u: Vertex) -> Optional[int]:
        """Core number of ``u`` at this epoch (None if unknown then)."""
        return self._cores.get(u)

    def cores(self) -> Mapping[Vertex, int]:
        """The full core map at this epoch.

        Built once per view and shared by every later call (the store
        hands out one view per cached epoch, so this is one copy per
        *epoch*, not per query).  The result is a :class:`FrozenCoreMap`
        — mutation raises; take ``dict(view.cores())`` for a private
        copy.
        """
        if self._copy is None:
            self._copy = FrozenCoreMap(self._cores)
        return self._copy

    def k_core(self, k: int) -> FrozenSet[Vertex]:
        """Vertices in the ``k``-core — computed once per ``k`` per view
        and shared by later calls, hence frozen."""
        got = self._kcores.get(k)
        if got is None:
            got = self._kcores[k] = frozenset(k_core_vertices(self._cores, k))
        return got

    def k_shell(self, k: int) -> FrozenSet[Vertex]:
        """Vertices in the ``k``-shell — computed once per ``k`` per
        view and shared by later calls, hence frozen."""
        got = self._shells.get(k)
        if got is None:
            got = self._shells[k] = frozenset(k_shell(self._cores, k))
        return got

    def in_k_core(self, u: Vertex, k: int) -> bool:
        return in_k_core(self._cores, u, k)

    def degeneracy(self) -> int:
        if self._degeneracy is None:
            self._degeneracy = degeneracy(self._cores)
        return self._degeneracy

    def innermost(self) -> Tuple[int, FrozenSet[Vertex]]:
        if self._innermost is None:
            kmax, verts = innermost_core(self._cores)
            self._innermost = (kmax, frozenset(verts))
        return self._innermost

    def shell_histogram(self) -> Mapping[int, int]:
        if self._histogram is None:
            self._histogram = FrozenCoreMap(shell_histogram(self._cores))
        return self._histogram


#: the snapshot query plane: kind -> handler(view, args).  Shared by the
#: primary :class:`~repro.service.engine.Engine` and the replication
#: layer's :class:`~repro.replication.FollowerEngine`, so every serving
#: surface answers exactly the same query kinds the same way.
QUERY_KINDS = {
    "core": lambda view, a: view.core(*a),
    "cores": lambda view, a: view.cores(),
    "k_core": lambda view, a: view.k_core(*a),
    "k_shell": lambda view, a: view.k_shell(*a),
    "in_k_core": lambda view, a: view.in_k_core(*a),
    "degeneracy": lambda view, a: view.degeneracy(),
    "innermost": lambda view, a: view.innermost(),
    "shell_histogram": lambda view, a: view.shell_histogram(),
}


class SnapshotStore:
    """Epoch ledger over a maintainer: commit deltas in, views out.

    Parameters
    ----------
    maintainer:
        Anything exposing ``core(u)`` / ``cores()`` — the engine passes
        its :class:`~repro.parallel.batch.ParallelOrderMaintainer`.
    cache_epochs:
        How many materialized epoch maps to keep (LRU).  Evicted epochs
        stay answerable — they are rebuilt from the history deltas.
    epoch0:
        First answerable epoch.  A fresh engine starts at 0; an engine
        restarted from a journal checkpoint starts at the checkpoint's
        epoch — epochs before it were truncated with the checkpoint and
        :meth:`view` refuses them (``docs/faults.md``).
    """

    def __init__(self, maintainer, cache_epochs: int = 8,
                 epoch0: int = 0) -> None:
        if cache_epochs < 1:
            raise ValueError("cache_epochs must be >= 1")
        self.history = CoreHistory(maintainer)
        self.history.t = epoch0
        self.min_epoch = epoch0
        #: epoch -> materialized SnapshotView (LRU).  Caching the *view*
        #: (not the raw map) makes the per-view aggregate caches and the
        #: one-copy-per-epoch ``cores()`` export effective across
        #: repeated ``view()`` calls at the same epoch.
        self._cache: "OrderedDict[int, SnapshotView]" = OrderedDict()
        self._cache_epochs = cache_epochs
        self._cache[epoch0] = SnapshotView(epoch0, dict(maintainer.cores()))

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The last committed epoch (0 = the initial graph)."""
        return self.history.t

    def commit(self, touched: Iterable[Vertex]) -> int:
        """Record a batch commit: ``touched`` is every vertex whose core
        may have changed (batch endpoints plus all ``V*``).  Returns the
        new epoch number."""
        prev = self._cache.get(self.history.t)
        touched = set(touched)
        epoch = self.history.record_epoch(touched)
        if prev is not None:
            # incremental materialization: patch the previous epoch's map
            cur = dict(prev.mapping)
            for w in touched:
                k = self.history.core_at(w, epoch)
                if k is not None:
                    cur[w] = k
            self._remember(epoch, SnapshotView(epoch, cur))
        return epoch

    def view(self, epoch: Optional[int] = None) -> SnapshotView:
        """A read view at ``epoch`` (default: the last committed one)."""
        e = self.epoch if epoch is None else epoch
        if e < self.min_epoch or e > self.epoch:
            raise ValueError(
                f"epoch {e} out of range [{self.min_epoch}, {self.epoch}]"
            )
        view = self._cache.get(e)
        if view is None:
            view = SnapshotView(e, self.history.cores_at(e))
            self._remember(e, view)
        else:
            self._cache.move_to_end(e)
        return view

    def _remember(self, epoch: int, view: SnapshotView) -> None:
        self._cache[epoch] = view
        self._cache.move_to_end(epoch)
        while len(self._cache) > self._cache_epochs:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    def rebind(self, maintainer) -> None:
        """Point the store at a rebuilt maintainer (crash recovery).

        The epoch ledger is untouched — recovery rebuilds the maintainer
        to exactly the last *committed* state, so every already-answered
        epoch stays answerable and the next :meth:`commit` continues the
        numbering.  Verifies the rebuilt cores match the committed view
        before accepting the swap.
        """
        live = maintainer.cores()
        committed = self.view().mapping
        if live != committed:
            raise ValueError(
                "recovered maintainer disagrees with committed epoch "
                f"{self.epoch}: {len(live)} vs {len(committed)} cores"
            )
        self.history.m = maintainer

    def check(self) -> None:
        """History-vs-maintainer consistency (valid at quiescence)."""
        self.history.check()
        live = self.view().mapping
        for u, k in self.history.m.cores().items():
            assert live.get(u) == k, (
                f"snapshot of {u!r} out of sync: {live.get(u)} != {k}"
            )
