"""Epoch-versioned, snapshot-isolated core views.

The serving engine commits updates in micro-batches; each commit is an
**epoch**.  Readers never look at the maintainer's live state — they get
a :class:`SnapshotView` pinned to a committed epoch, so a query issued
while a batch is pending (or, in a real deployment, mid-application)
answers against the last *consistent* core assignment.  This is the
asynchronous-reads serving shape of Liu et al. (arXiv 2401.08015) mapped
onto our order-based maintainer.

Storage is delta-based, not copy-based: :class:`SnapshotStore` records
each commit's touched vertices into a :class:`repro.core.history.CoreHistory`
(O(|V*|) per epoch), and materializes a full core map per epoch lazily,
with a small LRU cache so the common case — many queries against the
latest epoch — pays the materialization once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.core.history import CoreHistory
from repro.core.queries import (
    degeneracy,
    in_k_core,
    innermost_core,
    k_core_vertices,
    k_shell,
    shell_histogram,
)

Vertex = Hashable

__all__ = ["SnapshotStore", "SnapshotView", "QUERY_KINDS"]


class SnapshotView:
    """An immutable core-number view pinned to one committed epoch.

    All answers come from the frozen ``cores`` map via the helpers of
    :mod:`repro.core.queries`; the view never touches the maintainer, so
    reading can never block on (or observe) an in-flight batch.
    """

    __slots__ = ("epoch", "_cores")

    def __init__(self, epoch: int, cores: Dict[Vertex, int]) -> None:
        self.epoch = epoch
        self._cores = cores

    def __len__(self) -> int:
        return len(self._cores)

    def __contains__(self, u: Vertex) -> bool:
        return u in self._cores

    def core(self, u: Vertex) -> Optional[int]:
        """Core number of ``u`` at this epoch (None if unknown then)."""
        return self._cores.get(u)

    def cores(self) -> Dict[Vertex, int]:
        """A copy of the full core map at this epoch."""
        return dict(self._cores)

    def k_core(self, k: int) -> Set[Vertex]:
        return k_core_vertices(self._cores, k)

    def k_shell(self, k: int) -> Set[Vertex]:
        return k_shell(self._cores, k)

    def in_k_core(self, u: Vertex, k: int) -> bool:
        return in_k_core(self._cores, u, k)

    def degeneracy(self) -> int:
        return degeneracy(self._cores)

    def innermost(self) -> Tuple[int, Set[Vertex]]:
        return innermost_core(self._cores)

    def shell_histogram(self) -> Dict[int, int]:
        return shell_histogram(self._cores)


#: the snapshot query plane: kind -> handler(view, args).  Shared by the
#: primary :class:`~repro.service.engine.Engine` and the replication
#: layer's :class:`~repro.replication.FollowerEngine`, so every serving
#: surface answers exactly the same query kinds the same way.
QUERY_KINDS = {
    "core": lambda view, a: view.core(*a),
    "cores": lambda view, a: view.cores(),
    "k_core": lambda view, a: view.k_core(*a),
    "k_shell": lambda view, a: view.k_shell(*a),
    "in_k_core": lambda view, a: view.in_k_core(*a),
    "degeneracy": lambda view, a: view.degeneracy(),
    "innermost": lambda view, a: view.innermost(),
    "shell_histogram": lambda view, a: view.shell_histogram(),
}


class SnapshotStore:
    """Epoch ledger over a maintainer: commit deltas in, views out.

    Parameters
    ----------
    maintainer:
        Anything exposing ``core(u)`` / ``cores()`` — the engine passes
        its :class:`~repro.parallel.batch.ParallelOrderMaintainer`.
    cache_epochs:
        How many materialized epoch maps to keep (LRU).  Evicted epochs
        stay answerable — they are rebuilt from the history deltas.
    epoch0:
        First answerable epoch.  A fresh engine starts at 0; an engine
        restarted from a journal checkpoint starts at the checkpoint's
        epoch — epochs before it were truncated with the checkpoint and
        :meth:`view` refuses them (``docs/faults.md``).
    """

    def __init__(self, maintainer, cache_epochs: int = 8,
                 epoch0: int = 0) -> None:
        if cache_epochs < 1:
            raise ValueError("cache_epochs must be >= 1")
        self.history = CoreHistory(maintainer)
        self.history.t = epoch0
        self.min_epoch = epoch0
        self._cache: "OrderedDict[int, Dict[Vertex, int]]" = OrderedDict()
        self._cache_epochs = cache_epochs
        self._cache[epoch0] = dict(maintainer.cores())

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The last committed epoch (0 = the initial graph)."""
        return self.history.t

    def commit(self, touched: Iterable[Vertex]) -> int:
        """Record a batch commit: ``touched`` is every vertex whose core
        may have changed (batch endpoints plus all ``V*``).  Returns the
        new epoch number."""
        prev = self._cache.get(self.history.t)
        touched = set(touched)
        epoch = self.history.record_epoch(touched)
        if prev is not None:
            # incremental materialization: patch the previous epoch's map
            cur = dict(prev)
            for w in touched:
                k = self.history.core_at(w, epoch)
                if k is not None:
                    cur[w] = k
            self._remember(epoch, cur)
        return epoch

    def view(self, epoch: Optional[int] = None) -> SnapshotView:
        """A read view at ``epoch`` (default: the last committed one)."""
        e = self.epoch if epoch is None else epoch
        if e < self.min_epoch or e > self.epoch:
            raise ValueError(
                f"epoch {e} out of range [{self.min_epoch}, {self.epoch}]"
            )
        cores = self._cache.get(e)
        if cores is None:
            cores = self.history.cores_at(e)
            self._remember(e, cores)
        else:
            self._cache.move_to_end(e)
        return SnapshotView(e, cores)

    def _remember(self, epoch: int, cores: Dict[Vertex, int]) -> None:
        self._cache[epoch] = cores
        self._cache.move_to_end(epoch)
        while len(self._cache) > self._cache_epochs:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    def rebind(self, maintainer) -> None:
        """Point the store at a rebuilt maintainer (crash recovery).

        The epoch ledger is untouched — recovery rebuilds the maintainer
        to exactly the last *committed* state, so every already-answered
        epoch stays answerable and the next :meth:`commit` continues the
        numbering.  Verifies the rebuilt cores match the committed view
        before accepting the swap.
        """
        live = maintainer.cores()
        committed = self.view().cores()
        if live != committed:
            raise ValueError(
                "recovered maintainer disagrees with committed epoch "
                f"{self.epoch}: {len(live)} vs {len(committed)} cores"
            )
        self.history.m = maintainer

    def check(self) -> None:
        """History-vs-maintainer consistency (valid at quiescence)."""
        self.history.check()
        live = self.view().cores()
        for u, k in self.history.m.cores().items():
            assert live.get(u) == k, (
                f"snapshot of {u!r} out of sync: {live.get(u)} != {k}"
            )
