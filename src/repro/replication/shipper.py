"""Incremental WAL shipping: tail a primary's journal toward followers.

A :class:`JournalShipper` is one follower's view of how much of the
primary's :class:`~repro.service.journal.EdgeJournal` it has received.
It tracks a **record cursor** (how many records were shipped) and the
matching **byte offset** into the canonical JSONL serialization, so a
follower can resume shipping after its own restart from a persisted
cursor instead of re-shipping the whole journal.

Two tailing modes share the cursor/offset bookkeeping:

* **object mode** (``JournalShipper(journal)``) — tails a live
  in-process :class:`EdgeJournal` by record index.  This is what
  :class:`~repro.replication.ReplicaSet` uses: primary and followers
  live in one simulated process, and the record dicts are shipped
  as-is.
* **file mode** (``JournalShipper.from_file(path)``) — tails a
  file-backed journal by byte offset: seek to the offset, read complete
  lines, parse.  A trailing line without a newline (the primary died
  mid-write) is left for the next poll, so a torn record is never
  shipped.

Shipping is batched: :meth:`poll` returns at most ``batch_records`` new
records per call (``None`` = everything available), and :meth:`lag`
reports how many records the follower is behind the head — the number
the serving plane surfaces as ``replica_lag_records``.

Cursor persistence writes a single ``{"t": "cursor", "records": n,
"offset": b}`` record (:data:`REC_CURSOR`) to a sidecar file; the
static journal-schema rules (RL020–RL022, ``docs/analysis.md``) check
its writer/reader shapes exactly like the WAL's own record kinds.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.service.journal import EdgeJournal, _canon

__all__ = ["JournalShipper", "REC_CURSOR"]

#: the shipper's persisted-position record kind (sidecar file, one line)
REC_CURSOR = "cursor"


class JournalShipper:
    """Tail one journal incrementally on behalf of one follower.

    Parameters
    ----------
    journal:
        The primary's live :class:`EdgeJournal` (object mode).  Pass
        ``None`` and use :meth:`from_file` for file mode.
    batch_records:
        Max records shipped per :meth:`poll` (``None`` = unbounded).
    cursor:
        Resume position: ``(records, offset)`` as persisted by
        :meth:`save_cursor`.
    """

    def __init__(
        self,
        journal: Optional[EdgeJournal] = None,
        *,
        batch_records: Optional[int] = None,
        cursor: Tuple[int, int] = (0, 0),
        _path: Optional[str] = None,
    ) -> None:
        if (journal is None) == (_path is None):
            raise ValueError("exactly one of journal / file path required")
        if batch_records is not None and batch_records < 1:
            raise ValueError("batch_records must be >= 1 or None")
        self.journal = journal
        self.path = _path
        self.batch_records = batch_records
        self.cursor, self.offset = cursor
        self.records_shipped = 0
        self.batches_shipped = 0

    @classmethod
    def from_file(cls, path: str, *, batch_records: Optional[int] = None,
                  cursor: Tuple[int, int] = (0, 0)) -> "JournalShipper":
        """Tail a file-backed journal (byte-offset resume)."""
        return cls(None, batch_records=batch_records, cursor=cursor,
                   _path=path)

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def available(self) -> int:
        """Records at the head beyond the cursor (object mode exact; file
        mode counts complete lines currently on disk)."""
        if self.journal is not None:
            return len(self.journal.records) - self.cursor
        return len(self._read_complete_lines()[0])

    def lag(self) -> int:
        """Alias for :meth:`available` — the follower's shipping lag."""
        return self.available()

    def poll(self, max_records: Optional[int] = None) -> List[Dict]:
        """Ship the next batch of records and advance cursor + offset.

        Returns ``[]`` when the follower is caught up.  The per-call
        bound is ``min(max_records, batch_records)`` (unbounded when
        both are ``None``).
        """
        limit = self.batch_records
        if max_records is not None:
            limit = max_records if limit is None else min(limit, max_records)
        if self.journal is not None:
            out = self.journal.records[self.cursor:]
            if limit is not None:
                out = out[:limit]
            self.offset += sum(
                len(_canon(r).encode("utf-8")) + 1 for r in out
            )
        else:
            lines, consumed = self._read_complete_lines(limit)
            out = [json.loads(ln) for ln in lines]
            self.offset += consumed
        if out:
            self.cursor += len(out)
            self.records_shipped += len(out)
            self.batches_shipped += 1
        return out

    def _read_complete_lines(
        self, limit: Optional[int] = None
    ) -> Tuple[List[str], int]:
        """Complete (newline-terminated) lines past ``offset``; a torn
        trailing write stays unconsumed.  Returns (lines, bytes)."""
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            data = fh.read()
        lines: List[str] = []
        consumed = 0
        start = 0
        while True:
            nl = data.find(b"\n", start)
            if nl < 0:
                break
            lines.append(data[start:nl].decode("utf-8"))
            start = nl + 1
            if limit is not None and len(lines) >= limit:
                break
        consumed = start
        return lines, consumed

    # ------------------------------------------------------------------
    # cursor persistence (record + offset resume)
    # ------------------------------------------------------------------
    def save_cursor(self, path: str) -> None:
        """Persist the shipping position (atomically: write + replace)."""
        rec = {"t": REC_CURSOR, "records": self.cursor,
               "offset": self.offset}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canon(rec) + "\n")
        os.replace(tmp, path)

    @staticmethod
    def load_cursor(path: str) -> Tuple[int, int]:
        """Read a persisted ``(records, offset)`` position back."""
        with open(path, "r", encoding="utf-8") as fh:
            rec = json.loads(fh.readline())
        if rec["t"] == REC_CURSOR:
            return (rec["records"], rec["offset"])
        raise ValueError(f"not a cursor record: {rec!r}")

    # ------------------------------------------------------------------
    def retarget(self, journal: EdgeJournal, prefix_len: int) -> None:
        """Point the shipper at a new primary's journal after failover.

        The new journal's first ``prefix_len`` records are byte-identical
        to the dead primary's committed prefix, so a cursor inside the
        prefix stays valid; a cursor beyond it (the follower had already
        received a dangling intent the failover truncated) is pulled
        back to the boundary."""
        self.journal = journal
        self.path = None
        if self.cursor > prefix_len:
            self.cursor = prefix_len
        self.offset = len(journal.prefix_bytes(self.cursor))

    def counters(self) -> Dict[str, int]:
        return {
            "cursor": self.cursor,
            "offset": self.offset,
            "records_shipped": self.records_shipped,
            "batches_shipped": self.batches_shipped,
        }
