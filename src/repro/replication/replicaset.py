"""Primary + followers + failover: the replicated serving topology.

A :class:`ReplicaSet` wires one primary :class:`~repro.service.engine.Engine`
to N :class:`~repro.replication.follower.FollowerEngine` replicas through
per-replica :class:`~repro.replication.shipper.JournalShipper` tails, and
owns the two control-plane decisions a real deployment makes outside any
single process (``docs/replication.md``):

**Shipping policy (semi-synchronous).**  After every update submission
the *sync* replica (the pool's first) is shipped the whole journal head,
so by the time a caller drains a committed response, at least one
replica durably holds the commit record — that is the zero
committed-op-loss guarantee the failover bench asserts.  The remaining
*async* replicas are shipped lazily: only once their shipping backlog
exceeds ``ship_lag`` records, which is what makes ``replica_lag_records``
a real, bounded, observable quantity on their query answers.

**Failover.**  Primary death is decided by a seeded, process-level
:class:`~repro.faults.FaultPlane` (one ``decide(0, "tick")`` draw per
update submission — the same deterministic oracle the engine uses for
worker faults, aimed at the whole process) or forced via
:meth:`kill_primary`.  Promotion then:

1. picks the most-caught-up follower (longest *committed* prefix of
   received records, ties to the lowest replica id);
2. truncates its local log to that committed prefix — a dangling
   trailing intent the dead primary never committed is dropped, exactly
   mirroring :meth:`EdgeJournal.committed_prefix_len
   <repro.service.journal.EdgeJournal.committed_prefix_len>`;
3. finishes its replay, then rebuilds an independent
   ``Engine.from_journal`` of the same prefix and asserts the follower
   is **bit-identical** to it (graph, cores, OM order, epoch) before
   trusting it;
4. installs the rebuilt engine as the new primary, appends a
   ``promote`` record opening generation G+1, and re-points the
   surviving shippers at the new journal (their cursors stay valid on
   the shared prefix).

Queries are routed round-robin across followers (the primary serves
them only when the pool is empty), each answer stamped with the
staleness contract fields.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.faults.plane import CRASH, as_plane
from repro.graph.dynamic_graph import DynamicGraph
from repro.service.engine import Engine, EngineConfig
from repro.service.journal import REC_INTENT, EdgeJournal
from repro.service.requests import (
    E_PRIMARY_DOWN,
    STATUS_REJECTED,
    Request,
    Response,
    make_error,
)
from repro.replication.follower import FollowerEngine
from repro.replication.shipper import JournalShipper

Vertex = Hashable

__all__ = ["ReplicaSet", "Promotion", "PRIMARY_WID"]

#: the worker id the process-level fault plane draws against — the
#: "worker" is the primary process itself
PRIMARY_WID = 0


@dataclass(frozen=True)
class Promotion:
    """One completed failover, as recorded in replica-set metrics."""

    generation: int        #: generation the new primary opened
    replica: int           #: id of the promoted follower
    epoch: int             #: its last committed epoch at takeover
    prefix_records: int    #: committed-prefix length it took over from
    catchup_records: int   #: backlog it had to replay before serving
    truncated_records: int  #: dangling-intent tail dropped by failover
    wall_s: float          #: real seconds from death detection to serving


class ReplicaSet:
    """Replicated serving: one primary, N followers, seeded failover.

    Parameters
    ----------
    graph:
        Initial committed graph for the first-generation primary.
    config:
        Shared :class:`EngineConfig` (primary and any promoted follower
        run the same knobs); keyword overrides apply on top.
    replicas:
        Follower count.  ``0`` degenerates to a plain primary (queries
        served locally, no failover possible).
    ship_lag:
        Async replicas are shipped only once they are more than this
        many records behind the journal head.
    ship_batch:
        Max records per shipping poll (``None`` = unbounded).
    primary_faults:
        A :class:`~repro.faults.FaultSpec` (or plane) for *process-level*
        primary crashes; ``crash_rate`` is per update submission and
        ``max_crashes`` budgets total primary deaths.  ``None`` disables
        seeded crashes (``kill_primary`` still works).
    seed:
        Seed for the process fault plane (default: ``config.seed`` mixed
        with a fixed offset so it never correlates with the engine's own
        worker-fault draws).
    promote_on_crash:
        Fail over automatically when the primary dies.  When ``False``
        (or no followers remain) the set stays headless: updates come
        back ``rejected`` with :data:`E_PRIMARY_DOWN`.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        config: Optional[EngineConfig] = None,
        *,
        replicas: int = 2,
        ship_lag: int = 8,
        ship_batch: Optional[int] = None,
        primary_faults: Any = None,
        seed: Optional[int] = None,
        promote_on_crash: bool = True,
        **overrides,
    ) -> None:
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        if ship_lag < 0:
            raise ValueError("ship_lag must be >= 0")
        cfg = config or EngineConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        self.config = cfg
        self.ship_lag = ship_lag
        self.promote_on_crash = promote_on_crash
        self.primary: Optional[Engine] = Engine(graph, cfg)
        self.followers: List[FollowerEngine] = [
            FollowerEngine(i, cfg) for i in range(replicas)
        ]
        self._shippers: Dict[int, JournalShipper] = {
            f.replica_id: JournalShipper(
                self.primary.journal, batch_records=ship_batch
            )
            for f in self.followers
        }
        self.process_faults = as_plane(
            primary_faults,
            seed=(cfg.seed ^ 0x5EED0F) if seed is None else seed,
        )
        if self.process_faults is not None:
            self.process_faults.begin_run()
        self.generation = 0
        self.primary_crashes = 0
        self.promotions: List[Promotion] = []
        self._rr = 0
        self._seq = 0
        self._submitted_updates = 0
        # birth sync: every replica gets the init record before traffic
        self.pump(force=True)

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def shipper(self, replica_id: int) -> JournalShipper:
        return self._shippers[replica_id]

    def _ship_to(self, f: FollowerEngine) -> None:
        s = self._shippers[f.replica_id]
        while True:
            batch = s.poll()
            if not batch:
                break
            f.receive(batch)
        f.replay()

    def pump(self, force: bool = False) -> None:
        """One shipping pass.

        The sync replica (first in the pool) is always shipped to the
        head; async replicas only when their backlog exceeds
        ``ship_lag`` (or ``force=True``, which deliberately defeats the
        lag — tests use it to reach quiescence).
        """
        if self.primary is None:
            return
        for i, f in enumerate(self.followers):
            s = self._shippers[f.replica_id]
            if force or i == 0 or s.lag() > self.ship_lag:
                self._ship_to(f)

    def sync(self) -> None:
        """Ship + replay everything everywhere (lag goes to zero)."""
        self.pump(force=True)

    # ------------------------------------------------------------------
    # request plane
    # ------------------------------------------------------------------
    def insert(self, u: Vertex, v: Vertex, **kw) -> Response:
        return self.submit(Request("insert", u=u, v=v,
                                   id=kw.pop("id", None)))

    def remove(self, u: Vertex, v: Vertex, **kw) -> Response:
        return self.submit(Request("remove", u=u, v=v,
                                   id=kw.pop("id", None)))

    def query(self, kind: str, *args, id: Optional[str] = None) -> Response:
        return self.submit(Request("query", kind=kind, args=tuple(args),
                                   id=id))

    def submit(self, request: Request) -> Response:
        """Route one request: updates to the primary (after the seeded
        crash draw), queries round-robin across followers."""
        if request.op == "query":
            return self._submit_query(request)
        return self._submit_update(request)

    def _submit_update(self, request: Request) -> Response:
        self._submitted_updates += 1
        if self.process_faults is not None and self.primary is not None:
            d = self.process_faults.decide(PRIMARY_WID, "tick")
            if d is not None and d[0] == CRASH:
                self._primary_died()
        if self.primary is None:
            return self._headless(request)
        resp = self.primary.submit(request)
        # semi-sync shipping: the commit (if one happened) reaches the
        # sync replica before the caller can observe the ack
        self.pump()
        return resp

    def _submit_query(self, request: Request) -> Response:
        if not self.followers:
            if self.primary is None:
                return self._headless(request)
            return self.primary.submit(request)
        f = self.followers[self._rr % len(self.followers)]
        self._rr += 1
        head = (len(self.primary.journal.records)
                if self.primary is not None else None)
        return f.query(request.kind or "", *request.args, id=request.id,
                       head_records=head)

    def _headless(self, request: Request) -> Response:
        rid = request.id
        if rid is None:
            rid = f"dead-{self._seq}"
            self._seq += 1
        return Response(
            id=rid, op=request.op, status=STATUS_REJECTED,
            error=make_error(
                E_PRIMARY_DOWN,
                "primary is dead and no follower was promoted "
                f"(crashes={self.primary_crashes})",
            ),
        )

    def flush(self) -> List[Response]:
        """Force-cut the primary's pending run, ship the commits, and
        drain terminal update responses."""
        if self.primary is None:
            return []
        self.primary.flush()
        self.pump()
        return self.take_completed()

    def take_completed(self) -> List[Response]:
        return self.primary.take_completed() if self.primary else []

    @property
    def epoch(self) -> int:
        if self.primary is None:
            raise ValueError("primary is dead")
        return self.primary.epoch

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def kill_primary(self) -> None:
        """Force the primary's death (chaos hook / operator action)."""
        if self.primary is None:
            raise ValueError("primary is already dead")
        self._primary_died()

    def _primary_died(self) -> None:
        dead = self.primary
        self.primary = None
        self.primary_crashes += 1
        if dead is not None:
            # the dead process's handle is gone; its in-memory journal
            # object is now unreachable to the control plane — failover
            # works from what the followers *received*, nothing more
            dead.close()
        if self.promote_on_crash and self.followers:
            self.promote()

    @staticmethod
    def _committed_prefix(f: FollowerEngine) -> int:
        n = len(f.records)
        while n > 0 and f.records[n - 1].get("t") == REC_INTENT:
            n -= 1
        return n

    def promote(self) -> Promotion:
        """Promote the most-caught-up follower to primary.

        See the module docstring for the four-step protocol.  Raises if
        the primary is still alive, the pool is empty, or the winner
        fails the bit-identity check against ``Engine.from_journal`` of
        its own committed prefix.
        """
        if self.primary is not None:
            raise ValueError("cannot promote while the primary is alive")
        if not self.followers:
            raise ValueError("no follower left to promote")
        t0 = time.perf_counter()
        winner = max(
            self.followers,
            key=lambda f: (self._committed_prefix(f), -f.replica_id),
        )
        prefix = self._committed_prefix(winner)
        truncated = len(winner.records) - prefix
        catchup = max(0, prefix - winner.applied)
        self._truncate(winner, prefix)
        winner.replay()
        # independent rebuild of the same prefix: the promoted state must
        # be indistinguishable from a cold restart of that journal
        j = EdgeJournal()
        j.records = list(winner.records)
        newp = Engine.from_journal(j, self.config)
        winner.verify_matches(newp)
        self.generation += 1
        newp.journal.log_promote(
            newp.epoch, prefix, self.generation, winner.replica_id
        )
        self.primary = newp
        self.followers = [f for f in self.followers if f is not winner]
        del self._shippers[winner.replica_id]
        for f in self.followers:
            self._truncate(f, prefix)
            self._shippers[f.replica_id].retarget(newp.journal, prefix)
        promo = Promotion(
            generation=self.generation,
            replica=winner.replica_id,
            epoch=newp.epoch,
            prefix_records=prefix,
            catchup_records=catchup,
            truncated_records=truncated,
            wall_s=time.perf_counter() - t0,
        )
        self.promotions.append(promo)
        # survivors learn the new generation with their next shipment
        self.pump()
        return promo

    @staticmethod
    def _truncate(f: FollowerEngine, prefix: int) -> None:
        """Drop a follower's record tail beyond the committed prefix (a
        dangling intent the failover discards); replayed state needs no
        rollback because intents alone never touch the maintainer."""
        if len(f.records) > prefix:
            del f.records[prefix:]
        if f.applied > prefix:
            f.applied = prefix
            f._pending = None

    def close(self) -> None:
        """Release the live primary's durable resources (idempotent)."""
        if self.primary is not None:
            self.primary.close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Quiesce and assert every invariant: primary engine checks,
        every follower fully caught up and bit-identical-compatible with
        the primary's committed state."""
        if self.primary is None:
            raise ValueError("primary is dead")
        self.primary.check()
        self.sync()
        for f in self.followers:
            if f.backlog() != 0:
                raise AssertionError(f"replica {f.replica_id} not drained")
            if f.epoch != self.primary.epoch:
                raise AssertionError(
                    f"replica {f.replica_id} at epoch {f.epoch}, "
                    f"primary at {self.primary.epoch}"
                )
            if f.maintainer is not None:
                f.verify_matches(self.primary, strict_order=False)

    def metrics(self) -> Dict[str, Any]:
        """The replication metrics surface (per-replica lag, promotion
        count, records shipped/replayed) as a plain dict."""
        head = (len(self.primary.journal.records)
                if self.primary is not None else None)
        per_replica = []
        for f in self.followers:
            row = f.counters()
            row["lag_records"] = f.lag_records(head)
            row["shipper"] = self._shippers[f.replica_id].counters()
            per_replica.append(row)
        return {
            "generation": self.generation,
            "primary_alive": self.primary is not None,
            "primary_crashes": self.primary_crashes,
            "promotions": len(self.promotions),
            "promotion_log": [
                {
                    "generation": p.generation,
                    "replica": p.replica,
                    "epoch": p.epoch,
                    "prefix_records": p.prefix_records,
                    "catchup_records": p.catchup_records,
                    "truncated_records": p.truncated_records,
                    "wall_s": p.wall_s,
                }
                for p in self.promotions
            ],
            "records_shipped": sum(
                s.records_shipped for s in self._shippers.values()
            ),
            "records_replayed": sum(f.applied for f in self.followers),
            "submitted_updates": self._submitted_updates,
            "replicas": per_replica,
            "process_faults": (
                self.process_faults.counters()
                if self.process_faults is not None else None
            ),
        }
