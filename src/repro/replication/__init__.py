"""Replication: WAL shipping, follower replicas, failover.

The serving engine's journal (:mod:`repro.service.journal`) is a
canonical, byte-comparable WAL — which makes it a replication stream for
free.  This package turns that observation into a primary/follower
topology (``docs/replication.md``):

* :class:`JournalShipper` — tails a primary journal incrementally with
  a record cursor + byte offset (resumable, batched);
* :class:`FollowerEngine` — replays shipped records continuously into
  its own maintainer + snapshot store and serves the primary's query
  plane with explicit staleness fields (``replica_epoch``,
  ``replica_lag_records``);
* :class:`ReplicaSet` — routes traffic, ships semi-synchronously (zero
  committed-op loss), detects seeded primary death through the fault
  plane, and promotes the most-caught-up follower — verified
  bit-identical to ``Engine.from_journal`` of the same prefix.
"""

from repro.replication.follower import FollowerEngine
from repro.replication.replicaset import PRIMARY_WID, Promotion, ReplicaSet
from repro.replication.shipper import REC_CURSOR, JournalShipper

__all__ = [
    "JournalShipper",
    "FollowerEngine",
    "ReplicaSet",
    "Promotion",
    "PRIMARY_WID",
    "REC_CURSOR",
]
