"""Read replicas: continuous journal replay behind the primary.

A :class:`FollowerEngine` is the replica-side half of WAL shipping: it
**receives** primary journal records (from a
:class:`~repro.replication.shipper.JournalShipper`), keeps them in its
own local copy of the log, and **replays** them continuously into a
private :class:`~repro.parallel.batch.ParallelOrderMaintainer` +
:class:`~repro.service.snapshots.SnapshotStore` pair.  It then serves
the exact snapshot query plane of the primary
(:data:`~repro.service.snapshots.QUERY_KINDS`) — same kinds, same
answers — with two extra staleness fields stamped into every response
envelope (``docs/replication.md``):

``replica_epoch``
    the epoch the follower had applied when it answered;
``replica_lag_records``
    how many primary journal records it had *not yet replayed* —
    records it received but has not applied, plus (when the caller
    passes the primary's head position) records not even shipped yet.

Replay is fault-free by construction: the follower applies only
*committed* intents (an intent record parks as pending until its commit
arrives), asserts every replayed epoch matches the journal's commit
record, and **re-anchors** on every checkpoint record — it rebuilds its
maintainer through ``from_checkpoint``, the same canonical path
``Engine.from_journal`` takes, with the snapshot store's ``rebind``
verifying the replayed cores agree with the checkpoint.  Re-anchoring
is what makes promotion sound: OM order ties resolve differently under
different construction histories, so a follower that replays the way a
cold restart would is the only kind whose graph, core numbers and OM
order are bit-identical to ``Engine.from_journal`` of the same record
prefix — which :meth:`verify_matches` asserts and
:meth:`ReplicaSet.promote
<repro.replication.replicaset.ReplicaSet.promote>` relies on.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.batch import ParallelOrderMaintainer
from repro.service.engine import EngineConfig
from repro.service.journal import (
    REC_CHECKPOINT,
    REC_COMMIT,
    REC_INIT,
    REC_INTENT,
    REC_PROMOTE,
)
from repro.service.requests import (
    E_BAD_REQUEST,
    E_REPLICA_UNREADY,
    E_UNKNOWN_QUERY,
    E_UNKNOWN_VERTEX,
    STATUS_COMMITTED,
    STATUS_QUARANTINED,
    Response,
    make_error,
)
from repro.service.snapshots import QUERY_KINDS, SnapshotStore, SnapshotView

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["FollowerEngine"]


class FollowerEngine:
    """One read replica: a local journal copy + continuous replay.

    Parameters
    ----------
    replica_id:
        Small integer naming this replica in metrics and promote
        records.
    config:
        :class:`EngineConfig` whose maintainer knobs (``num_workers``,
        ``costs``, ``schedule``, ``seed``, ``policy``,
        ``snapshot_cache``, ``query_cost``) the replica mirrors, so a
        promoted follower rebuilds exactly the engine the primary ran.
        Fault injection is never armed on a follower — replay applies
        already-committed work.
    """

    def __init__(self, replica_id: int = 0,
                 config: Optional[EngineConfig] = None,
                 **overrides) -> None:
        cfg = config or EngineConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        self.config = cfg
        self.replica_id = replica_id
        #: the local copy of the primary's journal (received records)
        self.records: List[Dict] = []
        #: how many of ``records`` have been replayed into the maintainer
        self.applied = 0
        self.maintainer: Optional[ParallelOrderMaintainer] = None
        self.snapshots: Optional[SnapshotStore] = None
        self._pending: Optional[Dict] = None
        #: primary generation last seen in a promote record
        self.generation = 0
        self.promotions_seen = 0
        self.aborted_intents = 0
        #: simulated time spent replaying committed batches
        self.replay_makespan = 0.0
        self.queries_served = 0
        self._qseq = 0
        #: wait-free query plane publisher (docs/queryplane.md); a
        #: follower republishes at every applied commit and re-anchor,
        #: so reader processes stay bounded-stale behind replication lag
        self._queryplane = None

    # ------------------------------------------------------------------
    # receiving + replaying
    # ------------------------------------------------------------------
    @property
    def received(self) -> int:
        """Records shipped to this replica so far."""
        return len(self.records)

    @property
    def epoch(self) -> int:
        """Last applied epoch (0 until the init record is replayed)."""
        return self.snapshots.epoch if self.snapshots is not None else 0

    def backlog(self) -> int:
        """Received-but-unapplied records."""
        return len(self.records) - self.applied

    def lag_records(self, head: Optional[int] = None) -> int:
        """Primary records not yet replayed here.  ``head`` is the
        primary's journal length; default assumes everything received."""
        base = len(self.records) if head is None else head
        return base - self.applied

    def receive(self, recs: Sequence[Dict]) -> int:
        """Append shipped records to the local log (no replay yet)."""
        self.records.extend(recs)
        return len(recs)

    def replay(self, max_records: Optional[int] = None) -> int:
        """Apply up to ``max_records`` backlog records (default: all).

        Returns how many were applied.  Raises ``ValueError`` on a
        stream that violates the journal grammar — a replica that
        cannot follow its primary must fail loudly, not serve garbage.
        """
        n = 0
        while self.applied < len(self.records):
            if max_records is not None and n >= max_records:
                break
            self._apply(self.records[self.applied])
            self.applied += 1
            n += 1
        return n

    def _apply(self, rec: Dict) -> None:
        t = rec["t"]
        if t == REC_INIT:
            if self.maintainer is not None:
                raise ValueError("second init record in replication stream")
            self._boot(DynamicGraph([(u, v) for u, v in rec["edges"]]),
                       epoch0=0)
        elif t == REC_INTENT:
            if self._pending is not None:
                # superseded attempt: the primary crashed mid-batch and
                # retried; only the committed attempt ever gets applied
                self.aborted_intents += 1
            self._pending = rec
        elif t == REC_COMMIT:
            if self._pending is None:
                raise ValueError(
                    f"commit for epoch {rec['epoch']} without an intent "
                    f"in the shipped stream (replica {self.replica_id})"
                )
            self._apply_commit(self._pending, rec["epoch"])
            self._pending = None
        elif t == REC_CHECKPOINT:
            # re-anchor: rebuild the maintainer from the checkpoint, the
            # same canonical path ``Engine.from_journal`` takes.  OM tie
            # placement depends on construction history, so re-anchoring
            # at every checkpoint is what keeps the follower's state
            # after record i bit-identical to a cold restart of the
            # first i records — the promotion safety property.
            m = ParallelOrderMaintainer.from_checkpoint(
                DynamicGraph([(u, v) for u, v in rec["edges"]]),
                {u: k for u, k in rec["cores"]},
                list(rec["order"]),
                **self._maintainer_kw(),
            )
            if self.maintainer is None:
                # mid-stream attach: the first record a late-joining
                # replica receives is the primary's latest checkpoint
                self._adopt(m, epoch0=rec["epoch"])
            else:
                # rebind verifies the checkpoint's cores agree with the
                # replayed committed view — the divergence tripwire
                self.snapshots.rebind(m)
                self.maintainer = m
        elif t == REC_PROMOTE:
            if self._pending is not None:
                raise ValueError(
                    "promote record follows an unresolved intent — the "
                    "failover truncation was skipped"
                )
            self.promotions_seen += 1
            self.generation = rec["generation"]
        else:
            raise ValueError(f"unknown record kind {t!r} shipped to replica")

    def _apply_commit(self, pending: Dict, epoch: int) -> None:
        m = self.maintainer
        if m is None or self.snapshots is None:
            raise ValueError("commit record before init/checkpoint")
        edges = [(u, v) for u, v in pending["edges"]]
        result = (
            m.insert_edges(edges)
            if pending["kind"] == "+"
            else m.remove_edges(edges)
        )
        self.replay_makespan += result.makespan
        touched = {w for e in edges for w in e}
        for s in result.stats:
            touched.update(s.v_star)
        got = self.snapshots.commit(touched)
        if got != epoch:
            raise ValueError(
                f"replica {self.replica_id} epoch drift: replay produced "
                f"epoch {got}, primary committed {epoch}"
            )
        self._publish_epoch(touched)

    def _maintainer_kw(self) -> Dict[str, Any]:
        cfg = self.config
        return dict(num_workers=cfg.num_workers, costs=cfg.costs,
                    schedule=cfg.schedule, seed=cfg.seed, policy=cfg.policy)

    def _boot(self, graph: DynamicGraph, epoch0: int) -> None:
        self._adopt(
            ParallelOrderMaintainer(graph, **self._maintainer_kw()),
            epoch0=epoch0,
        )

    def _adopt(self, m: ParallelOrderMaintainer, epoch0: int) -> None:
        self.maintainer = m
        self.snapshots = SnapshotStore(
            m, cache_epochs=self.config.snapshot_cache, epoch0=epoch0
        )
        # a mid-stream attach moves min_epoch forward: republish so
        # pinned readers below the new floor get the truncation refusal
        self._publish_epoch(None)

    # ------------------------------------------------------------------
    # wait-free query plane (docs/queryplane.md)
    # ------------------------------------------------------------------
    def enable_queryplane(self, publisher=None, **kwargs):
        """Attach an :class:`~repro.service.queryplane.EpochPublisher`.

        Every applied commit (and every checkpoint re-anchor) republishes
        the follower's core map, stamped with the replica's applied epoch
        — reader processes answer from shared memory at replication-lag
        staleness without touching the replay loop.  Pass an existing
        ``publisher`` to rebind after promotion (the promoted engine's
        plane keeps its segments; epochs continue from the follower's
        applied epoch).  The caller owns the publisher's lifetime.
        """
        if publisher is None:
            from repro.service.queryplane import EpochPublisher

            publisher = EpochPublisher(**kwargs)
        self._queryplane = publisher
        if self.snapshots is not None:
            self._publish_epoch(None)
        return publisher

    def _publish_epoch(self, touched) -> None:
        if self._queryplane is None or self.snapshots is None:
            return
        view = self.snapshots.view()
        self._queryplane.publish(
            view.epoch, self.snapshots.min_epoch, view.mapping, touched
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def view(self, epoch: Optional[int] = None) -> SnapshotView:
        """A snapshot view at ``epoch`` (default: last applied)."""
        if self.snapshots is None:
            raise ValueError("replica has not received an init record yet")
        return self.snapshots.view(epoch)

    def query(self, kind: str, *args, id: Optional[str] = None,
              head_records: Optional[int] = None) -> Response:
        """Answer one snapshot query with the staleness contract.

        ``head_records`` is the primary journal length at routing time;
        the :class:`~repro.replication.replicaset.ReplicaSet` passes it
        so ``replica_lag_records`` counts unshipped records too.
        """
        rid = id if id is not None else f"f{self.replica_id}-q{self._qseq}"
        self._qseq += 1
        self.queries_served += 1
        lag = self.lag_records(head_records)
        stamp = dict(replica_epoch=self.epoch, replica_lag_records=lag)
        if self.snapshots is None:
            return Response(
                id=rid, op="query", status=STATUS_QUARANTINED,
                error=make_error(
                    E_REPLICA_UNREADY,
                    f"replica {self.replica_id} has not replayed an init "
                    "record yet",
                ),
                **stamp,
            )
        handler = QUERY_KINDS.get(kind or "")
        if handler is None:
            return Response(
                id=rid, op="query", status=STATUS_QUARANTINED,
                error=make_error(
                    E_UNKNOWN_QUERY,
                    f"unknown query kind {kind!r} "
                    f"(known: {sorted(QUERY_KINDS)})",
                ),
                **stamp,
            )
        view = self.view()
        try:
            value = handler(view, tuple(args))
        except TypeError as exc:
            return Response(
                id=rid, op="query", status=STATUS_QUARANTINED,
                error=make_error(
                    E_BAD_REQUEST, f"bad arguments for {kind!r}: {exc}"
                ),
                **stamp,
            )
        if kind == "core" and value is None:
            return Response(
                id=rid, op="query", status=STATUS_QUARANTINED,
                error=make_error(
                    E_UNKNOWN_VERTEX,
                    f"vertex {args[0]!r} unknown at epoch {view.epoch}",
                ),
                **stamp,
            )
        return Response(
            id=rid, op="query", status=STATUS_COMMITTED, value=value,
            epoch=view.epoch, latency=self.config.query_cost, **stamp,
        )

    # ------------------------------------------------------------------
    # promotion support
    # ------------------------------------------------------------------
    def canonical_edges(self) -> List[Edge]:
        """Replayed graph as the journal's canonical sorted edge list."""
        if self.maintainer is None:
            return []
        g = self.maintainer.graph
        return sorted((canonical_edge(u, v) for u, v in g.edges()), key=repr)

    def verify_matches(self, engine, strict_order: bool = True) -> None:
        """Assert bit-identity with an :class:`~repro.service.engine.Engine`
        rebuilt from the same journal prefix: same graph, same cores,
        same OM order, same epoch.  This is the promotion safety check —
        a follower that drifted must never take over as primary.

        ``strict_order=False`` skips the OM-order comparison: against a
        *live* primary (whose maintainer grew organically rather than
        through the checkpoint re-anchor path) order ties may resolve
        differently without either side being wrong."""
        if self.maintainer is None:
            raise ValueError(f"replica {self.replica_id} is empty")
        if self.epoch != engine.epoch:
            raise ValueError(
                f"promotion check: replica epoch {self.epoch} != "
                f"rebuilt epoch {engine.epoch}"
            )
        if self.canonical_edges() != engine._graph_edges():
            raise ValueError("promotion check: graphs differ")
        if self.maintainer.cores() != engine.maintainer.cores():
            raise ValueError("promotion check: core numbers differ")
        if strict_order and (
            list(self.maintainer.order_sequence())
            != list(engine.maintainer.order_sequence())
        ):
            raise ValueError("promotion check: OM order differs")

    def counters(self) -> Dict[str, Any]:
        return {
            "replica": self.replica_id,
            "received": self.received,
            "applied": self.applied,
            "backlog": self.backlog(),
            "epoch": self.epoch,
            "generation": self.generation,
            "promotions_seen": self.promotions_seen,
            "aborted_intents": self.aborted_intents,
            "queries_served": self.queries_served,
            "replay_makespan": self.replay_makespan,
        }
