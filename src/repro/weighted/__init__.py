"""Weighted-graph core maintenance — the paper's stated extension.

The paper's conclusion ("the proposed parallel methodology can be applied
to other graphs, e.g. weighted graphs") and its related-work discussion of
Zhou et al. motivate this subpackage: for an edge-weighted graph the
degree of a vertex is the *sum of the weights* of its incident edges
(paper Section 2), the weighted core number generalizes accordingly, and
— as the paper notes — maintenance faces "a large search range ... as the
degree of a related vertex may change widely": one weight-w edge can move
core numbers by up to w, not 1.

* :mod:`repro.weighted.graph` — weighted dynamic graph (positive integer
  weights).
* :mod:`repro.weighted.decomposition` — weighted BZ peeling.
* :mod:`repro.weighted.maintenance` — incremental maintenance via
  band-bounded region recomputation: a weight-w change can only move
  cores within the band ``[K, K+w)`` (insert) / ``(K-w, K]`` (remove),
  and only for vertices band-connected to the endpoints, so the repair
  re-peels just that region against a pinned boundary.
"""

from repro.weighted.graph import WeightedDynamicGraph
from repro.weighted.decomposition import weighted_core_decomposition
from repro.weighted.maintenance import WeightedCoreMaintainer
from repro.weighted.parallel import ParallelWeightedMaintainer

__all__ = [
    "WeightedDynamicGraph",
    "weighted_core_decomposition",
    "WeightedCoreMaintainer",
    "ParallelWeightedMaintainer",
]
