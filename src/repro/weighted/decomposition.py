"""Weighted core decomposition: BZ peeling on weighted degrees.

The weighted core number of ``u`` is the largest ``t`` such that ``u``
belongs to an induced subgraph in which every vertex has *weighted*
degree >= t (Zhou et al.'s weighted coreness; with all weights 1 it is
exactly the ordinary core number, which the tests verify).

Peeling generalizes directly: repeatedly extract the vertex with minimum
current weighted degree ``d``; its core is ``max(core so far, d)``;
removing it subtracts the edge weight (not 1) from each neighbor.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Tuple

from repro.weighted.graph import WeightedDynamicGraph

Vertex = Hashable

__all__ = ["weighted_core_decomposition"]


def weighted_core_decomposition(
    graph: WeightedDynamicGraph,
) -> Tuple[Dict[Vertex, int], List[Vertex]]:
    """Return ``(core, peel_order)`` for the weighted graph."""
    d: Dict[Vertex, int] = {
        u: graph.weighted_degree(u) for u in graph.vertices()
    }
    index = {u: i for i, u in enumerate(graph.vertices())}
    heap = [(d[u], index[u], u) for u in d]
    heapq.heapify(heap)
    removed = set()
    core: Dict[Vertex, int] = {}
    order: List[Vertex] = []
    k = 0
    while heap:
        du, _i, u = heapq.heappop(heap)
        if u in removed or du != d[u]:
            continue
        removed.add(u)
        k = max(k, d[u])
        core[u] = k
        order.append(u)
        for v, w in graph.neighbors(u).items():
            if v not in removed and d[v] > d[u]:
                # clamp at the peeling threshold, as in unweighted BZ:
                # support below the current level is irrelevant
                d[v] = max(d[u], d[v] - w)
                heapq.heappush(heap, (d[v], index[v], v))
    return core, order
