"""Parallel weighted core maintenance on the simulated multicore.

The paper's conclusion claims its methodology transfers to weighted
graphs.  This module realizes a first version of that transfer: workers
each take one weighted edge at a time (as in Algorithm 3) and repair the
band-bounded region of :mod:`repro.weighted.maintenance`, synchronizing
with **region locks**:

* compute the candidate band region for the edge;
* try-lock *all* region vertices in a canonical order, with full back-off
  (no hold-and-wait, hence no deadlock — the try-both pattern of
  Algorithm 5 line 1 generalized to a set);
* after locking, re-derive the region: if concurrent repairs changed any
  core so the region grew, back off and retry;
* re-peel, commit, unlock.

Compared to OurI/OurR this is coarser — a weight-w edge locks its whole
repair region rather than V+ only — which is exactly the trade-off the
paper predicts for the weighted case ("a large search range ... as the
degree of a related vertex may change widely").  The benchmark
``benchmarks/test_weighted_maintenance.py`` quantifies the regions; this
module's tests show the parallel version still scales on networks whose
bands localize.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimMachine, SimReport, release_all
from repro.weighted.graph import WeightedDynamicGraph
from repro.weighted.maintenance import WeightedCoreMaintainer, WeightedOpStats

Vertex = Hashable
WEdge = Tuple[Vertex, Vertex, int]

__all__ = ["ParallelWeightedMaintainer", "WeightedBatchResult"]


class WeightedBatchResult:
    """Report for one parallel weighted batch."""

    __slots__ = ("report", "stats")

    def __init__(self, report: SimReport, stats: List[WeightedOpStats]) -> None:
        self.report = report
        self.stats = stats

    @property
    def makespan(self) -> float:
        return self.report.makespan

    def region_sizes(self) -> List[int]:
        return [len(s.region) for s in self.stats]


def _try_lock_all(keys: Sequence[Vertex]):
    """Try-lock a vertex set in canonical order with full back-off.
    Returns True when all were acquired."""
    held: List[Vertex] = []
    for k in keys:
        ok = yield ("try", k)
        if not ok:
            yield from release_all(held)
            return False
        held.append(k)
    return True


class ParallelWeightedMaintainer:
    """Batch-parallel weighted core maintenance (region-locking scheme)."""

    def __init__(
        self,
        graph: WeightedDynamicGraph,
        num_workers: int = 4,
        costs: Optional[CostModel] = None,
        schedule: str = "min-clock",
        seed: int = 0,
    ) -> None:
        self.inner = WeightedCoreMaintainer(graph)
        self.num_workers = num_workers
        self.costs = costs or CostModel.from_env()
        self.schedule = schedule
        self.seed = seed

    # ------------------------------------------------------------------
    @property
    def graph(self) -> WeightedDynamicGraph:
        return self.inner.graph

    def core(self, u: Vertex) -> int:
        return self.inner.core(u)

    def cores(self) -> Dict[Vertex, int]:
        return self.inner.cores()

    def check(self) -> None:
        self.inner.check()

    # ------------------------------------------------------------------
    def _edge_worker(self, edges, inserting: bool, out: List[WeightedOpStats]):
        C = self.costs
        m = self.inner
        g = m.graph
        for u, v, w in edges:
            yield ("tick", C.edge_overhead)

            def bounds():
                """Band bounds from *current* cores (endpoint cores can
                move under concurrent repairs until we hold their locks)."""
                k = min(m._core.get(u, 0), m._core.get(v, 0))
                if inserting:
                    return k, k + w - 1
                return max(0, k - w + 1), k

            mutated = False
            extra: Set[Vertex] = set()
            stats: Optional[WeightedOpStats] = None
            while stats is None:
                # candidate region from the *current* (unlocked) state,
                # plus any expansion discovered by failed attempts
                lo, hi = bounds()
                region = m._band_region((u, v), lo, hi) | {u, v} | extra
                keys = sorted(region, key=repr)
                yield ("tick", C.scan(len(keys)))
                got = yield from _try_lock_all(keys)
                if not got:
                    yield ("spin",)
                    continue
                # One atomic block (no yields): re-derive the region under
                # the locks, mutate on first success, attempt the repair.
                # Atomicity here plays the role of the fine-grained
                # protocols of OurI/OurR; the region locks carry the
                # cross-edge exclusion (and are genuinely contended —
                # see the back-off path above).
                lo, hi = bounds()
                fresh = m._band_region((u, v), lo, hi) | {u, v} | extra
                if not fresh <= region:
                    yield from release_all(keys)
                    yield ("spin",)
                    continue
                if not mutated:
                    if inserting:
                        g.add_edge(u, v, w)
                    else:
                        g.remove_edge(u, v)
                    mutated = True
                changed, violated = m.attempt_repair(fresh)
                if violated:
                    # cross-edge interaction: the repair needs vertices we
                    # do not hold — grow the target set and re-lock
                    extra |= m.expansion_region(violated)
                    yield from release_all(keys)
                    yield ("spin",)
                    continue
                stats = WeightedOpStats(
                    region=sorted(fresh, key=repr),
                    changed=sorted(changed, key=repr),
                    expansions=1 if extra else 0,
                )
                # charge graph mutation + the re-peel: region edges times
                # the band height
                cost = sum(g.degree(x) for x in fresh) * max(1, hi - lo + 1)
                yield ("tick", C.graph_mutate + cost * C.adj_scan)
                out.append(stats)
                yield from release_all(keys)

    def _run(self, edges: Sequence[WEdge], inserting: bool) -> WeightedBatchResult:
        from repro.parallel.batch import partition_batch

        # pre-register new endpoint vertices (sequential prologue)
        if inserting:
            for u, v, _w in edges:
                for x in (u, v):
                    if x not in self.inner._core:
                        self.graph.add_vertex(x)
                        self.inner._core[x] = 0
        chunks = partition_batch(list(edges), self.num_workers)
        outs: List[List[WeightedOpStats]] = [[] for _ in chunks]
        bodies = [
            self._edge_worker(chunk, inserting, out)
            for chunk, out in zip(chunks, outs)
        ]
        machine = SimMachine(
            self.num_workers, self.costs, self.schedule, self.seed
        )
        report = machine.run(bodies)
        return WeightedBatchResult(report, [s for o in outs for s in o])

    def insert_edges(self, edges: Sequence[WEdge]) -> WeightedBatchResult:
        """Insert a batch of weighted edges with P workers."""
        seen: Set[Tuple[Vertex, Vertex]] = set()
        for u, v, w in edges:
            if u == v:
                raise ValueError(f"self-loop: {u!r}")
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge in batch: {key!r}")
            seen.add(key)
            if self.graph.has_edge(u, v):
                raise ValueError(f"edge already present: {key!r}")
        return self._run(edges, inserting=True)

    def remove_edges(self, edges: Sequence[Tuple[Vertex, Vertex]]) -> WeightedBatchResult:
        """Remove a batch of edges with P workers."""
        weighted: List[WEdge] = []
        seen: Set[Tuple[Vertex, Vertex]] = set()
        for u, v in edges:
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge in batch: {key!r}")
            seen.add(key)
            weighted.append((u, v, self.graph.weight(u, v)))
        return self._run(weighted, inserting=False)
