"""Incremental weighted core maintenance via band-bounded recomputation.

A weight-``w`` edge change at endpoints with ``K = min(core(u), core(v))``
can only move core numbers

* **up**, for insertion, and only for vertices whose current core lies in
  the band ``[K, K+w)`` (a heavier level needs the new edge's endpoints
  to reach it first, and they rise by at most ``w``);
* **down**, for removal, and only within ``(K-w, K]`` (a vertex at or
  below ``K-w`` keeps every supporter: a dropped neighbor still ends at
  core >= its old core - w >= that vertex's level).

Moreover the change can only *cascade* through vertices inside the band,
so the affected set is contained in the band-connected region around the
endpoints.  ``WeightedCoreMaintainer`` therefore re-peels just that
region against a pinned boundary (outside cores are taken as fixed
truth), then — as a safety net for the band-closure argument — verifies
every pinned neighbor of a changed vertex still satisfies its core's
support requirement, expanding the region and retrying on violation (the
differential tests never trigger an expansion, but correctness should not
rest on a pen-and-paper closure argument alone).

This realizes, at the sequential level, the extension the paper sketches
in its conclusion; the "large search range" it warns about is visible
directly as the measured region sizes (see
``benchmarks/test_weighted_maintenance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

from repro.weighted.decomposition import weighted_core_decomposition
from repro.weighted.graph import WeightedDynamicGraph

Vertex = Hashable

__all__ = ["WeightedCoreMaintainer", "WeightedOpStats"]


@dataclass
class WeightedOpStats:
    """Instrumentation for one weighted edge operation."""

    region: List[Vertex] = field(default_factory=list)
    changed: List[Vertex] = field(default_factory=list)
    expansions: int = 0


class WeightedCoreMaintainer:
    """Maintain weighted core numbers under weighted edge churn."""

    def __init__(self, graph: WeightedDynamicGraph) -> None:
        self.graph = graph
        self._core, _ = weighted_core_decomposition(graph)

    # ------------------------------------------------------------------
    def core(self, u: Vertex) -> int:
        return self._core[u]

    def cores(self) -> Dict[Vertex, int]:
        return dict(self._core)

    def check(self) -> None:
        """Differential check against a full weighted decomposition."""
        fresh, _ = weighted_core_decomposition(self.graph)
        for u in self.graph.vertices():
            assert self._core[u] == fresh[u], (
                f"wcore[{u!r}]={self._core[u]} != fresh {fresh[u]}"
            )

    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex, w: int) -> WeightedOpStats:
        """Insert a weight-``w`` edge and repair weighted cores."""
        for x in (u, v):
            if x not in self._core:
                self.graph.add_vertex(x)
                self._core[x] = 0
        self.graph.add_edge(u, v, w)
        k = min(self._core[u], self._core[v])
        return self._repair((u, v), lo=k, hi=k + w - 1)

    def remove_edge(self, u: Vertex, v: Vertex) -> WeightedOpStats:
        """Remove an edge and repair weighted cores."""
        k = min(self._core[u], self._core[v])
        w = self.graph.remove_edge(u, v)
        return self._repair((u, v), lo=max(0, k - w + 1), hi=k)

    # ------------------------------------------------------------------
    def _band_region(self, seeds, lo: int, hi: int) -> Set[Vertex]:
        """Vertices with core in [lo, hi] connected to the seeds through
        such vertices (the cascade-closure candidate set)."""
        region: Set[Vertex] = set()
        frontier = [
            s for s in seeds if s in self._core and lo <= self._core[s] <= hi
        ]
        region.update(frontier)
        while frontier:
            nxt = []
            for x in frontier:
                for y in self.graph.neighbors(x):
                    if y not in region and lo <= self._core[y] <= hi:
                        region.add(y)
                        nxt.append(y)
            frontier = nxt
        return region

    def _repeel_region(self, region: Set[Vertex]) -> Dict[Vertex, int]:
        """Re-peel the region with the outside pinned: at threshold t, a
        pinned neighbor supports a region vertex iff its (fixed) core is
        >= t; region peers support while still alive."""
        alive = set(region)
        new_core: Dict[Vertex, int] = {x: 0 for x in region}
        t = 1
        while alive:
            # evict everything that cannot support level t
            changed = True
            while changed:
                changed = False
                for x in list(alive):
                    s = 0
                    for y, wt in self.graph.neighbors(x).items():
                        if (y in alive) or (
                            y not in region and self._core[y] >= t
                        ):
                            s += wt
                    if s < t:
                        alive.discard(x)
                        new_core[x] = t - 1
                        changed = True
            t += 1
        return new_core

    def _support_ok(self, y: Vertex) -> bool:
        """Does pinned vertex y still meet its core's support requirement
        (a necessary condition; used as the expansion trigger)?"""
        t = self._core[y]
        if t == 0:
            return True
        s = sum(
            wt
            for z, wt in self.graph.neighbors(y).items()
            if self._core[z] >= t
        )
        return s >= t

    def attempt_repair(self, region: Set[Vertex]):
        """One repair attempt confined to ``region``.

        Re-peels the region, tentatively commits, and verifies the pinned
        frontier.  Returns ``(changed, violated)``: on success ``violated``
        is empty and the commit stands; otherwise the commit is rolled
        back and ``violated`` holds the pinned vertices whose support
        assumptions broke (callers expand the region around them and
        retry — the parallel scheme re-locks the expansion first).
        """
        new_core = self._repeel_region(region)
        changed = [x for x in region if new_core[x] != self._core[x]]
        old = {x: self._core[x] for x in changed}
        for x in changed:
            self._core[x] = new_core[x]
        violated: Set[Vertex] = set()
        for x in changed:
            for y in self.graph.neighbors(x):
                if y not in region and not self._support_ok(y):
                    violated.add(y)
        if violated:
            for x, c in old.items():
                self._core[x] = c
        return changed, violated

    def expansion_region(self, violated: Set[Vertex]) -> Set[Vertex]:
        """The extra candidate region induced by frontier violations."""
        return violated | self._band_region(
            violated,
            lo=max(0, min(self._core[y] for y in violated) - 1),
            hi=max(self._core[y] for y in violated),
        )

    def _repair(self, seeds, lo: int, hi: int) -> WeightedOpStats:
        stats = WeightedOpStats()
        region = self._band_region(seeds, lo, hi)
        while True:
            changed, violated = self.attempt_repair(region)
            if not violated:
                stats.region = sorted(region, key=repr)
                stats.changed = sorted(changed, key=repr)
                return stats
            region |= self.expansion_region(violated)
            stats.expansions += 1
