"""Edge-weighted undirected dynamic graph.

Weights are positive integers (as in Zhou et al.'s weighted-core work;
integer weights keep the peeling thresholds discrete).  The weighted
degree of a vertex is the sum of its incident weights — the degree notion
the paper's Section 2 describes for weighted graphs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Tuple

Vertex = Hashable
WeightedEdge = Tuple[Vertex, Vertex, int]

__all__ = ["WeightedDynamicGraph"]


class WeightedDynamicGraph:
    """Undirected simple graph with positive integer edge weights."""

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[WeightedEdge] | None = None) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, int]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v, w in edges:
                if not self.has_edge(u, v):
                    self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def edges(self) -> Iterator[WeightedEdge]:
        """Each undirected weighted edge once (canonical orientation)."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = (u, v) if repr(u) <= repr(v) else (v, u)
                if key not in seen:
                    seen.add(key)
                    yield (*key, w)

    def neighbors(self, u: Vertex) -> Dict[Vertex, int]:
        """Live mapping ``neighbor -> weight``."""
        return self._adj[u]

    def degree(self, u: Vertex) -> int:
        """Number of incident edges (unweighted degree)."""
        return len(self._adj[u])

    def weighted_degree(self, u: Vertex) -> int:
        """Sum of incident weights — the paper's weighted-graph degree."""
        return sum(self._adj[u].values())

    def weight(self, u: Vertex, v: Vertex) -> int:
        return self._adj[u][v]

    def has_vertex(self, u: Vertex) -> bool:
        return u in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        if u not in self._adj:
            self._adj[u] = {}

    def add_edge(self, u: Vertex, v: Vertex, w: int) -> None:
        if u == v:
            raise ValueError(f"self-loop not allowed: {u!r}")
        if not isinstance(w, int) or w < 1:
            raise ValueError(f"weight must be a positive integer, got {w!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            raise ValueError(f"edge already present: ({u!r}, {v!r})")
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> int:
        """Remove the edge and return its weight."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge not present: ({u!r}, {v!r})")
        w = self._adj[u].pop(v)
        self._adj[v].pop(u)
        self._num_edges -= 1
        return w

    def copy(self) -> "WeightedDynamicGraph":
        g = WeightedDynamicGraph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}  # lint: ok[RL005]
        g._num_edges = self._num_edges
        return g

    def __contains__(self, u: Vertex) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WeightedDynamicGraph(n={self.num_vertices}, m={self.num_edges})"
