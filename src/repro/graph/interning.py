"""Vertex interning: stable external-id ↔ dense-int mapping.

The paper's C++ implementation (Section 5.2) stores adjacency, core
numbers and the ``d_out^+``/``d_in*`` counters in flat arrays indexed by
dense integer vertex ids, and credits array storage over tree/hash
storage for JER's speed.  Python callers, however, want to use arbitrary
hashable vertex ids (user ids, string labels, tuples).  The
:class:`VertexInterner` bridges the two worlds: every external id is
interned **once** at the library boundary and becomes a dense int id
``0..n-1`` that every internal layer — :class:`~repro.graph.intgraph.IntGraph`
adjacency, :class:`~repro.core.state.OrderState` counters, OM labels,
lock tables — can use as a direct array index.

Stability rules (relied on by the maintenance algorithms and by the
snapshot/history layers):

* ids are assigned in first-seen order and **never reused or remapped** —
  removing a vertex from a graph does not free its id, and re-adding the
  same external id yields the same int id;
* the mapping only grows; ``len(interner)`` is the id space size, which
  is exactly the slot count every array-backed structure must cover.

The *identity regime* is tracked as an optimization: as long as every
interned external id is the int equal to its assigned id (the common
case for generator/dataset graphs with vertices ``0..n-1`` inserted in
order), translation is skipped entirely by the
:class:`~repro.graph.dynamic_graph.DynamicGraph` wrapper.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

Vertex = Hashable

__all__ = ["VertexInterner", "ShardedInterner", "stable_shard"]


def stable_shard(x: Vertex, nshards: int) -> int:
    """Content-hash shard assignment: stable across runs and restarts.

    Placement must be a pure function of the *external* id — deriving it
    from interner arrival order would re-shard vertices after a crash
    (recovery re-interns in journal-replay order, which differs from the
    live admission order whenever an aborted attempt interned first).
    Small non-negative ints (the benchmark workloads) shard by value so
    uniform workloads stay balanced; everything else hashes its ``repr``
    through sha256, which python's per-process ``hash()`` randomization
    cannot perturb.
    """
    if isinstance(x, int) and not isinstance(x, bool) and x >= 0:
        return x % nshards
    digest = hashlib.sha256(repr(x).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % nshards


class VertexInterner:
    """Growable, serializable external-id ↔ dense-int-id mapping."""

    __slots__ = ("_to_int", "_to_ext", "identity")

    def __init__(self, externals: Iterable[Vertex] = ()) -> None:
        self._to_int: Dict[Vertex, int] = {}
        self._to_ext: List[Vertex] = []
        #: True while every interned id is an int equal to its slot index,
        #: letting wrappers skip translation entirely.
        self.identity = True
        for x in externals:
            self.intern(x)

    # ------------------------------------------------------------------
    # core mapping
    # ------------------------------------------------------------------
    def intern(self, x: Vertex) -> int:
        """Return the int id of ``x``, assigning the next free id if new."""
        i = self._to_int.get(x)
        if i is None:
            i = len(self._to_ext)
            self._to_int[x] = i
            self._to_ext.append(x)
            if self.identity and x != i:
                self.identity = False
        return i

    def intern_many(self, xs: Iterable[Vertex]) -> List[int]:
        """Intern a sequence of external ids (boundary bulk helper)."""
        intern = self.intern
        return [intern(x) for x in xs]

    def lookup(self, x: Vertex) -> int:
        """The int id of ``x``; raises ``KeyError`` if never interned."""
        return self._to_int[x]

    def lookup_default(self, x: Vertex, default=None):
        """The int id of ``x``, or ``default`` if never interned."""
        return self._to_int.get(x, default)

    def external(self, i: int) -> Vertex:
        """The external id owning int id ``i``."""
        return self._to_ext[i]

    def externals(self, ids: Iterable[int]) -> List[Vertex]:
        """Map int ids back to external ids (boundary bulk helper)."""
        ext = self._to_ext
        return [ext[i] for i in ids]

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._to_ext)

    def __contains__(self, x: Vertex) -> bool:
        return x in self._to_int

    def __iter__(self) -> Iterator[Vertex]:
        """External ids in id order (id ``i`` is the i-th yielded)."""
        return iter(self._to_ext)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " identity" if self.identity else ""
        return f"VertexInterner(n={len(self._to_ext)}{tag})"

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_list(self) -> List[Vertex]:
        """The external-id table; element ``i`` owns int id ``i``."""
        return list(self._to_ext)

    @classmethod
    def from_list(cls, externals: Iterable[Vertex]) -> "VertexInterner":
        """Rebuild from :meth:`to_list` output (ids preserved)."""
        it = cls()
        for x in externals:
            it.intern(x)
        if len(it._to_ext) != len(it._to_int):
            raise ValueError("duplicate external id in interner table")
        return it

    def copy(self) -> "VertexInterner":
        it = VertexInterner()
        it._to_int = dict(self._to_int)
        it._to_ext = list(self._to_ext)
        it.identity = self.identity
        return it


class ShardedInterner:
    """Shard-aware interning: dense global ids plus ``(shard, local)``.

    The router's view of the vertex space (:mod:`repro.service.sharding`):
    every external id is interned once into a *global* dense int (the
    index into the shared refinement arrays of the process backend), its
    shard is fixed by :func:`stable_shard`, and within the shard it gets
    a dense *local* id in per-shard arrival order.  All three views only
    grow; none is ever remapped.
    """

    __slots__ = ("nshards", "_global", "_shard", "_local", "_counts")

    def __init__(self, nshards: int) -> None:
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        self.nshards = nshards
        self._global = VertexInterner()
        self._shard: List[int] = []      # gid -> shard
        self._local: List[int] = []      # gid -> local id within shard
        self._counts = [0] * nshards     # next local id per shard

    def intern(self, x: Vertex) -> int:
        """Global dense id of ``x``, assigning shard + local id if new."""
        n = len(self._global)
        gid = self._global.intern(x)
        if gid == n:  # newly assigned
            s = stable_shard(x, self.nshards)
            self._shard.append(s)
            self._local.append(self._counts[s])
            self._counts[s] += 1
        return gid

    def shard_of(self, x: Vertex) -> int:
        """Shard owning ``x`` (pure content hash; interns as a side
        effect so the global id is dense by admission order)."""
        return self._shard[self.intern(x)]

    def split(self, gid: int) -> Tuple[int, int]:
        """``gid -> (shard, local_id)``."""
        return self._shard[gid], self._local[gid]

    def lookup(self, x: Vertex) -> int:
        return self._global.lookup(x)

    def external(self, gid: int) -> Vertex:
        return self._global.external(gid)

    def shard_size(self, shard: int) -> int:
        """Number of vertices owned by ``shard``."""
        return self._counts[shard]

    def owned(self, shard: int) -> List[int]:
        """Global ids owned by ``shard``, in local-id order."""
        return [g for g in range(len(self._shard))
                if self._shard[g] == shard]

    def __len__(self) -> int:
        return len(self._global)

    def __contains__(self, x: Vertex) -> bool:
        return x in self._global

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedInterner(n={len(self._global)}, "
                f"shards={self.nshards}, counts={self._counts})")
