"""The ``GraphCore`` protocol: the exact graph surface algorithms may use.

Every maintenance algorithm in :mod:`repro` (decomposition, the
sequential OI/OR kernels, the parallel OurI/OurR workers, the traversal
baseline) touches the graph through six operations only.  This module
pins those down as a :class:`typing.Protocol` so that

* new algorithms are written against the protocol, not a concrete
  substrate — they then run unchanged over the dict-of-sets
  :class:`~repro.graph.dictgraph.DictGraph`, the array-backed
  :class:`~repro.graph.intgraph.IntGraph`, and the public
  :class:`~repro.graph.dynamic_graph.DynamicGraph` wrapper;
* the boundary is lintable: ``repro-lint`` rule RL005 flags any module
  outside :mod:`repro.graph` that reaches past the protocol into raw
  adjacency storage (``g._adj[...]`` / ``g.adj[...]``).

The protocol is deliberately minimal.  Convenience operations
(``copy``, ``subgraph``, ``connected_component``) are substrate-specific
and not part of the contract algorithms may assume.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Protocol, Tuple, runtime_checkable

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["GraphCore", "Vertex", "Edge", "canonical_edge"]


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of an undirected edge.

    Canonicalization lets edge batches be deduplicated and compared
    regardless of endpoint order.  Falls back to a repr-based order for
    mixed-type vertices that do not support ``<``.
    """
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


@runtime_checkable
class GraphCore(Protocol):
    """Minimal graph surface the core-maintenance algorithms rely on.

    ``neighbors`` must return a *live* view: iterating it reflects
    concurrent mutation, and algorithms snapshot (``list(...)``) where
    the paper's pseudocode requires a frozen scan.  ``add_edge`` and
    ``remove_edge`` are strict (raise on duplicate insert / missing
    remove) so drivers cannot silently desynchronize from the
    core-number state they carry.
    """

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def vertices(self) -> Iterator[Vertex]: ...

    def neighbors(self, u: Vertex) -> Iterable[Vertex]: ...

    def degree(self, u: Vertex) -> int: ...

    def has_vertex(self, u: Vertex) -> bool: ...

    def has_edge(self, u: Vertex, v: Vertex) -> bool: ...

    def add_vertex(self, u: Vertex) -> None: ...

    def add_edge(self, u: Vertex, v: Vertex) -> None: ...

    def remove_edge(self, u: Vertex, v: Vertex) -> None: ...
