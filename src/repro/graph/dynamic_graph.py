"""Undirected, unweighted, simple dynamic graph — the public facade.

This is the substrate mutated by every core-maintenance algorithm in the
library.  The paper (Section 3) assumes graphs with no self-loops and no
repeated edges; directed inputs are symmetrized on load.  Vertices are
arbitrary hashable IDs (the evaluation uses dense integers).

Since the representation refactor (see ``docs/representation.md``),
``DynamicGraph`` is a thin compatibility wrapper over the array-backed
:class:`~repro.graph.intgraph.IntGraph` plus a
:class:`~repro.graph.interning.VertexInterner`:

* external hashable ids are interned to dense ints **once**, on first
  mention, at this boundary;
* all storage and all hot loops run on int ids (maintenance facades
  unwrap ``g.ig``/``g.interner`` and work int-natively);
* results are un-interned on the way back out, so the public API is
  unchanged — arbitrary hashable vertex ids in, the same ids out.

``neighbors`` returns a live set-like *view* (:class:`_NbrView`) over
the int adjacency, preserving the legacy contract that the returned
object reflects later mutation.  The previous dict-of-sets storage
survives as :class:`~repro.graph.dictgraph.DictGraph` for differential
testing and the representation benchmark.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.graph.core import canonical_edge
from repro.graph.interning import VertexInterner
from repro.graph.intgraph import IntGraph

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["DynamicGraph", "Vertex", "Edge", "canonical_edge"]


class _NbrView:
    """Live, set-like view of one vertex's adjacency in external-id terms.

    Iteration, membership and ``len`` reflect the graph's current state;
    the view must not be mutated.  Algorithms snapshot (``list(view)``)
    where the paper's pseudocode requires a frozen scan.
    """

    __slots__ = ("_ig", "_interner", "_iu")

    def __init__(self, ig: IntGraph, interner: VertexInterner, iu: int) -> None:
        self._ig = ig
        self._interner = interner
        self._iu = iu

    def __iter__(self) -> Iterator[Vertex]:
        ext = self._interner.external
        return (ext(i) for i in self._ig.neighbors(self._iu))

    def __contains__(self, x: object) -> bool:
        i = self._interner.lookup_default(x)
        return i is not None and self._ig.has_edge(self._iu, i)

    def __len__(self) -> int:
        return self._ig.degree(self._iu)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{{', '.join(repr(v) for v in self)}}}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (_NbrView, set, frozenset)):
            return set(self) == set(other)
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("neighbor views are live and unhashable")


class DynamicGraph:
    """An undirected simple graph supporting edge insertion and removal.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs used to initialize the graph.
        Self-loops raise; duplicate edges (in either orientation) are
        ignored during bulk construction, mirroring the paper's dataset
        preprocessing ("all of the self-loops and repeated edges are
        removed").

    Examples
    --------
    >>> g = DynamicGraph([(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.add_edge(0, 2)
    >>> sorted(g.neighbors(2))
    [0, 1]
    """

    __slots__ = ("ig", "interner")

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        #: The array-backed substrate; maintenance facades run on it
        #: int-natively.  Treat as read-only outside ``repro``.
        self.ig = IntGraph()
        #: The external-id ↔ int-id mapping shared with :attr:`ig`.
        self.interner = VertexInterner()
        if edges is not None:
            for u, v in edges:
                if u == v:
                    raise ValueError(f"self-loop not allowed: {u!r}")
                if not self.has_edge(u, v):
                    self.add_edge(u, v)

    @classmethod
    def _wrap(cls, ig: IntGraph, interner: VertexInterner) -> "DynamicGraph":
        """Wrap existing substrate objects without copying (in-package)."""
        g = cls.__new__(cls)
        g.ig = ig
        g.interner = interner
        return g

    @classmethod
    def from_int_edges(
        cls, edges: Iterable[Tuple[int, int]], n: Optional[int] = None
    ) -> "DynamicGraph":
        """Fast build from *deduplicated, self-loop-free* int edges.

        Generator/dataset output (dense int vertices, already
        canonicalized by ``dedupe_edges``) skips the per-edge hashable
        round-trip: the interner is the identity on ``0..n-1`` and
        adjacency is bulk-appended.  No duplicate checks are performed.
        """
        edges = edges if isinstance(edges, list) else list(edges)
        if n is None:
            n = 1 + max((u if u > v else v for u, v in edges), default=-1)
        g = cls.__new__(cls)
        g.ig = IntGraph.from_canonical_edges(edges, n=n)
        g.interner = VertexInterner(range(g.ig.n_slots))
        return g

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently present (including isolated ones)."""
        return self.ig.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (derived from adjacency — stays
        correct under the thread backend, no post-run fixups)."""
        return self.ig.num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices (external ids, in first-seen order)."""
        ext = self.interner.external
        return (ext(i) for i in self.ig.vertices())

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once (canonical form)."""
        ext = self.interner.external
        for i, j in self.ig.edges():
            yield canonical_edge(ext(i), ext(j))

    def neighbors(self, u: Vertex) -> _NbrView:
        """The adjacency set ``u.adj`` of the paper.

        Returns a live set-like view; callers that mutate the graph while
        iterating must copy it first (the maintenance algorithms snapshot
        where the paper's pseudocode requires it).
        """
        i = self.interner.lookup_default(u)
        if i is None or not self.ig.has_vertex(i):
            raise KeyError(u)
        return _NbrView(self.ig, self.interner, i)

    def degree(self, u: Vertex) -> int:
        """``u.deg = |u.adj|``."""
        i = self.interner.lookup_default(u)
        if i is None or not self.ig.has_vertex(i):
            raise KeyError(u)
        return self.ig.degree(i)

    def has_vertex(self, u: Vertex) -> bool:
        i = self.interner.lookup_default(u)
        return i is not None and self.ig.has_vertex(i)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        it = self.interner
        i = it.lookup_default(u)
        if i is None:
            return False
        j = it.lookup_default(v)
        return j is not None and self.ig.has_edge(i, j)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        """Ensure ``u`` exists (idempotent)."""
        self.ig.add_vertex(self.interner.intern(u))

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert the undirected edge ``(u, v)``.

        Raises
        ------
        ValueError
            If ``u == v`` (self-loop) or the edge already exists.
        """
        if u == v:
            raise ValueError(f"self-loop not allowed: {u!r}")
        if self.has_edge(u, v):
            raise ValueError(f"edge already present: ({u!r}, {v!r})")
        it = self.interner
        self.ig.add_edge(it.intern(u), it.intern(v))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"edge not present: ({u!r}, {v!r})")
        it = self.interner
        self.ig.remove_edge(it.lookup(u), it.lookup(v))

    def remove_vertex(self, u: Vertex) -> None:
        """Remove ``u`` and all incident edges.

        The paper treats vertex removal as a sequence of edge removals; this
        helper exists for graph construction and tests.  The int id stays
        reserved: re-adding the same external id revives the same slot.
        """
        i = self.interner.lookup_default(u)
        if i is None or not self.ig.has_vertex(i):
            raise KeyError(u)
        self.ig.remove_vertex(i)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def copy(self) -> "DynamicGraph":
        """Deep copy of the adjacency structure (interner ids preserved)."""
        return DynamicGraph._wrap(self.ig.copy(), self.interner.copy())

    def subgraph(self, vertices: Iterable[Vertex]) -> "DynamicGraph":
        """Induced subgraph on ``vertices`` (used by the Traversal baseline
        and by tests that check subcore definitions)."""
        vs = set(vertices)
        g = DynamicGraph()
        for u in vs:
            g.add_vertex(u)
        for u in vs:
            if not self.has_vertex(u):
                continue  # tolerate absent vertices
            for v in self.neighbors(u):
                if v in vs and not g.has_edge(u, v):
                    g.add_edge(u, v)
        return g

    def average_degree(self) -> float:
        """``2m / n`` — the "AvgDeg" column of the paper's Table 1."""
        return self.ig.average_degree()

    def connected_component(self, start: Vertex) -> Set[Vertex]:
        """Vertices reachable from ``start`` (BFS)."""
        i = self.interner.lookup_default(start)
        if i is None or not self.ig.has_vertex(i):
            raise KeyError(start)
        ext = self.interner.external
        return {ext(j) for j in self.ig.connected_component(i)}

    def __contains__(self, u: Vertex) -> bool:
        return self.has_vertex(u)

    def __len__(self) -> int:
        return self.ig.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicGraph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        mine = set(self.vertices())
        if mine != set(other.vertices()):
            return False
        for u in mine:
            if set(self.neighbors(u)) != set(other.neighbors(u)):
                return False
        return True

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("DynamicGraph is mutable and unhashable")
