"""Flat-slot per-vertex storage for int-id graphs.

The paper stores every per-vertex attribute (core number, ``d_out^+``,
``mcd``, the removal status ``t``) in arrays indexed by vertex id.
:class:`IntSlotMap` is the Python rendering of that layout: a dict-shaped
mapping whose backing store is a flat ``list`` of slots, so reads and
writes on int ids are direct list indexing with no hashing.  ``None`` is
a legitimate stored value (the state layer uses it for invalidated
``d_out``/``mcd`` caches), so a private ``_MISSING`` sentinel marks
empty slots instead.

:func:`make_vertex_map` picks the storage for a given graph substrate —
slot-backed over :class:`~repro.graph.intgraph.IntGraph`, plain ``dict``
over hashable-id substrates — so the state layer stays
storage-agnostic.

:func:`raw_get` / :func:`raw_set` are the untraced escape hatch: the
race detector (:mod:`repro.analysis.trace`) instruments state maps by
subclassing, and the relaxed/wipe accessors in ``core/state.py`` and
``core/korder.py`` must bypass that instrumentation regardless of which
storage is underneath.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["IntSlotMap", "make_vertex_map", "raw_map", "raw_get", "raw_set",
           "int64_buffer", "int64_view"]

#: bytes per int64 slot — the unit every shared flat array is sized in
INT64 = 8


def int64_buffer(n: int, fill: int = 0) -> array:
    """A flat int64 array of ``n`` slots, each set to ``fill``.

    The in-process rendering of the per-vertex flat arrays the process
    backend maps into ``multiprocessing.shared_memory``
    (:mod:`repro.parallel.procs`); both sides index it the same way.
    """
    return array("q", [fill]) * n if n else array("q")


def int64_view(buf, n: int) -> memoryview:
    """An int64[``n``] view over a writable bytes-like buffer.

    Used to overlay a ``SharedMemory.buf`` (or any ``memoryview``) with
    the same slot semantics as :func:`int64_buffer` — slot ``i`` of every
    attached process aliases the same 8 bytes.
    """
    return memoryview(buf)[: n * INT64].cast("q")


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


class IntSlotMap:
    """Dict-shaped mapping from dense int ids to values, backed by a list.

    Supports the mapping surface the core/state layer uses: item access,
    ``get``, ``in``, iteration over set keys, ``keys``/``items``/``values``,
    ``len``, ``copy``, and equality against any mapping.  Assigning to an
    id beyond the current slot count grows the store; deletion is not
    supported (vertex ids are never reused).

    >>> m = IntSlotMap()
    >>> m[3] = "x"
    >>> m[3], m.get(0, "d"), 3 in m, len(m)
    ('x', 'd', True, 1)
    """

    __slots__ = ("_slots", "_count")

    def __init__(self, data: Optional[Mapping[int, Any]] = None, n: int = 0) -> None:
        self._slots: List[Any] = [_MISSING] * n
        self._count = 0
        if data is not None:
            for k, v in data.items():
                self[k] = v

    # -- item access ---------------------------------------------------
    def __getitem__(self, k: int) -> Any:
        try:
            v = self._slots[k]
        except (IndexError, TypeError):
            raise KeyError(k) from None
        if v is _MISSING or k < 0:
            raise KeyError(k)
        return v

    def __setitem__(self, k: int, v: Any) -> None:
        slots = self._slots
        if k >= len(slots):
            slots.extend([_MISSING] * (k + 1 - len(slots)))
        if slots[k] is _MISSING:
            self._count += 1
        slots[k] = v

    def get(self, k: int, default: Any = None) -> Any:
        if isinstance(k, int) and 0 <= k < len(self._slots):
            v = self._slots[k]
            if v is not _MISSING:
                return v
        return default

    def __contains__(self, k: object) -> bool:
        return (
            isinstance(k, int)
            and 0 <= k < len(self._slots)
            and self._slots[k] is not _MISSING
        )

    # -- iteration -----------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        slots = self._slots
        return (i for i in range(len(slots)) if slots[i] is not _MISSING)

    def keys(self) -> Iterator[int]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        return (v for v in self._slots if v is not _MISSING)

    def items(self) -> Iterator[Tuple[int, Any]]:
        slots = self._slots
        return ((i, slots[i]) for i in range(len(slots)) if slots[i] is not _MISSING)

    def __len__(self) -> int:
        return self._count

    # -- bulk ----------------------------------------------------------
    def copy(self) -> "IntSlotMap":
        m = self.__class__.__new__(self.__class__)
        m._slots = list(self._slots)
        m._count = self._count
        return m

    def slots(self) -> List[Any]:
        """The raw backing list (``_MISSING`` sentinels included), for
        in-package kernels that scan all slots at C speed."""
        return self._slots

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntSlotMap):
            return dict(self.items()) == dict(other.items())
        if isinstance(other, Mapping) or isinstance(other, dict):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("IntSlotMap is mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntSlotMap({dict(self.items())!r})"


def make_vertex_map(graph: Any, data: Optional[Mapping] = None):
    """Storage for a per-vertex attribute map over ``graph``.

    Returns an :class:`IntSlotMap` (sized to the graph's id space) when
    the substrate is an :class:`~repro.graph.intgraph.IntGraph`, else a
    plain ``dict`` — keeping the state layer storage-agnostic.
    """
    n = getattr(graph, "n_slots", None)
    if n is not None:
        return IntSlotMap(data, n=n)
    return dict(data) if data is not None else {}


def raw_map(m: Any) -> Any:
    """The C-speed indexable view of a vertex map, for hot read loops.

    Returns the backing list for :class:`IntSlotMap` (list indexing) and
    the mapping itself for plain dicts (hash lookup) — either way,
    ``raw_map(m)[k]`` costs one C-level subscript instead of a
    Python-level ``__getitem__`` call.  Only safe when every accessed key
    is known to be present (a missing slot yields the ``_MISSING``
    sentinel / ``IndexError`` rather than ``KeyError``) and when tracing
    must not see the reads — kernels using it are gated on
    ``trace is None``.
    """
    if isinstance(m, IntSlotMap):
        return m._slots
    return m


def raw_get(m: Any, k: Any, default: Any = None) -> Any:
    """Read ``m[k]`` bypassing any tracing subclass override.

    The race detector's traced maps override ``get``/``__getitem__``;
    the paper's *relaxed* (intentionally unsynchronized) reads must not
    be reported, so they dispatch through the base class explicitly.
    """
    if isinstance(m, IntSlotMap):
        return IntSlotMap.get(m, k, default)
    return dict.get(m, k, default)


def raw_set(m: Any, k: Any, v: Any) -> None:
    """Write ``m[k] = v`` bypassing any tracing subclass override."""
    if isinstance(m, IntSlotMap):
        IntSlotMap.__setitem__(m, k, v)
    else:
        dict.__setitem__(m, k, v)
