"""Dict-of-sets graph substrate (the legacy representation).

This is the original storage behind :class:`DynamicGraph` before the
integer-interned refactor: adjacency as ``dict[vertex, set[vertex]]``
over arbitrary hashable vertex ids.  It is kept as a first-class
substrate because

* it is the differential-testing twin of the array-backed
  :class:`~repro.graph.intgraph.IntGraph` — the representation
  differential tests assert both produce identical core numbers and
  k-orders on random dynamic workloads;
* the ``repro-bench representation`` workload measures the array
  backend's speedup against it (the committed ``BENCH_*.json`` entries
  track that ratio over time);
* algorithms written against the :class:`~repro.graph.core.GraphCore`
  protocol can be exercised over a hashable-id substrate directly,
  without an interner in the loop.

Sets give O(1) membership checks for the ``has_edge`` pre-checks and
O(deg) neighbor scans, matching the paper's cost model.  All mutating
operations are *strict*: inserting an existing edge or removing a
missing one raises, so maintenance drivers cannot silently
desynchronize from the core-number state they carry.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from repro.graph.core import canonical_edge

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["DictGraph"]


class DictGraph:
    """An undirected simple graph over hashable ids, stored as dict-of-sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs used to initialize the graph.
        Self-loops raise; duplicate edges (in either orientation) are
        ignored during bulk construction, mirroring the paper's dataset
        preprocessing ("all of the self-loops and repeated edges are
        removed").

    Examples
    --------
    >>> g = DictGraph([(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.add_edge(0, 2)
    >>> sorted(g.neighbors(2))
    [0, 1]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                if u == v:
                    raise ValueError(f"self-loop not allowed: {u!r}")
                if not self.has_edge(u, v):
                    self.add_edge(u, v)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently present (including isolated ones)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once (canonical form)."""
        seen: Set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                e = canonical_edge(u, v)
                if e not in seen:
                    seen.add(e)
                    yield e

    def neighbors(self, u: Vertex) -> Set[Vertex]:
        """The adjacency set ``u.adj`` of the paper.

        Returns the live set; callers that mutate the graph while iterating
        must copy it first (the maintenance algorithms snapshot where the
        paper's pseudocode requires it).
        """
        return self._adj[u]

    def degree(self, u: Vertex) -> int:
        """``u.deg = |u.adj|``."""
        return len(self._adj[u])

    def has_vertex(self, u: Vertex) -> bool:
        return u in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        """Ensure ``u`` exists (idempotent)."""
        if u not in self._adj:
            self._adj[u] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert the undirected edge ``(u, v)``.

        Raises
        ------
        ValueError
            If ``u == v`` (self-loop) or the edge already exists.
        """
        if u == v:
            raise ValueError(f"self-loop not allowed: {u!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            raise ValueError(f"edge already present: ({u!r}, {v!r})")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"edge not present: ({u!r}, {v!r})")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_vertex(self, u: Vertex) -> None:
        """Remove ``u`` and all incident edges.

        The paper treats vertex removal as a sequence of edge removals; this
        helper exists for graph construction and tests.
        """
        for v in list(self._adj[u]):
            self.remove_edge(u, v)
        del self._adj[u]

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def copy(self) -> "DictGraph":
        """Deep copy of the adjacency structure."""
        g = DictGraph()
        g._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "DictGraph":
        """Induced subgraph on ``vertices`` (used by the Traversal baseline
        and by tests that check subcore definitions)."""
        vs = set(vertices)
        g = DictGraph()
        for u in vs:
            g.add_vertex(u)
        for u in vs:
            for v in self._adj.get(u, ()):  # tolerate absent vertices
                if v in vs and not g.has_edge(u, v):
                    g.add_edge(u, v)
        return g

    def average_degree(self) -> float:
        """``2m / n`` — the "AvgDeg" column of the paper's Table 1."""
        n = self.num_vertices
        return (2.0 * self._num_edges / n) if n else 0.0

    def connected_component(self, start: Vertex) -> Set[Vertex]:
        """Vertices reachable from ``start`` (BFS)."""
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return seen

    def __contains__(self, u: Vertex) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DictGraph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DictGraph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("DictGraph is mutable and unhashable")
