"""Dynamic graph substrate: storage, generators, I/O, and dataset registry.

The paper operates on undirected, unweighted simple graphs that change by
edge insertions and removals.  :class:`~repro.graph.dynamic_graph.DynamicGraph`
is the storage every maintenance algorithm in :mod:`repro` mutates;
:mod:`repro.graph.generators` builds the synthetic graph families used by the
evaluation; :mod:`repro.graph.datasets` provides scaled stand-ins for the
SNAP/KONECT datasets of the paper's Table 1.
"""

from repro.graph.core import GraphCore, canonical_edge
from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.interning import VertexInterner
from repro.graph.intgraph import IntGraph
from repro.graph.storage import IntSlotMap, make_vertex_map
from repro.graph.generators import (
    erdos_renyi,
    barabasi_albert,
    rmat,
    lattice,
    powerlaw_cluster,
    temporal_stream,
)
from repro.graph.datasets import DATASETS, load_dataset, dataset_names

__all__ = [
    "DynamicGraph",
    "DictGraph",
    "IntGraph",
    "IntSlotMap",
    "GraphCore",
    "VertexInterner",
    "canonical_edge",
    "make_vertex_map",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "lattice",
    "powerlaw_cluster",
    "temporal_stream",
    "DATASETS",
    "load_dataset",
    "dataset_names",
]
