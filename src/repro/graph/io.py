"""Edge-list I/O.

SNAP and KONECT publish graphs as whitespace-separated edge lists with
optional ``#``/``%`` comment lines and optional per-edge metadata columns
(weights, timestamps).  These readers/writers let users run the library on
the paper's real datasets when they have them locally; the bundled
experiments use the synthetic stand-ins from :mod:`repro.graph.datasets`.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path
from typing import (
    IO, Dict, Iterable, Iterator, List, Optional, Tuple, Union,
)

from repro.graph.generators import dedupe_edges
from repro.graph.interning import VertexInterner

Edge = Tuple[int, int]
PathLike = Union[str, Path]

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_temporal_edge_list",
    "write_temporal_edge_list",
    "canon_record",
    "write_op_trace",
    "read_op_trace",
    "iter_op_trace",
    "op_trace_digest",
]


def _open(path: PathLike, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(
    path: PathLike,
    dedupe: bool = True,
    strict: bool = True,
    counters: Optional[Dict[str, int]] = None,
    interner: Optional[VertexInterner] = None,
) -> List[Edge]:
    """Read a SNAP/KONECT-style edge list.

    Lines starting with ``#`` or ``%`` are comments.  Only the first two
    columns are used; extra columns (weights, timestamps) are ignored.
    With ``dedupe`` (the default, matching the paper's preprocessing),
    self-loops and repeated edges are dropped and edges canonicalized.

    With ``strict=False``, malformed lines (fewer than two columns or
    non-integer endpoints) and self-loops are *counted and skipped*
    instead of raising — the file-level twin of the serving engine's
    request quarantine (:mod:`repro.service`).  Pass a ``counters`` dict
    to receive the tallies: ``kept`` (edge lines parsed), ``malformed``
    and ``self_loops`` (both always 0 under ``strict=True``, which raises
    on the first malformed line instead).

    Pass an ``interner`` to translate file ids into dense int ids *at
    the parse boundary*: the returned edges are then interner ids, ready
    for :meth:`~repro.graph.dynamic_graph.DynamicGraph.from_int_edges`
    without a second pass over the edge list.  SNAP/KONECT files often
    use sparse or one-based vertex ids, so interning here is also what
    keeps downstream array storage dense.  With ``counters``, the tallies
    gain ``interner_hits`` (endpoint already interned) and
    ``interner_misses`` (endpoint newly assigned an id); both are 0 when
    no interner is given.
    """
    edges: List[Edge] = []
    malformed = 0
    self_loops = 0
    interner_hits = 0
    interner_misses = 0
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            try:
                u, v = int(parts[0]), int(parts[1])
            except (ValueError, IndexError):
                if strict:
                    raise
                malformed += 1
                continue
            if not strict and u == v:
                self_loops += 1
                continue
            if interner is not None:
                if u in interner:
                    interner_hits += 1
                else:
                    interner_misses += 1
                if v in interner:
                    interner_hits += 1
                else:
                    interner_misses += 1
                u, v = interner.intern(u), interner.intern(v)
            edges.append((u, v))
    if counters is not None:
        counters.update(kept=len(edges), malformed=malformed,
                        self_loops=self_loops,
                        interner_hits=interner_hits,
                        interner_misses=interner_misses)
    return dedupe_edges(edges) if dedupe else edges


def write_edge_list(path: PathLike, edges: Iterable[Edge]) -> None:
    """Write edges one per line, space separated."""
    with _open(path, "w") as fh:
        for u, v in edges:
            fh.write(f"{u} {v}\n")


def read_temporal_edge_list(
    path: PathLike,
) -> List[Tuple[int, int, int]]:
    """Read a KONECT temporal edge list: ``u v [weight] timestamp``.

    KONECT temporal files carry four columns (``u v w t``); three-column
    files are read as ``u v t``.  Result is sorted by timestamp, self-loops
    dropped, duplicates kept (they are distinct events in time).
    """
    out: List[Tuple[int, int, int]] = []
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            t = int(float(parts[3] if len(parts) >= 4 else parts[2]))
            out.append((u, v, t))
    out.sort(key=lambda e: e[2])
    return out


def write_temporal_edge_list(
    path: PathLike, edges: Iterable[Tuple[int, int, int]]
) -> None:
    """Write ``(u, v, t)`` triples one per line."""
    with _open(path, "w") as fh:
        for u, v, t in edges:
            fh.write(f"{u} {v} {t}\n")


# ----------------------------------------------------------------------
# timed-operation traces (repro.traffic, docs/traffic.md)
# ----------------------------------------------------------------------
def canon_record(rec: Dict) -> str:
    """A record's canonical JSON form — sorted keys, no whitespace — the
    same canon the write-ahead journal uses, so a trace file has exactly
    one byte representation and its digest is meaningful."""
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def write_op_trace(path: PathLike, header: Dict,
                   ops: Iterable[Dict]) -> str:
    """Write a timed-operation trace: one canonical-JSONL record per
    line, the header first.  Gzip-transparent (``.gz`` suffix).  Returns
    the sha256 hex digest of the *uncompressed* canonical bytes — the
    trace's identity for determinism gates."""
    h = hashlib.sha256()
    with _open(path, "w") as fh:
        line = canon_record({"kind": "header", **header}) + "\n"
        fh.write(line)
        h.update(line.encode("utf-8"))
        for rec in ops:
            line = canon_record(rec) + "\n"
            fh.write(line)
            h.update(line.encode("utf-8"))
    return h.hexdigest()


def read_op_trace(path: PathLike) -> Tuple[Dict, List[Dict]]:
    """Read a whole trace into memory: ``(header, ops)``.  For million-op
    files prefer the streaming :func:`iter_op_trace`."""
    it = iter_op_trace(path)
    header = next(it)
    return header, list(it)


def iter_op_trace(path: PathLike) -> Iterator[Dict]:
    """Stream a trace file: yields the header record first, then every
    op record in file order — the growing-graph-iterator idiom (datasets
    as iterators of timed deltas).  Raises ``ValueError`` on a missing
    or malformed header and on malformed op records (a trace is a
    *generated* artifact; unlike :func:`read_edge_list` there is no
    lenient mode — a corrupt trace must fail loudly, not replay
    differently)."""
    with _open(path, "r") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"empty trace file: {path}")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed trace header: {exc}") from exc
        if header.get("kind") != "header":
            raise ValueError(
                f"first trace record must be the header, got {first!r}"
            )
        yield header
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"malformed trace record at line {lineno}: {exc}"
                ) from exc
            if "t" not in rec or "op" not in rec:
                raise ValueError(
                    f"trace record at line {lineno} lacks 't'/'op': {rec!r}"
                )
            yield rec


def op_trace_digest(path: PathLike) -> str:
    """sha256 of a trace's canonical uncompressed bytes.  Re-canonizes
    every record, so the digest is stable across gzip vs plain storage
    and any cosmetic re-encoding of the same records."""
    h = hashlib.sha256()
    for rec in iter_op_trace(path):
        h.update((canon_record(rec) + "\n").encode("utf-8"))
    return h.hexdigest()
