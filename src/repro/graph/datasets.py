"""Scaled synthetic stand-ins for the paper's evaluation datasets (Table 1).

The paper evaluates on 12 static graphs (SNAP/KONECT real graphs plus
ER/BA/RMAT synthetics) and 4 temporal KONECT graphs, each with millions of
edges.  Those datasets are not redistributable here and million-edge graphs
are out of reach for pure-Python per-edge experiments, so every dataset gets
a **seeded synthetic stand-in** matched on the structural properties the
paper identifies as performance-relevant:

* average degree (Table 1, "AvgDeg") — drives per-edge work `|E+|`;
* the *shape* of the core-number distribution (Figure 3) — drives how much
  parallelism the level-partitioned baselines JEI/JER and MI/MR can find
  (skewed: some parallelism; single-valued, as in BA: none);
* the max-k regime (tiny for road networks, huge for web graphs).

Each entry records the paper's original statistics so benchmark reports can
print paper-vs-stand-in side by side.  Real SNAP/KONECT files can still be
used through :func:`repro.graph.io.read_edge_list`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph import generators as gen

Edge = Tuple[int, int]

__all__ = ["Dataset", "DATASETS", "load_dataset", "dataset_names", "PaperStats"]


@dataclass(frozen=True)
class PaperStats:
    """The original dataset's row from the paper's Table 1."""

    n: int
    m: int
    avg_deg: float
    max_k: int


@dataclass(frozen=True)
class Dataset:
    """A named, seeded stand-in for one of the paper's evaluation graphs."""

    name: str
    kind: str  # "real-sim" | "synthetic" | "temporal-sim"
    description: str
    paper: PaperStats
    _edge_fn: Callable[[int], List[Edge]] = field(repr=False)

    def edges(self, seed: int = 0) -> List[Edge]:
        """Generate the stand-in's edge list (deterministic per seed)."""
        return self._edge_fn(seed)

    def graph(self, seed: int = 0) -> DynamicGraph:
        """Build the full stand-in graph.

        Generator output is already deduplicated dense-int edges, so the
        graph is built through the interned
        :meth:`~repro.graph.dynamic_graph.DynamicGraph.from_int_edges`
        fast path: an identity interner over ``0..n-1`` and a bulk
        adjacency build with no per-edge hashing or duplicate checks.
        """
        return DynamicGraph.from_int_edges(self.edges(seed))


def _temporal_edges(n: int, m: int, burst: float) -> Callable[[int], List[Edge]]:
    def build(seed: int) -> List[Edge]:
        return [(u, v) for u, v, _t in gen.temporal_stream(n, m, seed=seed, burst=burst)]

    return build


# ----------------------------------------------------------------------
# Registry.  Scale: ~3k-16k vertices, ~10k-100k edges per graph, so the
# full 16-dataset sweep stays tractable in pure Python while preserving
# each graph's degree/core-shape profile.
# ----------------------------------------------------------------------
_RAW: List[Dataset] = [
    # --- real static graphs (SNAP / KONECT), Table 1 rows 1-9 ---
    Dataset(
        "livej",
        "real-sim",
        "LiveJournal social network: heavy-tailed, high avg degree, deep cores",
        PaperStats(4_847_571, 68_993_773, 14.23, 372),
        lambda seed: gen.powerlaw_cluster(8_000, 14, 0.6, seed=seed, k_min=1),
    ),
    Dataset(
        "patent",
        "real-sim",
        "US patent citations: sparse, moderate cores",
        PaperStats(6_009_555, 16_518_948, 2.75, 64),
        lambda seed: gen.rmat(13, edge_factor=2, a=0.45, b=0.25, c=0.2, seed=seed),
    ),
    Dataset(
        "wikitalk",
        "real-sim",
        "Wikipedia talk: very sparse with a dense core (1.7M degree-1 leaves)",
        PaperStats(2_394_385, 5_021_410, 2.10, 131),
        lambda seed: gen.kernel_leaves(300, 2_400, 12_000, double_attach=0.15, seed=seed),
    ),
    Dataset(
        "roadNet-CA",
        "real-sim",
        "California road network: bounded degree, max core 3",
        PaperStats(1_971_281, 5_533_214, 2.81, 3),
        lambda seed: gen.lattice(90, 90, diag_fraction=0.15, seed=seed),
    ),
    Dataset(
        "dbpedia",
        "real-sim",
        "DBpedia links: sparse powerlaw, shallow cores",
        PaperStats(3_966_925, 13_820_853, 3.48, 20),
        lambda seed: gen.powerlaw_cluster(10_000, 4, 0.2, seed=seed, k_min=1),
    ),
    Dataset(
        "baidu",
        "real-sim",
        "Baidu internal links: powerlaw, medium cores",
        PaperStats(2_141_301, 17_794_839, 8.31, 78),
        lambda seed: gen.powerlaw_cluster(6_000, 8, 0.4, seed=seed, k_min=1),
    ),
    Dataset(
        "pokec",
        "real-sim",
        "Pokec social network: dense, moderate-depth cores",
        PaperStats(1_632_804, 30_622_564, 18.75, 47),
        lambda seed: gen.powerlaw_cluster(4_000, 18, 0.3, seed=seed, k_min=2),
    ),
    Dataset(
        "wiki-talk-en",
        "real-sim",
        "English Wikipedia talk: skewed with deep core",
        PaperStats(2_987_536, 24_981_163, 8.36, 210),
        lambda seed: gen.rmat(12, edge_factor=4, a=0.62, b=0.17, c=0.17, seed=seed),
    ),
    Dataset(
        "wiki-links-en",
        "real-sim",
        "English Wikipedia links: densest graph, deepest cores",
        PaperStats(5_710_993, 130_160_392, 22.79, 821),
        lambda seed: gen.powerlaw_cluster(4_000, 24, 0.65, seed=seed, k_min=2),
    ),
    # --- synthetic graphs, Table 1 rows 10-12 (paper: n=1e6, m=8e6) ---
    Dataset(
        "ER",
        "synthetic",
        "Erdős–Rényi, average degree 8: narrow core distribution",
        PaperStats(1_000_000, 8_000_000, 8.0, 11),
        lambda seed: gen.erdos_renyi(8_000, 32_000, seed=seed),
    ),
    Dataset(
        "BA",
        "synthetic",
        "Barabási–Albert, k=4: every vertex has the same core number "
        "(the adversarial case for level-parallel baselines)",
        PaperStats(1_000_000, 8_000_000, 8.0, 8),
        lambda seed: gen.barabasi_albert(8_000, 4, seed=seed),
    ),
    Dataset(
        "RMAT",
        "synthetic",
        "R-MAT, average degree 8: strongly skewed cores",
        PaperStats(1_000_000, 8_000_000, 8.0, 237),
        lambda seed: gen.rmat(13, edge_factor=4, seed=seed),
    ),
    # --- temporal graphs (KONECT), Table 1 rows 13-16 ---
    Dataset(
        "DBLP",
        "temporal-sim",
        "DBLP co-authorship stream",
        PaperStats(1_824_701, 29_487_744, 16.17, 286),
        _temporal_edges(4_000, 32_000, burst=0.5),
    ),
    Dataset(
        "Flickr",
        "temporal-sim",
        "Flickr friendship stream",
        PaperStats(2_302_926, 33_140_017, 14.41, 600),
        _temporal_edges(4_500, 32_000, burst=0.6),
    ),
    Dataset(
        "StackOverflow",
        "temporal-sim",
        "StackOverflow interaction stream (densest temporal graph)",
        PaperStats(2_601_977, 63_497_050, 24.41, 198),
        _temporal_edges(3_000, 36_000, burst=0.4),
    ),
    Dataset(
        "wiki-edits-sh",
        "temporal-sim",
        "Serbo-Croatian Wikipedia edit stream",
        PaperStats(4_589_850, 40_578_944, 8.84, 47),
        _temporal_edges(7_000, 31_000, burst=0.25),
    ),
]

DATASETS: Dict[str, Dataset] = {d.name: d for d in _RAW}


def dataset_names(kind: str | None = None) -> List[str]:
    """Names of registered datasets, optionally filtered by kind."""
    return [d.name for d in _RAW if kind is None or d.kind == kind]


def load_dataset(name: str, seed: int = 0) -> DynamicGraph:
    """Build the stand-in graph for dataset ``name``."""
    try:
        ds = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None
    return ds.graph(seed)
