"""Array-backed graph over dense integer vertex ids.

This is the substrate the paper's C++ implementation actually uses
(Section 5.2: adjacency, core numbers and counters live in flat arrays
indexed by vertex id, and array storage is credited for JER's speed over
tree-based storage).  Vertices are dense ints ``0..n_slots-1`` —
typically produced by a :class:`~repro.graph.interning.VertexInterner`
at the library boundary — and every per-vertex attribute is a direct
list index, no hashing.

Layout
------
* ``_adj[i]`` is the neighbor **list** of vertex ``i`` (append-ordered).
  Lists beat sets for the dominant access pattern — whole-adjacency
  scans during decomposition and maintenance — and for memory.
* ``_sets[i]`` is a lazily materialized membership set, built only once
  vertex ``i``'s degree crosses :data:`MEMBER_THRESHOLD`; below that a
  linear scan of the list is faster than set overhead.  ``has_edge`` is
  therefore O(1) amortized on hubs and O(small) elsewhere.
* ``_present[i]`` tracks vertex liveness.  Ids are never reused: removing
  a vertex clears its adjacency but keeps the slot, so interner ids stay
  valid forever.

Counters are **derived, not stored**: ``num_edges`` recomputes from
adjacency lengths on demand.  This is deliberate — the old mutable
``_num_edges`` counter raced under the thread backend (concurrent
``+= 1`` from worker threads) and required a post-run recompute hack in
``parallel/threads.py``; deriving the count keeps it correct under any
interleaving because each endpoint's adjacency append is individually
atomic under the GIL.

Kernels inside :mod:`repro` that need bulk array access (the int
decomposition kernel, CSR export) use the sanctioned
:meth:`IntGraph.adjacency_lists` / :meth:`IntGraph.presence_mask`
accessors; everything outside :mod:`repro.graph` must stay behind the
:class:`~repro.graph.core.GraphCore` protocol (lint rule RL005).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]

__all__ = ["IntGraph", "MEMBER_THRESHOLD"]

#: Degree above which a per-vertex membership set is materialized for
#: ``has_edge``; below it a linear list scan wins.
MEMBER_THRESHOLD = 16


class IntGraph:
    """Undirected simple graph over dense int ids, adjacency as flat lists.

    Parameters
    ----------
    n:
        Number of vertex slots to pre-allocate (vertices ``0..n-1``, all
        present).  Further slots grow on demand via :meth:`add_vertex`.

    Examples
    --------
    >>> g = IntGraph(3)
    >>> g.add_edge(0, 1); g.add_edge(1, 2)
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_sets", "_present")

    def __init__(self, n: int = 0) -> None:
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._sets: List[Optional[Set[int]]] = [None] * n
        self._present: List[bool] = [True] * n

    # ------------------------------------------------------------------
    # bulk construction
    # ------------------------------------------------------------------
    @classmethod
    def from_canonical_edges(
        cls, edges: Iterable[Edge], n: Optional[int] = None
    ) -> "IntGraph":
        """Fast build from *deduplicated, self-loop-free* int edges.

        No per-edge duplicate checks are performed — callers must pass
        canonical edge lists (e.g. :func:`repro.graph.generators.dedupe_edges`
        output).  ``n`` pre-allocates the slot count; it is grown if an
        endpoint exceeds it.
        """
        g = cls(n or 0)
        adj = g._adj
        for u, v in edges:
            hi = u if u > v else v
            if hi >= len(adj):
                g._grow(hi + 1)
            adj[u].append(v)
            adj[v].append(u)
        return g

    def _grow(self, n: int) -> None:
        cur = len(self._adj)
        if n > cur:
            self._adj.extend([] for _ in range(n - cur))
            self._sets.extend([None] * (n - cur))
            self._present.extend([True] * (n - cur))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        """Size of the id space (present or not) — the array length every
        slot-indexed side structure must cover."""
        return len(self._adj)

    @property
    def num_vertices(self) -> int:
        """Number of present vertices (including isolated ones)."""
        return sum(self._present)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, derived from adjacency lengths.

        Derivation (not a mutable counter) is what keeps this correct
        under the thread backend — see the module docstring.
        """
        return sum(map(len, self._adj)) // 2

    def vertices(self) -> Iterator[int]:
        """Iterate over present vertex ids in id order."""
        present = self._present
        return (i for i in range(len(present)) if present[i])

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge once, as ``(min, max)`` pairs."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def neighbors(self, u: int) -> List[int]:
        """The adjacency list ``u.adj`` of the paper (live view).

        Callers that mutate the graph while iterating must copy first;
        the returned list must not be mutated directly.
        """
        if not self._present[u]:
            raise KeyError(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        """``u.deg = |u.adj|``."""
        if not self._present[u]:
            raise KeyError(u)
        return len(self._adj[u])

    def has_vertex(self, u: int) -> bool:
        return 0 <= u < len(self._present) and self._present[u]

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < len(self._adj)):
            return False
        s = self._sets[u]
        if s is not None:
            return v in s
        adj = self._adj[u]
        if len(adj) > MEMBER_THRESHOLD:
            s = set(adj)
            self._sets[u] = s
            return v in s
        return v in adj

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, u: int) -> None:
        """Ensure slot ``u`` exists and is present (idempotent)."""
        if u < 0:
            raise ValueError(f"vertex id must be non-negative: {u}")
        if u >= len(self._adj):
            self._grow(u + 1)
        elif not self._present[u]:
            self._present[u] = True

    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``(u, v)``.

        Raises
        ------
        ValueError
            If ``u == v`` (self-loop) or the edge already exists.
        """
        if u == v:
            raise ValueError(f"self-loop not allowed: {u!r}")
        if u < 0 or v < 0:
            raise ValueError(f"vertex id must be non-negative: {min(u, v)}")
        adj = self._adj
        if u >= len(adj) or v >= len(adj):
            self._grow(max(u, v) + 1)
        present = self._present
        if not present[u]:
            present[u] = True
        if not present[v]:
            present[v] = True
        # Inline duplicate check (the hot path of sequential maintenance):
        # same lazy-set logic as has_edge, without a second method call.
        au = adj[u]
        su = self._sets[u]
        if su is None and len(au) > MEMBER_THRESHOLD:
            su = set(au)
            self._sets[u] = su
        if (v in su) if su is not None else (v in au):
            raise ValueError(f"edge already present: ({u!r}, {v!r})")
        au.append(v)
        adj[v].append(u)
        if su is not None:
            su.add(v)
        sv = self._sets[v]
        if sv is not None:
            sv.add(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        # list.remove performs the same scan has_edge would, so the
        # presence check is folded into the removal itself.
        if u < 0 or v < 0 or u >= len(self._adj):
            raise KeyError(f"edge not present: ({u!r}, {v!r})")
        try:
            self._adj[u].remove(v)
        except ValueError:
            raise KeyError(f"edge not present: ({u!r}, {v!r})") from None
        self._adj[v].remove(u)
        s = self._sets[u]
        if s is not None:
            s.discard(v)
        s = self._sets[v]
        if s is not None:
            s.discard(u)

    def remove_vertex(self, u: int) -> None:
        """Remove ``u`` and all incident edges.

        The slot stays allocated (ids are never reused) but the vertex is
        no longer present; re-adding it via :meth:`add_vertex` revives the
        same id with an empty adjacency.
        """
        if not self.has_vertex(u):
            raise KeyError(u)
        for v in list(self._adj[u]):
            self.remove_edge(u, v)
        self._present[u] = False

    # ------------------------------------------------------------------
    # sanctioned bulk access (repro.graph internals and kernels only)
    # ------------------------------------------------------------------
    def adjacency_lists(self) -> List[List[int]]:
        """The raw per-slot adjacency lists, for in-package kernels.

        Returned lists are the live storage — treat as read-only.  Code
        outside :mod:`repro.graph` must use the :class:`GraphCore`
        surface instead (lint rule RL005).
        """
        return self._adj

    def presence_mask(self) -> List[bool]:
        """The raw per-slot presence flags, for in-package kernels."""
        return self._present

    def flat_adjacency(self) -> Tuple["array", "array"]:
        """CSR export: ``(indptr, targets)`` as int64 ``array('q')``s.

        Slot ``u``'s neighbours are ``targets[indptr[u]:indptr[u+1]]``;
        absent slots contribute an empty range.  This is the flat form
        the shared-memory refinement kernels consume
        (:mod:`repro.parallel.hindex`) — a snapshot, not live storage.
        """
        from array import array

        indptr = array("q", [0])
        targets = array("q")
        for nbrs in self._adj:
            targets.extend(nbrs)
            indptr.append(len(targets))
        return indptr, targets

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def copy(self) -> "IntGraph":
        """Deep copy of the adjacency structure."""
        g = IntGraph()
        g._adj = [list(nbrs) for nbrs in self._adj]
        g._sets = [set(s) if s is not None else None for s in self._sets]
        g._present = list(self._present)
        return g

    def average_degree(self) -> float:
        """``2m / n`` — the "AvgDeg" column of the paper's Table 1."""
        n = self.num_vertices
        return (2.0 * self.num_edges / n) if n else 0.0

    def connected_component(self, start: int) -> Set[int]:
        """Vertex ids reachable from ``start`` (BFS)."""
        if not self.has_vertex(start):
            raise KeyError(start)
        adj = self._adj
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for v in adj[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return seen

    def __contains__(self, u: int) -> bool:
        return self.has_vertex(u)

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntGraph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntGraph):
            return NotImplemented
        if self._present != other._present:
            n = max(len(self._present), len(other._present))
            for i in range(n):
                a = i < len(self._present) and self._present[i]
                b = i < len(other._present) and other._present[i]
                if a != b:
                    return False
        n = max(len(self._adj), len(other._adj))
        for i in range(n):
            a = self._adj[i] if i < len(self._adj) else []
            b = other._adj[i] if i < len(other._adj) else []
            if set(a) != set(b):
                return False
        return True

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("IntGraph is mutable and unhashable")
