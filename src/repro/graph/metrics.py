"""Structural graph metrics used by dataset reports and stand-in tuning.

These back the Table-1-style comparisons between stand-ins and the
paper's originals: beyond n/m/avg-degree/max-k, the evaluation's behavior
depends on degree skew (drives |E+|), clustering (drives subcore density)
and component structure (drives how far cascades can reach).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List

from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable

__all__ = [
    "degree_histogram",
    "degree_skew",
    "global_clustering",
    "connected_components",
    "GraphProfile",
    "profile",
]


def degree_histogram(graph: DynamicGraph) -> Dict[int, int]:
    """Degree -> number of vertices."""
    hist: Dict[int, int] = {}
    for u in graph.vertices():
        d = graph.degree(u)
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))


def degree_skew(graph: DynamicGraph) -> float:
    """Max degree over mean degree — a cheap heavy-tail indicator
    (~1-3 for ER/lattice, tens-to-hundreds for powerlaw graphs)."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    degs = [graph.degree(u) for u in graph.vertices()]
    mean = sum(degs) / n
    return (max(degs) / mean) if mean else 0.0


def global_clustering(graph: DynamicGraph, sample: int | None = None) -> float:
    """Transitivity: 3 * triangles / connected triples (optionally over a
    deterministic vertex sample for big graphs)."""
    vertices = sorted(graph.vertices(), key=repr)
    if sample is not None and sample < len(vertices):
        step = max(1, len(vertices) // sample)
        vertices = vertices[::step]
    triangles = 0
    triples = 0
    for u in vertices:
        nbrs = sorted(graph.neighbors(u), key=repr)
        d = len(nbrs)
        triples += d * (d - 1) // 2
        for i in range(d):
            for j in range(i + 1, d):
                if graph.has_edge(nbrs[i], nbrs[j]):
                    triangles += 1
    return (triangles / triples) if triples else 0.0


def connected_components(graph: DynamicGraph) -> List[int]:
    """Component sizes, largest first."""
    seen = set()
    sizes = []
    for u in graph.vertices():
        if u in seen:
            continue
        comp = graph.connected_component(u)
        seen.update(comp)
        sizes.append(len(comp))
    return sorted(sizes, reverse=True)


@dataclass(frozen=True)
class GraphProfile:
    """Summary bundle for dataset reports."""

    n: int
    m: int
    avg_degree: float
    max_degree: int
    degree_skew: float
    clustering: float
    components: int
    largest_component_frac: float

    def row(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "m": self.m,
            "avg_deg": round(self.avg_degree, 2),
            "max_deg": self.max_degree,
            "skew": round(self.degree_skew, 1),
            "clustering": round(self.clustering, 3),
            "components": self.components,
            "lcc%": round(100 * self.largest_component_frac, 1),
        }


def profile(graph: DynamicGraph, clustering_sample: int | None = 500) -> GraphProfile:
    """Compute the full structural profile of a graph."""
    n = graph.num_vertices
    comps = connected_components(graph)
    degs = [graph.degree(u) for u in graph.vertices()] or [0]
    return GraphProfile(
        n=n,
        m=graph.num_edges,
        avg_degree=graph.average_degree(),
        max_degree=max(degs),
        degree_skew=degree_skew(graph),
        clustering=global_clustering(graph, sample=clustering_sample),
        components=len(comps),
        largest_component_frac=(comps[0] / n) if comps else 0.0,
    )
