"""Deterministic multiprocessor schedules used by the batch baselines.

Per-edge operations are atomic under the simulated machine, so the
makespan of a baseline run is fully determined by how its task structure
maps onto ``P`` workers — no coroutine interleaving needed.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["lpt_makespan", "chunk_round_makespan"]


def lpt_makespan(task_costs: Sequence[float], workers: int) -> float:
    """Longest-Processing-Time-first greedy assignment of independent
    tasks; returns the max worker load.

    Models JEI/JER's level groups: each core-value group is one
    indivisible task (vertices with one core value can only be processed
    by a single worker at a time — the paper's central criticism).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    loads = [0.0] * workers
    for c in sorted(task_costs, reverse=True):
        i = loads.index(min(loads))
        loads[i] += c
    return max(loads) if loads else 0.0


def chunk_round_makespan(
    round_costs: Sequence[Sequence[float]], workers: int
) -> float:
    """Barrier-synchronized rounds (MI/MR): within each round the edges
    are dealt round-robin to workers; the round lasts as long as its most
    loaded worker; rounds run back to back."""
    total = 0.0
    for costs in round_costs:
        loads = [0.0] * workers
        for i, c in enumerate(costs):
            loads[i % workers] += c
        total += max(loads) if loads else 0.0
    return total
