"""Deterministic multiprocessor schedules used by the batch baselines.

Per-edge operations are atomic under the simulated machine, so the
makespan of a baseline run is fully determined by how its task structure
maps onto ``P`` workers — no coroutine interleaving needed.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["lpt_assign", "lpt_makespan", "chunk_round_makespan"]


def lpt_assign(task_costs: Sequence[float], workers: int) -> List[List[int]]:
    """Longest-Processing-Time-first greedy assignment of independent
    tasks; returns per-worker lists of task *indices* in pickup order.

    Ties (equal costs, equal loads) break on the lower task index and
    lower worker index, so the assignment is deterministic.  Shared by
    the JEI/JER level-group model below and the ``lpt`` / in-wave
    ordering of :mod:`repro.parallel.scheduling`.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    loads = [0.0] * workers
    groups: List[List[int]] = [[] for _ in range(workers)]
    for i in sorted(range(len(task_costs)), key=lambda i: (-task_costs[i], i)):
        w = loads.index(min(loads))
        loads[w] += task_costs[i]
        groups[w].append(i)
    return groups


def lpt_makespan(task_costs: Sequence[float], workers: int) -> float:
    """Longest-Processing-Time-first greedy assignment of independent
    tasks; returns the max worker load.

    Models JEI/JER's level groups: each core-value group is one
    indivisible task (vertices with one core value can only be processed
    by a single worker at a time — the paper's central criticism).
    """
    groups = lpt_assign(task_costs, workers)
    loads = [sum(task_costs[i] for i in g) for g in groups]
    return max(loads) if loads else 0.0


def chunk_round_makespan(
    round_costs: Sequence[Sequence[float]], workers: int
) -> float:
    """Barrier-synchronized rounds (MI/MR): within each round the edges
    are dealt round-robin to workers; the round lasts as long as its most
    loaded worker; rounds run back to back."""
    total = 0.0
    for costs in round_costs:
        loads = [0.0] * workers
        for i, c in enumerate(costs):
            loads[i % workers] += c
        total += max(loads) if loads else 0.0
    return total
