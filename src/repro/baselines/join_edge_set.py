"""Join-Edge-Set parallel core maintenance — JEI/JER (Hua et al., TPDS'19).

The strongest prior method in the paper's comparison.  Structure:

1. **Preprocess** the batch ΔE into a *join edge set*: edges grouped by
   ``K = min(core(u), core(v))``.  Modeled cost: one serial pass over ΔE.
2. **Level parallelism**: each core-value group is an indivisible task —
   "vertices with the same core number can only be processed by a single
   worker at the same time" (paper Section 5.1) — assigned to workers
   greedily.  A graph whose affected vertices share one core value (BA)
   therefore runs sequentially no matter how many workers exist.
3. **Within a group**, all edges are applied jointly and repaired with
   multi-source Traversal passes (:mod:`repro.baselines.joint_traversal`)
   — *one* subcore flood per affected region per level instead of one per
   edge.  This is the "avoid repeated computations" gain that makes JEI
   far faster than plain TI even at one worker (without it, a
   reproduction exaggerates OurI's advantage by orders of magnitude on
   flood-prone graphs like road networks).

State mutation is performed sequentially (per-edge atomicity matches the
simulated machine); timing comes from the equivalent deterministic
schedule (:func:`repro.baselines.scheduling.lpt_makespan`).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.decomposition import core_decomposition
from repro.baselines.joint_traversal import insert_group, remove_group
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.batch import BatchResult
from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimReport
from repro.baselines.scheduling import lpt_makespan

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["JoinEdgeSetMaintainer"]

#: serial preprocessing cost per batch edge (grouping pass)
_PREPROCESS_PER_EDGE = 0.5
#: per-edge dispatch overhead inside a level task
_DISPATCH_PER_EDGE = 1.0


class JoinEdgeSetMaintainer:
    """JEI + JER with ``num_workers`` simulated workers."""

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 4,
        costs: CostModel | None = None,
    ) -> None:
        self.graph = graph
        self._core: Dict[Vertex, int] = dict(core_decomposition(graph).core)
        self.num_workers = num_workers
        self.costs = costs or CostModel.from_env()

    # ------------------------------------------------------------------
    def core(self, u: Vertex) -> int:
        return self._core[u]

    def cores(self) -> Dict[Vertex, int]:
        return dict(self._core)

    def check(self) -> None:
        fresh = core_decomposition(self.graph).core
        for u in self.graph.vertices():
            assert self._core[u] == fresh[u], (
                f"core[{u!r}]={self._core[u]} != BZ {fresh[u]}"
            )

    # ------------------------------------------------------------------
    def _validate(self, edges: Sequence[Edge], inserting: bool) -> None:
        seen = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop in batch: {u!r}")
            e = canonical_edge(u, v)
            if e in seen:
                raise ValueError(f"duplicate edge in batch: {e!r}")
            seen.add(e)
            if inserting and self.graph.has_edge(u, v):
                raise ValueError(f"edge already in graph: {e!r}")
            if not inserting and not self.graph.has_edge(u, v):
                raise KeyError(f"edge not in graph: {e!r}")

    def _group_by_level(self, edges: Sequence[Edge]) -> Dict[int, List[Edge]]:
        groups: Dict[int, List[Edge]] = {}
        for u, v in edges:
            ku = self._core.get(u, 0)
            kv = self._core.get(v, 0)
            groups.setdefault(min(ku, kv), []).append((u, v))
        return groups

    def _run(self, edges: Sequence[Edge], inserting: bool) -> BatchResult:
        self._validate(edges, inserting)
        if inserting:
            for u, v in edges:
                for x in (u, v):
                    if x not in self._core:
                        self.graph.add_vertex(x)
                        self._core[x] = 0
        groups = self._group_by_level(edges)
        level_costs: List[float] = []
        all_stats: list = []
        for _k, group in sorted(groups.items()):
            if inserting:
                stats = insert_group(self.graph, self._core, group)
            else:
                stats = remove_group(self.graph, self._core, group)
            # joint-traversal work counts adjacency touches; scale by the
            # cost model's per-touch price so cross-algorithm comparisons
            # respond to cost perturbations consistently
            cost = stats.work * self.costs.adj_scan + _DISPATCH_PER_EDGE * len(group)
            all_stats.append(stats)
            level_costs.append(cost)
        preprocess = _PREPROCESS_PER_EDGE * len(edges)
        makespan = preprocess + lpt_makespan(level_costs, self.num_workers)
        report = SimReport(
            makespan=makespan,
            worker_clocks=[],
            total_work=preprocess + sum(level_costs),
        )
        return BatchResult(report=report, stats=all_stats)

    # ------------------------------------------------------------------
    def insert_edges(self, edges: Sequence[Edge]) -> BatchResult:
        """JEI: insert a batch; parallel only across core levels."""
        return self._run(edges, inserting=True)

    def remove_edges(self, edges: Sequence[Edge]) -> BatchResult:
        """JER: remove a batch; parallel only across core levels."""
        return self._run(edges, inserting=False)
