"""Matching-Edge-Set parallel core maintenance — MI/MR (Jin et al., TPDS'18).

The weaker prior method in the paper's comparison (consistently the
slowest parallel contender in Figure 4).  Structure:

1. **Preprocess** ΔE into a sequence of *matchings*: maximal sets of
   vertex-disjoint edges, built greedily round by round.  Each round's
   construction is a serial scan over the remaining edges.
2. **Round parallelism with barriers**: edges of one matching are dealt to
   workers and processed concurrently; the next round starts only when
   the slowest worker finishes.  Superstep synchronization plus the
   matching constraint (an edge set over few distinct vertices collapses
   to many tiny rounds) is why MI/MR trail JEI/JER.
3. **Within a round**, same-level edges are applied jointly (one
   multi-source Traversal per region per level, see
   :mod:`repro.baselines.joint_traversal`) — but unlike JEI's whole-batch
   level groups, the sharing is confined to one matching round, so the
   floods repeat across rounds.  That, plus the barriers, is why MI/MR
   trail JEI/JER.

As with JEI/JER, state mutation is sequential under per-edge atomicity
and timing comes from the equivalent deterministic barrier schedule.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.core.decomposition import core_decomposition
from repro.baselines.joint_traversal import insert_group, remove_group
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.batch import BatchResult
from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimReport
from repro.baselines.scheduling import chunk_round_makespan

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["MatchingMaintainer", "greedy_matchings"]

#: serial matching-construction cost per scanned edge per round
_MATCHING_SCAN = 0.5
#: per-edge dispatch overhead inside a round
_DISPATCH_PER_EDGE = 1.5


def greedy_matchings(edges: Sequence[Edge]) -> List[List[Edge]]:
    """Partition edges into maximal vertex-disjoint rounds (greedy)."""
    remaining = list(edges)
    rounds: List[List[Edge]] = []
    while remaining:
        used: Set[Vertex] = set()
        this_round: List[Edge] = []
        leftover: List[Edge] = []
        for u, v in remaining:
            if u in used or v in used:
                leftover.append((u, v))
            else:
                used.add(u)
                used.add(v)
                this_round.append((u, v))
        rounds.append(this_round)
        remaining = leftover
    return rounds


class MatchingMaintainer:
    """MI + MR with ``num_workers`` simulated workers."""

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 4,
        costs: CostModel | None = None,
    ) -> None:
        self.graph = graph
        self._core: Dict[Vertex, int] = dict(core_decomposition(graph).core)
        self.num_workers = num_workers
        self.costs = costs or CostModel.from_env()

    # ------------------------------------------------------------------
    def core(self, u: Vertex) -> int:
        return self._core[u]

    def cores(self) -> Dict[Vertex, int]:
        return dict(self._core)

    def check(self) -> None:
        fresh = core_decomposition(self.graph).core
        for u in self.graph.vertices():
            assert self._core[u] == fresh[u], (
                f"core[{u!r}]={self._core[u]} != BZ {fresh[u]}"
            )

    # ------------------------------------------------------------------
    def _validate(self, edges: Sequence[Edge], inserting: bool) -> None:
        seen = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop in batch: {u!r}")
            e = canonical_edge(u, v)
            if e in seen:
                raise ValueError(f"duplicate edge in batch: {e!r}")
            seen.add(e)
            if inserting and self.graph.has_edge(u, v):
                raise ValueError(f"edge already in graph: {e!r}")
            if not inserting and not self.graph.has_edge(u, v):
                raise KeyError(f"edge not in graph: {e!r}")

    def _run(self, edges: Sequence[Edge], inserting: bool) -> BatchResult:
        self._validate(edges, inserting)
        if inserting:
            for u, v in edges:
                for x in (u, v):
                    if x not in self._core:
                        self.graph.add_vertex(x)
                        self._core[x] = 0
        rounds = greedy_matchings(edges)
        # Further split by core level within a round: MI/MR still cannot
        # process same-core vertices concurrently (both prior methods
        # share the level restriction — paper Section 5.1), so a round's
        # parallel width is bounded by its distinct affected core values.
        round_costs: List[List[float]] = []
        all_stats: list = []
        preprocess = 0.0
        remaining = len(edges)
        for rnd in rounds:
            preprocess += _MATCHING_SCAN * remaining
            remaining -= len(rnd)
            by_level_edges: Dict[int, List[Edge]] = {}
            for u, v in rnd:
                k = min(self._core.get(u, 0), self._core.get(v, 0))
                by_level_edges.setdefault(k, []).append((u, v))
            costs: List[float] = []
            for _k, group in sorted(by_level_edges.items()):
                if inserting:
                    stats = insert_group(self.graph, self._core, group)
                else:
                    stats = remove_group(self.graph, self._core, group)
                costs.append(
                    stats.work * self.costs.adj_scan
                    + _DISPATCH_PER_EDGE * len(group)
                )
                all_stats.append(stats)
            round_costs.append(costs)
        makespan = preprocess + chunk_round_makespan(round_costs, self.num_workers)
        report = SimReport(
            makespan=makespan,
            worker_clocks=[],
            total_work=preprocess + sum(sum(c) for c in round_costs),
        )
        return BatchResult(report=report, stats=all_stats)

    # ------------------------------------------------------------------
    def insert_edges(self, edges: Sequence[Edge]) -> BatchResult:
        """MI: insert a batch via barrier-synchronized matchings."""
        return self._run(edges, inserting=True)

    def remove_edges(self, edges: Sequence[Edge]) -> BatchResult:
        """MR: remove a batch via barrier-synchronized matchings."""
        return self._run(edges, inserting=False)
