"""Joint (batched) Traversal processing shared by JEI/JER and MI/MR.

The batch methods' real advantage over per-edge Traversal is not memoizing
counters — it is running **one traversal per affected region per level**
instead of one per edge.  On graphs whose pure cores are huge connected
regions (road networks, ER), per-edge TI floods the entire subcore for
every edge; the join-edge-set floods it once per batch.  Without this, a
reproduction wildly exaggerates the gap to the order-based algorithm
(observed first-hand; see EXPERIMENTS.md).

``insert_group`` / ``remove_group`` apply a set of same-level edges at
once and repair cores with multi-source Traversal passes iterated to a
fixpoint (a batch can move a core number by more than one):

* insertion: insert all edges; wave 0's roots are the level-K endpoints;
  each pass runs the mcd/pcd-pruned multi-source DFS + peel of TI and
  promotes survivors by one; promoted vertices seed the next wave one
  level up.  (Within one level a pass is complete: promotions never
  enable further same-level promotions, because a K→K+1 rise leaves every
  neighbor's mcd at level K unchanged.)
* removal: remove all edges; repeatedly find support-deficient vertices
  among the dirty set (endpoints, then dropped vertices), cascade each
  level's deficits with a multi-seed TR pass, and re-check the dropped.

Work is accounted per adjacency touch, same currency as everything else.
Correctness is guarded by the same differential suites as all other
algorithms (every run must match a from-scratch BZ).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.core.traversal import TraversalMemo
from repro.graph.dynamic_graph import DynamicGraph

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["JointStats", "insert_group", "remove_group"]


class JointStats:
    """Work + changed-vertex record for one jointly processed group."""

    __slots__ = ("work", "changed", "edges")

    def __init__(self) -> None:
        self.work = 0.0
        self.changed: List[Vertex] = []
        self.edges = 0

    # duck-type the per-edge stats interface used by BatchResult
    @property
    def v_star(self) -> List[Vertex]:
        return self.changed

    @property
    def v_plus(self) -> List[Vertex]:
        return self.changed


def _insert_pass(
    graph: DynamicGraph,
    core: Dict[Vertex, int],
    k: int,
    roots: Sequence[Vertex],
    memo: TraversalMemo,
    stats: JointStats,
) -> List[Vertex]:
    """One multi-source TI pass at level ``k``: DFS + peel + promote."""
    cd: Dict[Vertex, int] = {}
    visited: Dict[Vertex, None] = {}
    stack: List[Vertex] = []
    for r in roots:
        if core[r] == k and r not in visited:
            visited[r] = None
            cd[r] = memo.pcd(r)
            stack.append(r)
    while stack:
        w = stack.pop()
        stats.work += 1
        if cd[w] > k:
            stats.work += graph.degree(w)
            for x in graph.neighbors(w):
                if core[x] == k and x not in visited and memo.mcd(x) > k:
                    visited[x] = None
                    cd[x] = memo.pcd(x)
                    stack.append(x)

    evicted: Set[Vertex] = set()
    queue: deque = deque(w for w in visited if cd[w] <= k)
    queued: Set[Vertex] = set(queue)
    while queue:
        w = queue.popleft()
        evicted.add(w)
        if memo.mcd(w) <= k:
            continue
        stats.work += graph.degree(w)
        for x in graph.neighbors(w):
            if core[x] == k and x in visited and x not in evicted:
                cd[x] -= 1
                if cd[x] <= k and x not in queued:
                    queue.append(x)
                    queued.add(x)

    promoted = [w for w in visited if w not in evicted]
    for w in promoted:
        core[w] = k + 1
    return promoted


def insert_group(
    graph: DynamicGraph,
    core: Dict[Vertex, int],
    edges: Sequence[Edge],
) -> JointStats:
    """Insert a same-level edge group jointly and repair cores."""
    stats = JointStats()
    stats.edges = len(edges)
    endpoints: Set[Vertex] = set()
    for u, v in edges:
        for x in (u, v):
            if x not in core:
                graph.add_vertex(x)
                core[x] = 0
        graph.add_edge(u, v)
        endpoints.update((u, v))
        stats.work += 2.0

    memo = TraversalMemo(graph, core, persistent=True)
    frontier: Set[Vertex] = set(endpoints)
    while frontier:
        by_level: Dict[int, Set[Vertex]] = {}
        for x in frontier:
            by_level.setdefault(core[x], set()).add(x)
        frontier = set()
        for k in sorted(by_level):
            roots = sorted(
                (x for x in by_level[k] if core[x] == k), key=repr
            )
            if not roots:
                continue
            promoted = _insert_pass(graph, core, k, roots, memo, stats)
            if promoted:
                stats.changed.extend(promoted)
                frontier.update(promoted)
                memo.invalidate_after_op((), promoted)
        stats.work += memo.work
        memo.work = 0.0
    return stats


def _remove_pass(
    graph: DynamicGraph,
    core: Dict[Vertex, int],
    k: int,
    seeds: Sequence[Vertex],
    stats: JointStats,
) -> List[Vertex]:
    """One multi-seed TR cascade at level ``k`` (all seeds are already
    verified deficient by the caller)."""
    dropped: List[Vertex] = []
    queue: deque = deque()
    in_queue: Set[Vertex] = set()
    mcd: Dict[Vertex, int] = {}

    def drop(x: Vertex) -> None:
        core[x] = k - 1
        dropped.append(x)
        queue.append(x)
        in_queue.add(x)

    for x in seeds:
        if core[x] == k:
            drop(x)

    while queue:
        w = queue.popleft()
        in_queue.discard(w)
        stats.work += graph.degree(w)
        for x in graph.neighbors(w):
            if core[x] != k:
                continue
            if x not in mcd:
                cnt = 0
                for y in graph.neighbors(x):
                    cy = core[y]
                    if cy >= k:
                        cnt += 1
                    elif cy == k - 1 and (y == w or y in in_queue):
                        cnt += 1
                stats.work += graph.degree(x)
                mcd[x] = cnt
            mcd[x] -= 1
            if mcd[x] < k:
                drop(x)
    return dropped


def remove_group(
    graph: DynamicGraph,
    core: Dict[Vertex, int],
    edges: Sequence[Edge],
) -> JointStats:
    """Remove a same-level edge group jointly and repair cores."""
    stats = JointStats()
    stats.edges = len(edges)
    endpoints: Set[Vertex] = set()
    for u, v in edges:
        graph.remove_edge(u, v)
        endpoints.update((u, v))
        stats.work += 2.0

    dirty: Set[Vertex] = set(endpoints)
    while dirty:
        seeds_by_level: Dict[int, List[Vertex]] = {}
        for x in sorted(dirty, key=repr):
            kx = core[x]
            if kx <= 0:
                continue
            support = sum(1 for y in graph.neighbors(x) if core[y] >= kx)
            stats.work += graph.degree(x)
            if support < kx:
                seeds_by_level.setdefault(kx, []).append(x)
        dirty = set()
        for k in sorted(seeds_by_level, reverse=True):
            seeds = [x for x in seeds_by_level[k] if core[x] == k]
            if not seeds:
                continue
            dropped = _remove_pass(graph, core, k, seeds, stats)
            stats.changed.extend(dropped)
            dirty.update(dropped)
    return stats
