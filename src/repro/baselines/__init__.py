"""Prior-art parallel batch baselines the paper compares against.

Both algorithms parallelize the *Traversal* maintenance and share its two
structural limitations the paper attacks:

* parallelism exists **only across different core values** (JEI/JER) or
  across vertex-disjoint edges within barrier-synchronized rounds (MI/MR);
  when all affected vertices share one core number (the BA graph) they
  degenerate to sequential execution;
* per-edge work is Traversal work (large, unstable ``V+``).

Their redeeming feature — batch preprocessing that avoids repeated
computations — is modeled with persistent mcd/pcd memoization plus
conservative invalidation (see :class:`repro.core.traversal.TraversalMemo`),
which is why they beat plain TI/TR at one worker, as in the paper.

Because each edge operation executes atomically under the simulated
machine, their timing is computed with the equivalent deterministic
schedules (greedy task assignment for the level groups; rounds with
barriers for the matchings) rather than coroutine interleaving — the
makespans are identical and the code is far clearer.
"""

from repro.baselines.join_edge_set import JoinEdgeSetMaintainer
from repro.baselines.matching import MatchingMaintainer

__all__ = ["JoinEdgeSetMaintainer", "MatchingMaintainer"]
