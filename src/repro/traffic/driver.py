"""Sliding-window trace replay against a serving engine.

Two replay modes, differing only in who executes the window's expiry
removes (the ``"x":1`` records):

**model** (works on every engine, including the sharded/process ones)
    The trace is submitted verbatim — expiry removes are ordinary
    requests with the reserved ``exp:`` id prefix.  The op sequence the
    engine sees is exactly the file, so with sequence-driven cuts
    (``max_delay=None``) a monolithic replay is bit-deterministic:
    same trace → same batches → same journal bytes.

**engine** (monolithic engines with ``EngineConfig.window`` set)
    Expiry records are *skipped*; the engine's own window plane fires
    the equivalent removes from its due-time heap during
    :meth:`~repro.service.Engine.advance_to`.  Because the driver
    advances the event clock to each record's ``t`` before submitting
    it, the engine fires each expiry at the same position in the
    submission sequence as the skipped record — the two modes converge
    to the same windowed graph.

Every record's ``t`` drives ``advance_to`` first, then the op is
submitted with deadline ``t + slo[class]`` (service clock), so expiry
removals and live traffic compete for admission and batching — under
overload both can be rejected, and the accounting invariant
``admitted == committed + quarantined + timed_out + abandoned`` is
asserted at the end of every replay.

At every window boundary (``k * window``) the driver can quiesce the
engine and compare its cores bit-for-bit against a from-scratch
decomposition of the ideal windowed edge set (the trace prefix) — the
paper-correctness gate for the whole traffic plane.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import core_decomposition
from repro.graph.dictgraph import DictGraph
from repro.graph.io import canon_record
from repro.service.metrics import summarize_latencies
from repro.service.requests import (
    STATUS_ABANDONED,
    STATUS_COMMITTED,
    STATUS_PENDING,
    STATUS_QUARANTINED,
    STATUS_REJECTED,
    STATUS_TIMED_OUT,
    Request,
    Response,
)
from repro.traffic.trace import TimedOp, Trace

Edge = Tuple[int, int]

__all__ = ["ReplayReport", "cores_digest", "replay"]

#: id prefix of driver-submitted expiry removes (model mode); the
#: engine's own window plane uses the bare ``exp:`` prefix
_EXP_ID = "exp:m"


def cores_digest(cores: Dict) -> str:
    """sha256 of the canonical JSON of a core map (sorted, compact) —
    the bit-identity token the differential gates compare."""
    canon = canon_record({str(k): v for k, v in cores.items()})
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class _Pending:
    cls: str  # "update" | "query" | "expiry"
    t: float  # event-time arrival
    sub_now: float  # service clock at submission


@dataclass
class ReplayReport:
    """Everything one trace replay measured (see ``docs/traffic.md``
    for the metric definitions)."""

    shape: str
    mode: str
    trace_digest: str
    #: per-class SLO attainment: terminal counts, user-perceived latency
    #: percentiles, and the deadline hit-rate
    slo: Dict[str, Dict] = field(default_factory=dict)
    #: one entry per checked window boundary: event time, match verdict,
    #: engine vs oracle sizes
    boundaries: List[Dict] = field(default_factory=list)
    boundaries_ok: bool = True
    invariant_ok: bool = True
    final_cores: Dict = field(default_factory=dict)
    cores_digest: str = ""
    journal_digest: Optional[str] = None
    metrics: Dict = field(default_factory=dict)
    #: model-mode expiry accounting (engine mode reports through
    #: ``metrics["window"]`` instead): submitted / rejected-then-retried
    #: / quarantined-missing (inserts lost to overload)
    expiry: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "shape": self.shape,
            "mode": self.mode,
            "trace_digest": self.trace_digest,
            "slo": self.slo,
            "boundaries": self.boundaries,
            "boundaries_ok": self.boundaries_ok,
            "invariant_ok": self.invariant_ok,
            "cores_digest": self.cores_digest,
            "journal_digest": self.journal_digest,
            "expiry": self.expiry,
            "metrics": self.metrics,
        }


class _SloTally:
    """Per-class terminal accounting with user-perceived latency.

    Latency is measured from the op's *event-time arrival* mapped onto
    the service clock: ``(sub_now - t) + resp.latency`` — queueing at
    the door plus admission-to-terminal.  ``on_time`` means committed
    within the class budget; the hit-rate denominator excludes
    quarantined ops (structured rejections of malformed input, not
    capacity misses) but includes rejected / timed-out / abandoned."""

    def __init__(self, budgets: Dict[str, float]) -> None:
        self.budgets = budgets
        self.counts: Dict[str, Dict[str, int]] = {}
        self.lat: Dict[str, List[float]] = {}

    def note(self, cls: str, status: str, user_latency: Optional[float],
             budget_cls: Optional[str] = None) -> None:
        c = self.counts.setdefault(cls, {
            "count": 0, "committed": 0, "on_time": 0, "late": 0,
            "rejected": 0, "timed_out": 0, "abandoned": 0,
            "quarantined": 0,
        })
        c["count"] += 1
        budget = self.budgets.get(budget_cls or cls)
        if status == STATUS_COMMITTED:
            c["committed"] += 1
            if user_latency is not None:
                self.lat.setdefault(cls, []).append(user_latency)
            if budget is None or (user_latency is not None
                                  and user_latency <= budget):
                c["on_time"] += 1
            else:
                c["late"] += 1
        elif status == STATUS_REJECTED:
            c["rejected"] += 1
        elif status == STATUS_TIMED_OUT:
            c["timed_out"] += 1
        elif status == STATUS_ABANDONED:
            c["abandoned"] += 1
        elif status == STATUS_QUARANTINED:
            c["quarantined"] += 1

    def summary(self) -> Dict[str, Dict]:
        out: Dict[str, Dict] = {}
        for cls, c in sorted(self.counts.items()):
            eligible = c["count"] - c["quarantined"]
            out[cls] = {
                **c,
                "budget": self.budgets.get(cls),
                "hit_rate": (c["on_time"] / eligible) if eligible else 1.0,
                "latency": summarize_latencies(self.lat.get(cls, [])),
            }
        return out


def replay(
    engine,
    trace: Trace,
    *,
    mode: str = "model",
    slo: Optional[Dict[str, float]] = None,
    check_boundaries: bool = False,
    boundary_limit: Optional[int] = None,
) -> ReplayReport:
    """Replay ``trace`` against ``engine`` and account SLO attainment.

    ``engine`` is a monolithic :class:`~repro.service.Engine` or a
    :class:`~repro.service.sharding.ShardedEngine` (model mode only —
    the sharded engine rejects ``config.window``).  In engine mode the
    engine must have been constructed with ``window=trace.header.window``.

    ``check_boundaries`` quiesces the engine at every window boundary
    and bit-compares its cores against a from-scratch decomposition of
    the ideal windowed edge set (``boundary_limit`` caps how many
    boundaries are checked; quiescing flushes the batcher, so each check
    perturbs batching — leave it off for latency-faithful bench runs).
    """
    if mode not in ("model", "engine"):
        raise ValueError(f"unknown replay mode {mode!r}")
    native_window = getattr(engine.config, "window", None)
    if mode == "engine" and native_window is None:
        raise ValueError(
            "engine-mode replay needs EngineConfig.window set "
            "(model mode replays expiry records explicitly)"
        )
    if mode == "model" and native_window is not None:
        raise ValueError(
            "model-mode replay on a windowed engine would double-remove "
            "every expiring edge; build the engine without window"
        )
    header = trace.header
    budgets = dict(header.slo)
    if slo is not None:
        budgets.update(slo)
    tally = _SloTally(budgets)
    pending: Dict[str, _Pending] = {}
    expiry_stats = {"submitted": 0, "rejected": 0, "missing": 0}
    window = header.window
    boundary_at = window if check_boundaries else None
    boundaries: List[Dict] = []
    ideal = set()  # ideal windowed edge set = prefix-apply of the trace
    exp_seq = 0

    def settle(resp: Response) -> None:
        p = pending.pop(resp.id, None)
        if p is None:
            return
        if p.cls == "expiry":
            _settle_expiry(resp)
            return
        user_lat = None
        if resp.status == STATUS_COMMITTED:
            user_lat = (p.sub_now - p.t) + (resp.latency or 0.0)
        tally.note(p.cls, resp.status, user_lat)

    def _settle_expiry(resp: Response) -> None:
        if resp.status == STATUS_QUARANTINED:
            # the paired insert never committed (lost to overload):
            # there is nothing to expire
            expiry_stats["missing"] += 1

    def drain() -> None:
        if mode == "engine":
            for resp in engine.drain_window():
                settle(resp)
        else:
            while True:
                for resp in engine.flush():
                    settle(resp)
                if not engine.pending_ops():
                    break

    def check_boundary(b: float) -> None:
        engine.advance_to(b)
        drain()
        got = engine.cores()
        want = core_decomposition(DictGraph(sorted(ideal))).core
        # vertices outside any edge sit at core 0 on whichever side
        # remembers them; compare on the union support
        support = set(got) | set(want)
        ok = all((got.get(x) or 0) == (want.get(x) or 0) for x in support)
        boundaries.append({
            "t": b, "ok": ok,
            "engine_edges": (sum(1 for _ in engine.graph.edges())
                             if hasattr(engine, "graph") else None),
            "ideal_edges": len(ideal),
        })

    for op in trace:
        # boundaries are inclusive on the left of the next record: every
        # op with t <= k*window (expiries due exactly on the boundary
        # included) lands before the check, matching the engine plane's
        # inclusive due <= event_now firing rule
        if boundary_at is not None and op.t > boundary_at:
            while boundary_at is not None and op.t > boundary_at:
                check_boundary(boundary_at)
                boundary_at += window
                if boundary_limit is not None and \
                        len(boundaries) >= boundary_limit:
                    boundary_at = None
        engine.advance_to(op.t)
        for resp in engine.take_completed():
            settle(resp)
        if op.op == "query":
            sub_now = _now(engine)
            resp = engine.submit(Request(
                "query", kind=op.q, args=tuple(op.args),
                deadline=_deadline(op, budgets, "query"),
            ))
            tally.note("query", resp.status,
                       (sub_now - op.t) + (resp.latency or 0.0))
            continue
        if op.expiry:
            ideal.discard((op.u, op.v))
            if mode == "engine":
                continue  # the engine's window plane fires this one
            rid = f"{_EXP_ID}{exp_seq}"
            exp_seq += 1
            resp = engine.submit(Request("remove", u=op.u, v=op.v, id=rid))
            expiry_stats["submitted"] += 1
            if resp.status == STATUS_REJECTED:
                # retention lost to backpressure: retry once after the
                # next flush rather than dropping the expiry on the floor
                expiry_stats["rejected"] += 1
                for r in engine.flush():
                    settle(r)
                resp = engine.submit(
                    Request("remove", u=op.u, v=op.v, id=rid + "r"))
            if resp.status == STATUS_PENDING:
                pending[resp.id] = _Pending("expiry", op.t, _now(engine))
            else:
                _settle_expiry(resp)
            continue
        if op.op == "insert":
            ideal.add((op.u, op.v))
        else:
            ideal.discard((op.u, op.v))
        sub_now = _now(engine)
        req = Request(op.op, u=op.u, v=op.v,
                      deadline=_deadline(op, budgets, "update"))
        resp = engine.submit(req)
        if resp.status == STATUS_PENDING:
            pending[resp.id] = _Pending("update", op.t, sub_now)
        else:
            user_lat = ((sub_now - op.t) + (resp.latency or 0.0)
                        if resp.status == STATUS_COMMITTED else None)
            tally.note("update", resp.status, user_lat)
    drain()
    for resp in engine.take_completed():
        settle(resp)
    # anything still pending was lost by a bug, not a policy: fail loudly
    if pending:
        raise AssertionError(
            f"{len(pending)} request(s) never reached a terminal state: "
            f"{sorted(pending)[:5]}"
        )
    final = engine.cores()
    metrics = engine.metrics()
    # a ShardedEngine reports {"router": ..., "shards": [...]}; the
    # router ledger carries the whole-system request accounting
    c = metrics["counters"] if "counters" in metrics \
        else metrics["router"]["counters"]
    invariant_ok = (
        c["admitted"] == c["committed"] + c["quarantined"]
        + c["timed_out"] + c["abandoned"]
    )
    journal = getattr(engine, "journal", None)
    return ReplayReport(
        shape=header.shape,
        mode=mode,
        trace_digest=trace.digest(),
        slo=tally.summary(),
        boundaries=boundaries,
        boundaries_ok=all(b["ok"] for b in boundaries),
        invariant_ok=invariant_ok,
        final_cores=final,
        cores_digest=cores_digest(final),
        journal_digest=journal.digest() if journal is not None else None,
        metrics=metrics,
        expiry=expiry_stats,
    )


def _now(engine) -> float:
    return engine.now


def _deadline(op: TimedOp, budgets: Dict[str, float],
              cls: str) -> Optional[float]:
    budget = budgets.get(cls)
    if budget is None:
        return None
    return op.t + budget
