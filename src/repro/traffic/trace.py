"""The replayable timed-operation trace format.

A trace is canonical JSONL (sorted keys, no whitespace — the same canon
as the write-ahead journal): one header record, then op records sorted
by non-decreasing ``t``.  The event times ``t`` live on the **event
clock** (see :meth:`repro.service.Engine.advance_to`), not the service
clock, which is what makes a trace replay to the same windowed graph on
every backend.

Record shapes (``docs/traffic.md`` is the normative spec)::

    {"kind":"header","version":1,"shape":"uniform","seed":7,
     "window":400.0,"ops":2480,"vertices":120,
     "slo":{"update":900.0,"query":120.0},"params":{...}}
    {"t":12.5,"op":"insert","u":3,"v":7}
    {"t":14.0,"op":"query","q":"core","args":[3]}
    {"t":412.5,"op":"remove","u":3,"v":7,"x":1}

``"x":1`` marks a remove *scheduled by the sliding window* (the pair of
the insert at ``t - window``) rather than live traffic.  Replay modes
differ only in who executes those records: **model** mode submits them
like any other op; **engine** mode skips them and lets the engine's own
window plane (``EngineConfig.window``) fire the equivalent removes.

Traces are *generated* artifacts and therefore strict: a malformed
record fails loudly (``ValueError``), there is no lenient mode.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.graph.io import (
    canon_record,
    iter_op_trace,
    write_op_trace,
)

PathLike = Union[str, Path]

TRACE_VERSION = 1

__all__ = ["TRACE_VERSION", "TimedOp", "Trace", "TraceHeader"]


@dataclass(frozen=True)
class TimedOp:
    """One timed operation of a trace."""

    t: float
    op: str  # "insert" | "remove" | "query"
    u: Optional[int] = None
    v: Optional[int] = None
    q: Optional[str] = None  # query kind
    args: Tuple = ()
    #: True for a remove scheduled by the sliding window (the expiry
    #: pair of an insert), False for live traffic
    expiry: bool = False

    def to_record(self) -> Dict:
        rec: Dict = {"t": self.t, "op": self.op}
        if self.op == "query":
            rec["q"] = self.q
            rec["args"] = list(self.args)
        else:
            rec["u"] = self.u
            rec["v"] = self.v
            if self.expiry:
                rec["x"] = 1
        return rec

    @classmethod
    def from_record(cls, rec: Dict) -> "TimedOp":
        op = rec["op"]
        if op == "query":
            return cls(t=float(rec["t"]), op=op, q=rec.get("q"),
                       args=tuple(rec.get("args", ())))
        if op not in ("insert", "remove"):
            raise ValueError(f"unknown trace op {op!r}")
        return cls(t=float(rec["t"]), op=op, u=rec["u"], v=rec["v"],
                   expiry=bool(rec.get("x", 0)))


@dataclass(frozen=True)
class TraceHeader:
    """The trace's self-description (first record of the file)."""

    shape: str
    seed: int
    window: float
    ops: int  # number of op records that follow
    vertices: int
    version: int = TRACE_VERSION
    #: per-class SLO latency budgets in service-clock units; replay sets
    #: each request's deadline to ``t + slo[class]``
    slo: Dict[str, float] = field(default_factory=dict)
    #: shape-specific generator parameters (rate, query_mix, ...)
    params: Dict = field(default_factory=dict)

    def to_record(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_record(cls, rec: Dict) -> "TraceHeader":
        known = set(cls.__dataclass_fields__)
        extra = {k for k in rec if k != "kind" and k not in known}
        if extra:
            raise ValueError(f"unknown trace header fields: {sorted(extra)}")
        kw = {k: v for k, v in rec.items() if k in known}
        hdr = cls(**kw)
        if hdr.version != TRACE_VERSION:
            raise ValueError(
                f"trace version {hdr.version} not supported "
                f"(this reader speaks {TRACE_VERSION})"
            )
        return hdr


class Trace:
    """A replayable operation trace: a header plus an iterable of
    :class:`TimedOp` in time order.

    Either memory-backed (:meth:`from_ops`, what the generators return)
    or file-backed (:meth:`load` — iteration streams the file each pass,
    the growing-graph-iterator idiom, so million-op traces never need to
    fit in memory)."""

    def __init__(self, header: TraceHeader, *,
                 ops: Optional[Sequence[TimedOp]] = None,
                 path: Optional[PathLike] = None) -> None:
        if (ops is None) == (path is None):
            raise ValueError("exactly one of ops/path must be given")
        self.header = header
        self._ops = list(ops) if ops is not None else None
        self.path = Path(path) if path is not None else None

    @classmethod
    def from_ops(cls, header: TraceHeader,
                 ops: Sequence[TimedOp]) -> "Trace":
        return cls(header, ops=ops)

    @classmethod
    def load(cls, path: PathLike) -> "Trace":
        """Open a trace file (validates the header only; ops stream)."""
        it = iter_op_trace(path)
        header = TraceHeader.from_record(next(it))
        it.close()
        return cls(header, path=path)

    def __len__(self) -> int:
        return self.header.ops

    def __iter__(self) -> Iterator[TimedOp]:
        if self._ops is not None:
            yield from self._ops
            return
        it = iter_op_trace(self.path)
        next(it)  # header, already parsed
        prev = float("-inf")
        for rec in it:
            op = TimedOp.from_record(rec)
            if op.t < prev:
                raise ValueError(
                    f"trace ops out of order: t={op.t} after t={prev}"
                )
            prev = op.t
            yield op

    def records(self) -> Iterator[Dict]:
        """Header + op records, the file's canonical record stream."""
        yield {"kind": "header", **self.header.to_record()}
        for op in self:
            yield op.to_record()

    def digest(self) -> str:
        """sha256 of the canonical uncompressed bytes — the trace's
        identity (stable across memory/file/gzip representations)."""
        h = hashlib.sha256()
        for rec in self.records():
            h.update((canon_record(rec) + "\n").encode("utf-8"))
        return h.hexdigest()

    def save(self, path: PathLike) -> str:
        """Write the canonical JSONL file; returns its digest."""
        it = iter(self.records())
        header = next(it)
        header.pop("kind")
        digest = write_op_trace(path, header, it)
        return digest

    def materialized(self) -> "Trace":
        """A memory-backed copy (one full pass over the file)."""
        if self._ops is not None:
            return self
        return Trace(self.header, ops=list(self))
