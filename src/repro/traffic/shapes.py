"""Seeded traffic-shape generators.

Each shape turns an arrival-time sampler (:mod:`repro.graph.generators`)
into a sequentially valid sliding-window trace: the generator keeps an
*ideal window model* — the present-set a perfect engine would hold — so
every insert targets an absent edge and every window expiry emits an
explicit ``remove`` record (``"x":1``) at exactly ``arrival + window``.
Removes therefore come for free from the window, exactly the mixed
insert/remove stream that exercises the order-based maintenance kernels
hardest.

Shapes (``docs/traffic.md`` has the catalog):

``uniform``
    Homogeneous Poisson arrivals — the baseline the old bench covered.
``diurnal``
    A sinusoidal day-curve: load swings between trough and peak
    (inhomogeneous Poisson by thinning), so batch sizes and queue depths
    breathe over the run.
``flash``
    A flash crowd: arrivals spike ``factor``-fold inside one interval
    and every insert in the burst attaches to one hub vertex — the
    adversarial case for order maintenance (hot hub, contended core).
``overload``
    Sustained arrivals far beyond the engine's admission capacity; pair
    it with a small ``max_pending`` to exercise backpressure
    (``rejected``) and, with a fault plane, the ``abandoned`` terminal
    state.  The accounting invariant must survive all of it.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from repro.graph.generators import (
    burst_rate,
    diurnal_rate,
    exponential_arrivals,
    thinned_arrivals,
)
from repro.traffic.trace import TimedOp, Trace, TraceHeader

Edge = Tuple[int, int]

SHAPES = ("uniform", "diurnal", "flash", "overload")

#: default per-class SLO budgets (service-clock units).  Tuned so the
#: non-overload shapes attain >0.9 at the bench's default engine profile
#: while overload measurably misses — see BENCH_traffic_*.json.
DEFAULT_SLO = {"update": 6000.0, "query": 4000.0}

#: default arrival rate (events per event-clock unit).  The sim engine
#: needs ~75 service units per op at small batches, so stability wants
#: rate < ~1/75; 0.005 leaves headroom for bursts while time-based cuts
#: (max_delay ~256) keep batches from starving.
DEFAULT_RATE = 0.005

__all__ = [
    "DEFAULT_RATE", "DEFAULT_SLO", "SHAPES", "WindowModel", "generate_trace",
]


class WindowModel:
    """The ideal sliding-window present-set: edge → expiry due-time,
    with O(1) membership, O(1) uniform sampling and a due-time heap.
    Used by the generators (sequential validity) and by the stateful
    tests as the from-scratch oracle."""

    def __init__(self) -> None:
        self.due: Dict[Edge, float] = {}
        self._heap: List[Tuple[float, Edge]] = []
        self._elist: List[Edge] = []
        self._epos: Dict[Edge, int] = {}

    def __len__(self) -> int:
        return len(self.due)

    def __contains__(self, e: Edge) -> bool:
        return e in self.due

    def edges(self) -> List[Edge]:
        return sorted(self.due)

    def add(self, e: Edge, due: float) -> None:
        if e in self.due:
            raise ValueError(f"edge already present: {e!r}")
        self.due[e] = due
        heapq.heappush(self._heap, (due, e))
        self._epos[e] = len(self._elist)
        self._elist.append(e)

    def discard(self, e: Edge) -> None:
        if self.due.pop(e, None) is None:
            return
        # swap-pop the sampling list; the heap entry goes stale and is
        # skipped on pop (same idiom as the engine's expiry heap)
        i = self._epos.pop(e)
        last = self._elist.pop()
        if last != e:
            self._elist[i] = last
            self._epos[last] = i

    def pop_due(self, t: float) -> List[Tuple[float, Edge]]:
        """Expired edges (due <= t) in due order, removed from the set."""
        out: List[Tuple[float, Edge]] = []
        while self._heap and self._heap[0][0] <= t:
            due, e = heapq.heappop(self._heap)
            if self.due.get(e) != due:
                continue  # stale (removed or re-added later)
            self.discard(e)
            out.append((due, e))
        return out

    def sample_edge(self, rng: random.Random) -> Optional[Edge]:
        if not self._elist:
            return None
        return self._elist[rng.randrange(len(self._elist))]


def _arrivals(shape: str, ops: int, rate: float, seed: int,
              params: Dict) -> List[float]:
    if shape == "uniform":
        return exponential_arrivals(ops, rate, seed)
    if shape == "overload":
        # the engine-side squeeze (tiny max_pending) does the real
        # overloading; the dense clock just keeps expiries competing
        # with a saturated ingress
        return exponential_arrivals(ops, rate * params["factor"], seed)
    span = ops / rate  # expected span at the base rate
    if shape == "diurnal":
        period = params.get("period") or span / params["cycles"]
        fn = diurnal_rate(rate, period, params["depth"])
        return thinned_arrivals(ops, fn, rate * (1 + params["depth"]), seed)
    if shape == "flash":
        start = params.get("burst_start")
        length = params.get("burst_len")
        if start is None:
            start = 0.4 * span
        if length is None:
            length = 0.1 * span
        params["burst_start"], params["burst_len"] = start, length
        fn = burst_rate(rate, start, length, params["factor"])
        return thinned_arrivals(ops, fn, rate * params["factor"], seed)
    raise ValueError(f"unknown traffic shape {shape!r} (known: {SHAPES})")


def generate_trace(
    shape: str,
    *,
    ops: int = 1000,
    vertices: int = 100,
    window: float = 24000.0,
    seed: int = 0,
    rate: float = DEFAULT_RATE,
    query_mix: float = 0.2,
    slo: Optional[Dict[str, float]] = None,
    drain: bool = False,
    **shape_params,
) -> Trace:
    """Generate a sequentially valid sliding-window trace.

    ``ops`` counts *arrival* operations (inserts + queries); the window
    adds one expiry remove per insert on top, so the trace holds up to
    ``~2 * ops`` records.  ``drain=True`` appends the expiries still
    pending after the last arrival, ending on an empty graph.

    Shape parameters (``**shape_params``, all seeded-deterministic):
    ``diurnal``: ``cycles`` (default 2), ``depth`` (0.8), ``period``;
    ``flash``: ``factor`` (8.0), ``burst_start``, ``burst_len``,
    ``hub`` (0); ``overload``: ``factor`` (10.0).
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown traffic shape {shape!r} (known: {SHAPES})")
    if vertices < 3:
        raise ValueError("need at least 3 vertices")
    params: Dict = {
        "rate": rate,
        "query_mix": query_mix,
        "drain": drain,
    }
    if shape == "diurnal":
        params["cycles"] = shape_params.pop("cycles", 2)
        params["depth"] = shape_params.pop("depth", 0.8)
        params["period"] = shape_params.pop("period", None)
    elif shape == "flash":
        params["factor"] = shape_params.pop("factor", 8.0)
        params["burst_start"] = shape_params.pop("burst_start", None)
        params["burst_len"] = shape_params.pop("burst_len", None)
        params["hub"] = shape_params.pop("hub", 0)
    elif shape == "overload":
        params["factor"] = shape_params.pop("factor", 10.0)
    if shape_params:
        raise TypeError(
            f"unknown parameters for shape {shape!r}: "
            f"{sorted(shape_params)}"
        )
    arrivals = _arrivals(shape, ops, rate, seed, params)
    rng = random.Random(seed + 0x5EED)
    model = WindowModel()
    records: List[TimedOp] = []
    in_burst = None
    if shape == "flash":
        b0 = params["burst_start"]
        b1 = b0 + params["burst_len"]
        hub = params["hub"] % vertices

        def in_burst(t: float) -> bool:
            return b0 <= t < b1

    for t in arrivals:
        for due, e in model.pop_due(t):
            records.append(TimedOp(t=due, op="remove", u=e[0], v=e[1],
                                   expiry=True))
        if rng.random() < query_mix:
            records.append(_query_op(t, rng, model, vertices))
            continue
        e = _fresh_edge(rng, model, vertices,
                        hub=(hub if in_burst is not None and in_burst(t)
                             else None))
        if e is None:
            # the window is saturated (present-set ~ complete graph):
            # fall back to a query so the record count stays exact
            records.append(_query_op(t, rng, model, vertices))
            continue
        model.add(e, t + window)
        records.append(TimedOp(t=t, op="insert", u=e[0], v=e[1]))
    if drain:
        for due, e in model.pop_due(float("inf")):
            records.append(TimedOp(t=due, op="remove", u=e[0], v=e[1],
                                   expiry=True))
    header = TraceHeader(
        shape=shape, seed=seed, window=window, ops=len(records),
        vertices=vertices, slo=dict(slo if slo is not None else DEFAULT_SLO),
        params={k: v for k, v in params.items() if v is not None},
    )
    return Trace.from_ops(header, records)


def _fresh_edge(rng: random.Random, model: WindowModel, vertices: int,
                hub: Optional[int] = None) -> Optional[Edge]:
    """A uniformly sampled edge absent from the ideal window (canonical
    endpoints; ``hub`` pins one endpoint for the flash-crowd shape).
    Bounded rejection sampling with a deterministic scan fallback."""
    for _ in range(64):
        if hub is not None:
            u = hub
            v = rng.randrange(vertices)
        else:
            u = rng.randrange(vertices)
            v = rng.randrange(vertices)
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e not in model:
            return e
    base = rng.randrange(vertices)
    for i in range(vertices):
        for j in range(i + 1, vertices):
            u = (base + i) % vertices
            v = (base + j) % vertices
            if u == v:
                continue
            e = (u, v) if u < v else (v, u)
            if hub is not None and hub not in e:
                continue
            if e not in model:
                return e
    return None


def _query_op(t: float, rng: random.Random, model: WindowModel,
              vertices: int) -> TimedOp:
    """A query record: usually a ``core`` probe on an endpoint of a
    present edge (answerable), sometimes a whole-graph statistic."""
    r = rng.random()
    e = model.sample_edge(rng)
    if e is not None and r < 0.85:
        return TimedOp(t=t, op="query", q="core", args=(e[rng.randrange(2)],))
    if r < 0.93:
        return TimedOp(t=t, op="query", q="degeneracy")
    return TimedOp(t=t, op="query", q="shell_histogram")
