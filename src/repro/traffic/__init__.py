"""Temporal sliding-window workloads and adversarial traffic shapes.

The serving north star ("heavy traffic from millions of users") is only
measurable under realistic traffic.  This package provides it
(``docs/traffic.md``):

- a **replayable trace format** — canonical JSONL, seeded generator →
  file → iterator of timed ops — so million-op runs are deterministic,
  shareable, and diffable by digest (:mod:`repro.traffic.trace`);
- **traffic shapes** beyond uniform arrivals: diurnal load curves,
  flash-crowd bursts against one hub vertex, and sustained-overload
  streams that exercise admission backpressure and the ``abandoned``
  terminal state (:mod:`repro.traffic.shapes`);
- a **sliding-window replay driver** where every admitted insert is
  paired with a deterministic expiry remove at ``t + window``, driven
  through the normal :class:`~repro.service.Engine` /
  :class:`~repro.service.sharding.ShardedEngine` request envelopes so
  expiries compete with live traffic for admission and batching, with
  per-window-boundary oracle checks and SLO attainment accounting
  (:mod:`repro.traffic.driver`).

Bench: ``python -m repro.bench traffic`` reports p50/p99 latency and
deadline hit-rate per shape and emits ``BENCH_traffic_*.json``.
"""

from repro.traffic.driver import ReplayReport, replay
from repro.traffic.shapes import SHAPES, generate_trace
from repro.traffic.trace import TimedOp, Trace, TraceHeader

__all__ = [
    "SHAPES",
    "ReplayReport",
    "TimedOp",
    "Trace",
    "TraceHeader",
    "generate_trace",
    "replay",
]
