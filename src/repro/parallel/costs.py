"""Work-unit cost model for the simulated multicore.

Every algorithm (OurI/OurR, the JEI/JER and MI/MR baselines, and the
sequential OI/OR/TI/TR run as 1-worker configurations) charges its
operations in the same abstract units, so simulated makespans are directly
comparable the way the paper's wall-clock milliseconds are.

Calibration
-----------
The default magnitudes follow the relative costs of the underlying
operations on a real machine, using a cache access as the unit: a
successful CAS is roughly two cache accesses (``lock_acquire=2``), a
failed CAS stays in-cache (``cas_fail=1``), an OM splice touches a
handful of nodes (``om_move=5``), a relabel rewrites a couple dozen
labels (``om_relabel=25``), and a scalar counter bump is half an access
(``counter_op=0.5``, it usually rides on a line already loaded).  The
benchmark conclusions are insensitive to the exact values — they shift
absolute numbers, not who wins (checked by
``benchmarks/test_ablation_costs.py``).

Overriding
----------
Every constant can be overridden without code changes via environment
variables named ``REPRO_COST_<FIELD>`` (upper-cased field name), e.g.
``REPRO_COST_OM_RELABEL=40`` or ``REPRO_COST_NEIGHBOR_LOCKING=1``:
:meth:`CostModel.from_env` reads them and is what the maintainers, the
thread backend and the serving engine use to build their default model.
This is how a deployment recalibrates the simulation against measured
hardware without forking the table.  Explicitly constructed
``CostModel(...)`` instances ignore the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

__all__ = ["CostModel", "ENV_PREFIX"]

#: Environment-variable prefix for cost overrides (``REPRO_COST_SPIN`` …).
ENV_PREFIX = "REPRO_COST_"


@dataclass(frozen=True)
class CostModel:
    """Cost, in abstract work units, of each primitive operation."""

    #: comparing two vertices' k-order labels (paper: O(1) Order op)
    order_cmp: float = 1.0
    #: touching one adjacency-list entry during a scan
    adj_scan: float = 1.0
    #: one heap push/pop on the priority queue
    heap_op: float = 2.0
    #: successfully taking a lock (CAS + fence)
    lock_acquire: float = 2.0
    #: a failed CAS on a held lock
    cas_fail: float = 1.0
    #: releasing a lock
    lock_release: float = 1.0
    #: one spin-loop iteration while waiting
    spin: float = 1.0
    #: splicing an item out of / into the OM list (delete+insert pair)
    om_move: float = 5.0
    #: one OM relabel event (group split or top rebalance)
    om_relabel: float = 25.0
    #: updating the adjacency structure for one edge
    graph_mutate: float = 2.0
    #: fixed per-edge dispatch overhead
    edge_overhead: float = 3.0
    #: reading/updating one scalar counter (core, mcd, d_out, t)
    counter_op: float = 0.5
    #: ablation knob: model the lock-all-neighbors design the paper argues
    #: against — every neighbor touched during a scan pays an extra
    #: acquire+release pair (a *lower bound* on the real penalty, since it
    #: ignores the extra contention those locks would add)
    neighbor_locking: bool = False

    @classmethod
    def from_env(cls, env=None) -> "CostModel":
        """Build a model with ``REPRO_COST_<FIELD>`` overrides applied.

        Unknown/absent variables leave the calibrated defaults; boolean
        fields accept ``0/1/true/false/yes/no`` (case-insensitive).
        Malformed values raise ``ValueError`` naming the variable.
        """
        env = os.environ if env is None else env
        overrides = {}
        for f in fields(cls):
            raw = env.get(ENV_PREFIX + f.name.upper())
            if raw is None:
                continue
            try:
                if f.type == "bool" or isinstance(f.default, bool):
                    low = raw.strip().lower()
                    if low in ("1", "true", "yes", "on"):
                        overrides[f.name] = True
                    elif low in ("0", "false", "no", "off"):
                        overrides[f.name] = False
                    else:
                        raise ValueError(low)
                else:
                    overrides[f.name] = float(raw)
            except ValueError:
                raise ValueError(
                    f"bad value for {ENV_PREFIX}{f.name.upper()}: {raw!r}"
                ) from None
        return cls(**overrides)

    def scan(self, degree: int) -> float:
        """Cost of scanning a ``degree``-sized neighborhood."""
        return self.per_neighbor() * degree

    def per_neighbor(self) -> float:
        """Cost of touching one adjacency entry, including the ablation's
        per-neighbor locking penalty when enabled."""
        extra = (self.lock_acquire + self.lock_release) if self.neighbor_locking else 0.0
        return self.adj_scan + extra
