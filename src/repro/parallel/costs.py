"""Work-unit cost model for the simulated multicore.

Every algorithm (OurI/OurR, the JEI/JER and MI/MR baselines, and the
sequential OI/OR/TI/TR run as 1-worker configurations) charges its
operations in the same abstract units, so simulated makespans are directly
comparable the way the paper's wall-clock milliseconds are.  The default
magnitudes follow the relative costs of the underlying operations on a
real machine (a CAS ≈ a couple of cache accesses, an OM splice a handful,
a relabel a couple dozen); the benchmark conclusions are insensitive to
the exact values — they shift absolute numbers, not who wins (checked by
``benchmarks/test_ablation_costs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Cost, in abstract work units, of each primitive operation."""

    #: comparing two vertices' k-order labels (paper: O(1) Order op)
    order_cmp: float = 1.0
    #: touching one adjacency-list entry during a scan
    adj_scan: float = 1.0
    #: one heap push/pop on the priority queue
    heap_op: float = 2.0
    #: successfully taking a lock (CAS + fence)
    lock_acquire: float = 2.0
    #: a failed CAS on a held lock
    cas_fail: float = 1.0
    #: releasing a lock
    lock_release: float = 1.0
    #: one spin-loop iteration while waiting
    spin: float = 1.0
    #: splicing an item out of / into the OM list (delete+insert pair)
    om_move: float = 5.0
    #: one OM relabel event (group split or top rebalance)
    om_relabel: float = 25.0
    #: updating the adjacency structure for one edge
    graph_mutate: float = 2.0
    #: fixed per-edge dispatch overhead
    edge_overhead: float = 3.0
    #: reading/updating one scalar counter (core, mcd, d_out, t)
    counter_op: float = 0.5
    #: ablation knob: model the lock-all-neighbors design the paper argues
    #: against — every neighbor touched during a scan pays an extra
    #: acquire+release pair (a *lower bound* on the real penalty, since it
    #: ignores the extra contention those locks would add)
    neighbor_locking: bool = False

    def scan(self, degree: int) -> float:
        """Cost of scanning a ``degree``-sized neighborhood."""
        return self.per_neighbor() * degree

    def per_neighbor(self) -> float:
        """Cost of touching one adjacency entry, including the ablation's
        per-neighbor locking penalty when enabled."""
        extra = (self.lock_acquire + self.lock_release) if self.neighbor_locking else 0.0
        return self.adj_scan + extra
