"""Synchronous H-index refinement over flat int64 arrays.

The sharded engine's *epoch stitch* (:mod:`repro.service.sharding`,
``docs/sharding.md``): per-shard core numbers computed on shard subgraphs
are only lower bounds of the global coreness (a subgraph can only shrink
a core), so the stitched view recomputes exact global cores with the
H-index iteration of Lu et al. (Nature Sci. Rep. 2016) —

    ``k_0(v) = deg(v)``, ``k_{t+1}(v) = H({k_t(u) : u in N(v)})``

where ``H`` is the Hirsch index of the multiset (the largest ``h`` such
that at least ``h`` members are ``>= h``).  The sequence is pointwise
non-increasing and converges to the coreness of every vertex, so the
stitched cores are *exactly* the single-engine cores — the differential
bit-identity guarantee.

Rounds are **synchronous and double-buffered**: every round reads the
``cur`` array and writes the ``nxt`` array, then the driver swaps.  That
makes the fixpoint trajectory independent of vertex visit order and of
how vertices are split across shard workers — the process backend runs
the same :func:`refine_round` in N OS processes over two
``multiprocessing.shared_memory`` arrays (each worker owns a disjoint
slice of vertices, a barrier sits between rounds) and produces the same
bytes as the in-process driver.

Everything here operates on flat buffers (``array('q')`` or an int64
``memoryview`` over shared memory, :func:`repro.graph.storage.int64_view`)
and CSR adjacency (``IntGraph.flat_adjacency`` shape), so there is no
per-round object churn.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.storage import int64_buffer

__all__ = ["h_index", "seed_degrees", "refine_round", "refine_cores"]


def h_index(values: Sequence[int]) -> int:
    """Hirsch index: the largest ``h`` with ``>= h`` values ``>= h``."""
    d = len(values)
    if d == 0:
        return 0
    counts = [0] * (d + 1)
    for v in values:
        counts[d if v >= d else v] += 1
    at_least = 0
    for h in range(d, 0, -1):
        at_least += counts[h]
        if at_least >= h:
            return h
    return 0


def seed_degrees(indptr, owned: Sequence[int], cur) -> None:
    """Round 0: write ``deg(u)`` into ``cur[u]`` for every owned slot."""
    for u in owned:
        cur[u] = indptr[u + 1] - indptr[u]


def refine_round(indptr, targets, owned: Sequence[int], cur, nxt) -> int:
    """One synchronous round over the ``owned`` slots.

    Reads neighbour estimates from ``cur``, writes the H-index of each
    owned slot into ``nxt`` (always, so the back buffer never holds a
    two-rounds-stale value), and returns how many owned slots changed.
    The counting H-index here is O(deg) per vertex with no sort and no
    allocation beyond one small counts list.
    """
    changed = 0
    for u in owned:
        lo = indptr[u]
        hi = indptr[u + 1]
        d = hi - lo
        if d == 0:
            h = 0
        else:
            counts = [0] * (d + 1)
            for i in range(lo, hi):
                v = cur[targets[i]]
                counts[d if v >= d else v] += 1
            at_least = 0
            h = 0
            for cand in range(d, 0, -1):
                at_least += counts[cand]
                if at_least >= cand:
                    h = cand
                    break
        nxt[u] = h
        if h != cur[u]:
            changed += 1
    return changed


def refine_cores(indptr, targets, n: int) -> List[int]:
    """In-process driver: run rounds to the fixpoint, return the cores.

    This is the sim/thread-backend stitch path; the process backend runs
    the identical per-round kernel distributed across shard workers
    (:mod:`repro.parallel.procs`) with the router as the barrier.
    """
    cur = int64_buffer(n)
    nxt = int64_buffer(n)
    owned = range(n)
    seed_degrees(indptr, owned, cur)
    while True:
        if refine_round(indptr, targets, owned, cur, nxt) == 0:
            return list(nxt)
        cur, nxt = nxt, cur
