"""Discrete-event simulated multicore machine.

Workers are Python generators that *yield events* and receive results via
``send``:

===================  =======================  ==========================
yield                 meaning                  value sent back
===================  =======================  ==========================
``("tick", c)``       compute for c units      ``None``
``("try", key)``      CAS-acquire lock *key*   ``True``/``False``
``("release", key)``  release lock *key*       ``None``
``("spin",)``         one busy-wait iteration  ``None``
===================  =======================  ==========================

The scheduler always advances the runnable worker with the smallest local
clock (a conservative discrete-event simulation), so shared-state mutation
inside a single step is atomic — the simulated analogue of a CAS — while
anything spanning two yields can interleave with other workers.  That is
exactly the granularity at which the paper's locking protocol has to work,
and it makes logical races (stale reads across steps) reproducible and
testable instead of timing-dependent.

Locks are pure spin locks (the paper builds everything from CAS,
Algorithm 2); blocked workers burn ``spin`` events.  Livelock/deadlock is
detected by watching for a long window with no lock-state change while
waiters exist.

A ``schedule="random"`` policy (seeded) replaces min-clock selection with
uniform random choice among runnable workers, exploring far more
interleavings for correctness tests; makespans are only meaningful under
``min-clock``.

The helper generators :func:`lock_pair` and :func:`cond_acquire` implement
the paper's "lock u and v together when both are not locked" and the
conditional lock of Algorithm 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Hashable, List, Optional, Tuple

from repro.parallel.costs import CostModel

Key = Hashable
Event = Tuple

__all__ = [
    "SimMachine",
    "SimReport",
    "SimDeadlockError",
    "lock_pair",
    "cond_acquire",
    "release_all",
]


class SimDeadlockError(RuntimeError):
    """Raised when no worker can make progress (all spinning/blocked)."""


@dataclass
class SimReport:
    """Outcome of one simulated run."""

    makespan: float = 0.0           # max worker clock = parallel time
    worker_clocks: List[float] = field(default_factory=list)
    total_work: float = 0.0         # sum of tick costs = sequential work
    spin_time: float = 0.0          # total time burnt busy-waiting
    lock_acquires: int = 0
    lock_failures: int = 0          # failed CAS attempts
    events: int = 0

    @property
    def speedup_vs_work(self) -> float:
        """``total_work / makespan``: how well the run used its workers."""
        return self.total_work / self.makespan if self.makespan else 1.0


class _Lock:
    __slots__ = ("holder",)

    def __init__(self) -> None:
        self.holder: Optional[int] = None


class SimMachine:
    """The simulated multicore.  See module docstring.

    Parameters
    ----------
    num_workers:
        Number of parallel workers ``P``.
    costs:
        The :class:`CostModel` used to charge ``tick``/lock events.
    schedule:
        ``"min-clock"`` (timing-faithful, deterministic) or ``"random"``
        (seeded stress scheduling for correctness tests).
    seed:
        Seed for the random schedule.
    max_stall_events:
        Progress window for livelock detection: if this many consecutive
        events happen with at least one lock held and no lock state
        change, a :class:`SimDeadlockError` is raised.
    """

    def __init__(
        self,
        num_workers: int,
        costs: Optional[CostModel] = None,
        schedule: str = "min-clock",
        seed: int = 0,
        max_stall_events: int = 200_000,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if schedule not in ("min-clock", "random"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.num_workers = num_workers
        self.costs = costs or CostModel()
        self.schedule = schedule
        self.seed = seed
        self.max_stall_events = max_stall_events

    # ------------------------------------------------------------------
    def run(
        self, worker_bodies: List[Generator[Event, object, None]]
    ) -> SimReport:
        """Drive the given worker generators to completion.

        ``worker_bodies`` may be shorter than ``num_workers`` (idle workers
        contribute nothing); longer is an error.
        """
        if len(worker_bodies) > self.num_workers:
            raise ValueError(
                f"{len(worker_bodies)} bodies for {self.num_workers} workers"
            )
        C = self.costs
        rng = random.Random(self.seed)
        report = SimReport()
        gens = list(worker_bodies)
        n = len(gens)
        clocks = [0.0] * n
        done = [False] * n
        sendvals: List[object] = [None] * n
        locks: Dict[Key, _Lock] = {}
        stall = 0  # events since last lock-state change

        def lock_of(key: Key) -> _Lock:
            lk = locks.get(key)
            if lk is None:
                lk = locks[key] = _Lock()
            return lk

        while True:
            runnable = [i for i in range(n) if not done[i]]
            if not runnable:
                break
            if self.schedule == "random":
                wid = runnable[rng.randrange(len(runnable))]
            else:
                wid = min(runnable, key=lambda i: (clocks[i], i))
            gen = gens[wid]
            val, sendvals[wid] = sendvals[wid], None
            try:
                ev = gen.send(val)
            except StopIteration:
                done[wid] = True
                continue
            report.events += 1
            stall += 1
            kind = ev[0]
            if kind == "tick":
                cost = ev[1]
                clocks[wid] += cost
                report.total_work += cost
            elif kind == "try":
                lk = lock_of(ev[1])
                if lk.holder is None:
                    lk.holder = wid
                    clocks[wid] += C.lock_acquire
                    report.total_work += C.lock_acquire
                    report.lock_acquires += 1
                    sendvals[wid] = True
                    stall = 0
                else:
                    if lk.holder == wid:
                        raise RuntimeError(
                            f"worker {wid} re-acquiring its own lock {ev[1]!r}"
                        )
                    clocks[wid] += C.cas_fail
                    report.lock_failures += 1
                    sendvals[wid] = False
            elif kind == "release":
                lk = lock_of(ev[1])
                if lk.holder != wid:
                    raise RuntimeError(
                        f"worker {wid} releasing lock {ev[1]!r} held by {lk.holder}"
                    )
                lk.holder = None
                clocks[wid] += C.lock_release
                report.total_work += C.lock_release
                stall = 0
            elif kind == "spin":
                clocks[wid] += C.spin
                report.spin_time += C.spin
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown event {ev!r} from worker {wid}")

            if stall > self.max_stall_events and any(
                lk.holder is not None for lk in locks.values()
            ):
                holders = {
                    k: lk.holder for k, lk in locks.items() if lk.holder is not None
                }
                raise SimDeadlockError(
                    f"no lock-state change in {stall} events; "
                    f"held locks: {holders}"
                )

        report.worker_clocks = clocks
        report.makespan = max(clocks, default=0.0)
        return report


# ----------------------------------------------------------------------
# lock protocol helpers (shared by the sim and thread drivers)
# ----------------------------------------------------------------------
def lock_pair(x: Key, y: Key):
    """Acquire two locks "together when both are not locked"
    (Algorithm 5/6 line 1): try-lock both, back off completely on failure.
    No hold-and-wait, hence no deadlock through this path."""
    while True:
        ok = yield ("try", x)
        if ok:
            ok2 = yield ("try", y)
            if ok2:
                return
            yield ("release", x)
        yield ("spin",)


def cond_acquire(key: Key, cond: Callable[[], bool]):
    """The conditional lock of Algorithm 2.

    Spin until either the condition is false (return ``False`` without the
    lock) or the lock is taken with the condition still true (``True``).
    A lock acquired under a now-false condition is released immediately.
    """
    while cond():
        ok = yield ("try", key)
        if ok:
            if cond():
                return True
            yield ("release", key)
            return False
        yield ("spin",)
    return False


def release_all(keys):
    """Release every lock in ``keys`` (end-of-operation cleanup)."""
    for k in keys:
        yield ("release", k)
