"""Discrete-event simulated multicore machine.

Workers are Python generators that *yield events* and receive results via
``send``:

=====================  ==========================  ==========================
yield                   meaning                     value sent back
=====================  ==========================  ==========================
``("tick", c)``         compute for c units         ``None``
``("try", key)``        CAS-acquire lock *key*      ``True``/``False``
``("release", key)``    release lock *key*          ``None``
``("spin",)``           one busy-wait iteration     ``None``
``("read", loc)``       shared read of *loc*        ``None``
``("write", loc)``      shared write of *loc*       ``None``
=====================  ==========================  ==========================

The scheduler always advances the runnable worker with the smallest local
clock (a conservative discrete-event simulation), so shared-state mutation
inside a single step is atomic — the simulated analogue of a CAS — while
anything spanning two yields can interleave with other workers.  That is
exactly the granularity at which the paper's locking protocol has to work,
and it makes logical races (stale reads across steps) reproducible and
testable instead of timing-dependent.

``read``/``write`` events (optionally ``("read", loc, site)``) cost no
time; they declare shared accesses to an attached
:class:`~repro.analysis.races.RaceDetector` for lockset/happens-before
race checking.  Most instrumentation does not go through the event
protocol at all: the traced state wrappers
(:func:`repro.analysis.trace.instrument_state`) report accesses to the
detector directly, attributed to whichever worker the machine is
currently advancing.

Locks are pure spin locks (the paper builds everything from CAS,
Algorithm 2); blocked workers burn ``spin`` events.  Deadlock is caught
by a waits-for-graph cycle detector: a failed ``try`` adds a waits-for
edge from the worker to the lock holder, and a cycle whose members have
all been stalled for ``deadlock_window`` events is reported with the
cycle spelled out.  A stall-window fallback still catches cycle-free
livelock (no lock-state change for ``max_stall_events`` while locks are
held) and reports both holders and waiters.

A ``schedule="random"`` policy (seeded) replaces min-clock selection with
uniform random choice among runnable workers, exploring far more
interleavings for correctness tests; makespans are only meaningful under
``min-clock``.

The helper generators :func:`lock_pair` and :func:`cond_acquire` implement
the paper's "lock u and v together when both are not locked" and the
conditional lock of Algorithm 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Hashable, List, Optional, Tuple

from repro.parallel.costs import CostModel

Key = Hashable
Event = Tuple

__all__ = [
    "SimMachine",
    "SimReport",
    "SimDeadlockError",
    "lock_pair",
    "cond_acquire",
    "release_all",
]


class SimDeadlockError(RuntimeError):
    """Raised when workers can no longer make progress.

    Attributes
    ----------
    holders:
        ``{lock_key: worker}`` for every currently held lock.
    waiters:
        ``{worker: lock_key}`` for every worker spinning on a held lock.
    cycle:
        The waits-for cycle as ``[(worker, key, holder), ...]`` when one
        was found (true deadlock), else ``[]`` (livelock fallback).
    """

    def __init__(self, message: str, holders=None, waiters=None, cycle=None):
        super().__init__(message)
        self.holders = dict(holders or {})
        self.waiters = dict(waiters or {})
        self.cycle = list(cycle or [])


@dataclass
class SimReport:
    """Outcome of one simulated run.

    Time accounting: every event charges exactly one bucket, so
    ``total_work + spin_time + contended_time == sum(worker_clocks)``
    holds for every run (asserted in the test suite).
    """

    makespan: float = 0.0           # max worker clock = parallel time
    worker_clocks: List[float] = field(default_factory=list)
    total_work: float = 0.0         # sum of tick/acquire/release costs
    spin_time: float = 0.0          # total time burnt busy-waiting
    contended_time: float = 0.0     # total time burnt on failed CAS
    lock_acquires: int = 0
    lock_failures: int = 0          # failed CAS attempts
    events: int = 0

    @property
    def speedup_vs_work(self) -> float:
        """``total_work / makespan``: how well the run used its workers."""
        return self.total_work / self.makespan if self.makespan else 1.0


class _Lock:
    __slots__ = ("holder",)

    def __init__(self) -> None:
        self.holder: Optional[int] = None


class SimMachine:
    """The simulated multicore.  See module docstring.

    Parameters
    ----------
    num_workers:
        Number of parallel workers ``P``.
    costs:
        The :class:`CostModel` used to charge ``tick``/lock events.
    schedule:
        ``"min-clock"`` (timing-faithful, deterministic) or ``"random"``
        (seeded stress scheduling for correctness tests).
    seed:
        Seed for the random schedule.
    max_stall_events:
        Fallback livelock window: if this many consecutive events happen
        with at least one lock held and no lock state change (and no
        waits-for cycle explains it), a :class:`SimDeadlockError` is
        raised listing holders and waiters.
    deadlock_window:
        A waits-for cycle is reported as deadlock once every worker in
        the cycle has been continuously blocked for this many machine
        events — long enough for conditional waiters
        (:func:`cond_acquire`) to notice a flipped condition and give
        up, so only genuinely stuck cycles are reported.
    detector:
        Optional :class:`~repro.analysis.races.RaceDetector`; receives
        every acquire/release (happens-before edges) plus all shared
        accesses from traced state and ``read``/``write`` events.
    """

    def __init__(
        self,
        num_workers: int,
        costs: Optional[CostModel] = None,
        schedule: str = "min-clock",
        seed: int = 0,
        max_stall_events: int = 200_000,
        deadlock_window: int = 1_000,
        detector=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if schedule not in ("min-clock", "random"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.num_workers = num_workers
        self.costs = costs or CostModel()
        self.schedule = schedule
        self.seed = seed
        self.max_stall_events = max_stall_events
        self.deadlock_window = deadlock_window
        self.detector = detector

    # ------------------------------------------------------------------
    def run(
        self, worker_bodies: List[Generator[Event, object, None]]
    ) -> SimReport:
        """Drive the given worker generators to completion.

        ``worker_bodies`` may be shorter than ``num_workers`` (idle workers
        contribute nothing); longer is an error.
        """
        if len(worker_bodies) > self.num_workers:
            raise ValueError(
                f"{len(worker_bodies)} bodies for {self.num_workers} workers"
            )
        C = self.costs
        rng = random.Random(self.seed)
        report = SimReport()
        det = self.detector
        gens = list(worker_bodies)
        n = len(gens)
        clocks = [0.0] * n
        done = [False] * n
        sendvals: List[object] = [None] * n
        locks: Dict[Key, _Lock] = {}
        stall = 0  # events since last lock-state change
        # waits-for bookkeeping: which key each worker is blocked on, and
        # the machine event count when it entered the blocked state
        waiting_for: Dict[int, Key] = {}
        waiting_since: Dict[int, int] = {}
        if det is not None:
            det.begin(n)

        def lock_of(key: Key) -> _Lock:
            lk = locks.get(key)
            if lk is None:
                lk = locks[key] = _Lock()
            return lk

        def find_cycle(start: int):
            """Walk worker → awaited key → holder …; return the cycle as
            ``[(worker, key, holder), ...]`` if the walk revisits a
            worker whose members are all past the deadlock window."""
            path: List[Tuple[int, Key, int]] = []
            seen: Dict[int, int] = {}
            w = start
            while True:
                key = waiting_for.get(w)
                if key is None:
                    return None
                holder = locks[key].holder
                if holder is None or holder == w:
                    return None
                if w in seen:
                    cycle = path[seen[w]:]
                    if all(
                        report.events - waiting_since.get(cw, report.events)
                        >= self.deadlock_window
                        for cw, _k, _h in cycle
                    ):
                        return cycle
                    return None
                seen[w] = len(path)
                path.append((w, key, holder))
                w = holder

        def deadlock_state():
            holders = {
                k: lk.holder for k, lk in locks.items() if lk.holder is not None
            }
            waiters = {
                w: k for w, k in waiting_for.items()
                if not done[w] and locks[k].holder is not None
            }
            return holders, waiters

        while True:
            runnable = [i for i in range(n) if not done[i]]
            if not runnable:
                break
            if self.schedule == "random":
                wid = runnable[rng.randrange(len(runnable))]
            else:
                wid = min(runnable, key=lambda i: (clocks[i], i))
            gen = gens[wid]
            val, sendvals[wid] = sendvals[wid], None
            if det is not None:
                det.current = wid
                det.step = report.events
            try:
                ev = gen.send(val)
            except StopIteration:
                done[wid] = True
                waiting_for.pop(wid, None)
                waiting_since.pop(wid, None)
                continue
            finally:
                if det is not None:
                    det.current = None
            report.events += 1
            stall += 1
            kind = ev[0]
            if kind == "tick":
                cost = ev[1]
                clocks[wid] += cost
                report.total_work += cost
                waiting_for.pop(wid, None)
                waiting_since.pop(wid, None)
            elif kind == "try":
                lk = lock_of(ev[1])
                if lk.holder is None:
                    lk.holder = wid
                    clocks[wid] += C.lock_acquire
                    report.total_work += C.lock_acquire
                    report.lock_acquires += 1
                    sendvals[wid] = True
                    stall = 0
                    waiting_for.pop(wid, None)
                    waiting_since.pop(wid, None)
                    if det is not None:
                        det.on_acquire(wid, ev[1])
                else:
                    if lk.holder == wid:
                        raise RuntimeError(
                            f"worker {wid} re-acquiring its own lock {ev[1]!r}"
                        )
                    clocks[wid] += C.cas_fail
                    report.contended_time += C.cas_fail
                    report.lock_failures += 1
                    sendvals[wid] = False
                    if waiting_for.get(wid) != ev[1]:
                        waiting_for[wid] = ev[1]
                        waiting_since[wid] = report.events
                    cycle = find_cycle(wid)
                    if cycle is not None:
                        holders, waiters = deadlock_state()
                        desc = " -> ".join(
                            f"worker {w} awaits {k!r} (held by worker {h})"
                            for w, k, h in cycle
                        )
                        raise SimDeadlockError(
                            f"deadlock: waits-for cycle [{desc}]",
                            holders=holders,
                            waiters=waiters,
                            cycle=cycle,
                        )
            elif kind == "release":
                lk = lock_of(ev[1])
                if lk.holder != wid:
                    raise RuntimeError(
                        f"worker {wid} releasing lock {ev[1]!r} held by {lk.holder}"
                    )
                lk.holder = None
                clocks[wid] += C.lock_release
                report.total_work += C.lock_release
                stall = 0
                waiting_for.pop(wid, None)
                waiting_since.pop(wid, None)
                if det is not None:
                    det.on_release(wid, ev[1])
            elif kind == "spin":
                clocks[wid] += C.spin
                report.spin_time += C.spin
            elif kind == "read":
                if det is not None:
                    det.current = wid
                    det.read(ev[1], site=ev[2] if len(ev) > 2 else "<event>")
                    det.current = None
            elif kind == "write":
                if det is not None:
                    det.current = wid
                    det.write(ev[1], site=ev[2] if len(ev) > 2 else "<event>")
                    det.current = None
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown event {ev!r} from worker {wid}")

            if stall > self.max_stall_events and any(
                lk.holder is not None for lk in locks.values()
            ):
                holders, waiters = deadlock_state()
                raise SimDeadlockError(
                    f"livelock: no lock-state change in {stall} events; "
                    f"held locks: {holders}; waiters: {waiters}",
                    holders=holders,
                    waiters=waiters,
                )

        report.worker_clocks = clocks
        report.makespan = max(clocks, default=0.0)
        return report


# ----------------------------------------------------------------------
# lock protocol helpers (shared by the sim and thread drivers)
# ----------------------------------------------------------------------
def lock_pair(x: Key, y: Key):
    """Acquire two locks "together when both are not locked"
    (Algorithm 5/6 line 1): try-lock both, back off completely on failure.
    No hold-and-wait, hence no deadlock through this path."""
    while True:
        ok = yield ("try", x)
        if ok:
            ok2 = yield ("try", y)
            if ok2:
                return
            yield ("release", x)
        yield ("spin",)


def cond_acquire(key: Key, cond: Callable[[], bool]):
    """The conditional lock of Algorithm 2.

    Spin until either the condition is false (return ``False`` without the
    lock) or the lock is taken with the condition still true (``True``).
    A lock acquired under a now-false condition is released immediately.
    """
    while cond():
        ok = yield ("try", key)
        if ok:
            if cond():
                return True
            yield ("release", key)
            return False
        yield ("spin",)
    return False


def release_all(keys):
    """Release every lock in ``keys`` (end-of-operation cleanup)."""
    for k in keys:
        yield ("release", k)
