"""Discrete-event simulated multicore machine.

Workers are Python generators that *yield events* and receive results via
``send``:

=====================  ==========================  ==========================
yield                   meaning                     value sent back
=====================  ==========================  ==========================
``("tick", c)``         compute for c units         ``None``
``("try", key)``        CAS-acquire lock *key*      ``True``/``False``
``("release", key)``    release lock *key*          ``None``
``("spin",)``           one busy-wait iteration     ``None``
``("read", loc)``       shared read of *loc*        ``None``
``("write", loc)``      shared write of *loc*       ``None``
``("wave", i)``         entering schedule wave *i*  ``None``
=====================  ==========================  ==========================

The scheduler always advances the runnable worker with the smallest local
clock (a conservative discrete-event simulation), so shared-state mutation
inside a single step is atomic — the simulated analogue of a CAS — while
anything spanning two yields can interleave with other workers.  That is
exactly the granularity at which the paper's locking protocol has to work,
and it makes logical races (stale reads across steps) reproducible and
testable instead of timing-dependent.

``read``/``write`` events (optionally ``("read", loc, site)``) cost no
time; they declare shared accesses to an attached
:class:`~repro.analysis.races.RaceDetector` for lockset/happens-before
race checking.  Most instrumentation does not go through the event
protocol at all: the traced state wrappers
(:func:`repro.analysis.trace.instrument_state`) report accesses to the
detector directly, attributed to whichever worker the machine is
currently advancing.

Locks are pure spin locks (the paper builds everything from CAS,
Algorithm 2); blocked workers burn ``spin`` events.  Deadlock is caught
by a waits-for-graph cycle detector: a failed ``try`` adds a waits-for
edge from the worker to the lock holder, and a cycle whose members have
all been stalled for ``deadlock_window`` events is reported with the
cycle spelled out.  A stall-window fallback still catches cycle-free
livelock (no lock-state change for ``max_stall_events`` while locks are
held) and reports both holders and waiters.

A ``schedule="random"`` policy (seeded) replaces min-clock selection with
uniform random choice among runnable workers, exploring far more
interleavings for correctness tests; makespans are only meaningful under
``min-clock``.

The min-clock scheduler keeps one ``(clock, wid)`` entry per live worker
in a binary heap, so selecting the next worker is O(log P) instead of a
linear scan per event — with millions of events per benchmark run this
loop *is* the engine's hot path.  Events that cost no simulated time
(``read``/``write``/``wave``) leave the heap untouched.

``("wave", i)`` is a free marker emitted by scheduled workers (see
:mod:`repro.parallel.scheduling`) announcing that subsequent events
belong to schedule wave *i*; the machine attributes lock traffic to the
current wave in :attr:`SimReport.wave_contention`.  Runs that never emit
a wave marker pay one boolean check per lock event and report no wave
table.

A :class:`~repro.faults.FaultPlane` (``faults=``) turns the machine into
a hostile one: per the plane's seeded schedule a worker can **crash**
(its generator is closed mid-operation; locks it held are force-released
and counted in :attr:`SimReport.locks_orphaned`, and shared state it was
mutating must be presumed corrupt), **stall** (a burst of injected spin
time, charged to ``spin_time`` so the accounting invariant still holds),
or suffer an **acquire-timeout** (a ``try`` forced to fail even when the
lock is free).  Once a crash has been injected, any exception escaping a
*surviving* worker — the expected downstream symptom of corrupted shared
state — is recorded as a casualty (:attr:`SimReport.worker_errors`)
instead of propagating, so a faulty run always yields a report the
recovery layer (:mod:`repro.service.journal`) can act on.

The helper generators :func:`lock_pair` and :func:`cond_acquire` implement
the paper's "lock u and v together when both are not locked" and the
conditional lock of Algorithm 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heapify, heappop, heapreplace
from typing import Callable, Dict, Generator, Hashable, List, Optional, Tuple

from repro.faults.plane import CRASH, STALL, TIMEOUT
from repro.parallel.costs import CostModel

Key = Hashable
Event = Tuple

__all__ = [
    "SimMachine",
    "SimReport",
    "SimDeadlockError",
    "lock_pair",
    "cond_acquire",
    "release_all",
]


class SimDeadlockError(RuntimeError):
    """Raised when workers can no longer make progress.

    Attributes
    ----------
    holders:
        ``{lock_key: worker}`` for every currently held lock.
    waiters:
        ``{worker: lock_key}`` for every worker spinning on a held lock.
    cycle:
        The waits-for cycle as ``[(worker, key, holder), ...]`` when one
        was found (true deadlock), else ``[]`` (livelock fallback).
    """

    def __init__(self, message: str, holders=None, waiters=None, cycle=None):
        super().__init__(message)
        self.holders = dict(holders or {})
        self.waiters = dict(waiters or {})
        self.cycle = list(cycle or [])


@dataclass
class SimReport:
    """Outcome of one simulated run.

    Time accounting: every event charges exactly one bucket, so
    ``total_work + spin_time + contended_time == sum(worker_clocks)``
    holds for every run (asserted in the test suite).
    """

    makespan: float = 0.0           # max worker clock = parallel time
    worker_clocks: List[float] = field(default_factory=list)
    total_work: float = 0.0         # sum of tick/acquire/release costs
    spin_time: float = 0.0          # total time burnt busy-waiting
    contended_time: float = 0.0     # total time burnt on failed CAS
    lock_acquires: int = 0
    lock_failures: int = 0          # failed CAS attempts
    events: int = 0
    #: per-wave lock traffic, ``{wave: {"lock_acquires", "lock_failures",
    #: "contended_time", "spin_time"}}`` — populated only when workers
    #: emit ``("wave", i)`` markers (conflict-aware schedules); empty for
    #: unscheduled runs.
    wave_contention: Dict[int, Dict[str, float]] = field(default_factory=dict)
    # fault-injection outcome (all zero on clean runs, see FaultPlane)
    crashes: int = 0                # workers killed by injected crashes
    worker_errors: int = 0          # survivors that died of corrupt state
    stalls_injected: int = 0
    timeouts_injected: int = 0
    injected_stall_time: float = 0.0  # also included in spin_time
    locks_orphaned: int = 0         # locks force-released from the dead

    @property
    def faulty(self) -> bool:
        """True when the run lost at least one worker — the shared state
        must be treated as corrupt by the caller."""
        return bool(self.crashes or self.worker_errors)

    @property
    def speedup_vs_work(self) -> float:
        """``total_work / makespan``: how well the run used its workers."""
        return self.total_work / self.makespan if self.makespan else 1.0


class SimMachine:
    """The simulated multicore.  See module docstring.

    Parameters
    ----------
    num_workers:
        Number of parallel workers ``P``.
    costs:
        The :class:`CostModel` used to charge ``tick``/lock events.
    schedule:
        ``"min-clock"`` (timing-faithful, deterministic) or ``"random"``
        (seeded stress scheduling for correctness tests).
    seed:
        Seed for the random schedule.
    max_stall_events:
        Fallback livelock window: if this many consecutive events happen
        with at least one lock held and no lock state change (and no
        waits-for cycle explains it), a :class:`SimDeadlockError` is
        raised listing holders and waiters.
    deadlock_window:
        A waits-for cycle is reported as deadlock once every worker in
        the cycle has been continuously blocked for this many machine
        events — long enough for conditional waiters
        (:func:`cond_acquire`) to notice a flipped condition and give
        up, so only genuinely stuck cycles are reported.
    detector:
        Optional :class:`~repro.analysis.races.RaceDetector`; receives
        every acquire/release (happens-before edges) plus all shared
        accesses from traced state and ``read``/``write`` events.
    faults:
        Optional :class:`~repro.faults.FaultPlane`; consulted on every
        worker event to inject crash/stall/acquire-timeout faults.
        ``None`` (the default) keeps the clean-run hot path fault-free
        at the cost of one ``is None`` test per event.
    """

    def __init__(
        self,
        num_workers: int,
        costs: Optional[CostModel] = None,
        schedule: str = "min-clock",
        seed: int = 0,
        max_stall_events: int = 200_000,
        deadlock_window: int = 1_000,
        detector=None,
        faults=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if schedule not in ("min-clock", "random"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.num_workers = num_workers
        self.costs = costs or CostModel.from_env()
        self.schedule = schedule
        self.seed = seed
        self.max_stall_events = max_stall_events
        self.deadlock_window = deadlock_window
        self.detector = detector
        self.faults = faults

    # ------------------------------------------------------------------
    def run(
        self, worker_bodies: List[Generator[Event, object, None]]
    ) -> SimReport:
        """Drive the given worker generators to completion.

        ``worker_bodies`` may be shorter than ``num_workers`` (idle workers
        contribute nothing); longer is an error.
        """
        if len(worker_bodies) > self.num_workers:
            raise ValueError(
                f"{len(worker_bodies)} bodies for {self.num_workers} workers"
            )
        C = self.costs
        report = SimReport()
        det = self.detector
        gens = list(worker_bodies)
        n = len(gens)
        clocks = [0.0] * n
        sendvals: List[object] = [None] * n
        # Flat lock table: key -> holder wid (None = free).  One dict
        # probe per lock event, no per-lock object allocation.
        locks: Dict[Key, Optional[int]] = {}
        stall = 0  # events since last lock-state change
        # Slot-indexed waits-for bookkeeping: the key each worker is
        # blocked on (None = runnable) and the machine event count when it
        # entered the blocked state.
        waiting_for: List[Optional[Key]] = [None] * n
        waiting_since: List[int] = [0] * n
        alive = n
        # Local counters for the hot loop; folded into the report at the
        # end (the report object is discarded on deadlock anyway).
        events = 0
        total_work = 0.0
        spin_time = 0.0
        contended_time = 0.0
        lock_acquires = 0
        lock_failures = 0
        # Wave attribution: free until the first ("wave", i) marker.
        track_waves = False
        cur_wave = [0] * n
        wave_stats: Dict[int, Dict[str, float]] = {}
        # Fault plane: one decision per worker event when armed.
        plane = self.faults
        if plane is not None:
            plane.begin_run()
        crashes = 0
        worker_errors = 0
        stalls_injected = 0
        timeouts_injected = 0
        injected_stall_time = 0.0
        locks_orphaned = 0
        random_sched = self.schedule == "random"
        if random_sched:
            rng = random.Random(self.seed)
            runnable = list(range(n))
        else:
            # One (clock, wid) entry per live worker; the heap min is
            # exactly the old min((clocks[i], i)) linear-scan choice.
            heap = [(0.0, i) for i in range(n)]
            heapify(heap)
        if det is not None:
            det.begin(n)

        def wave_bucket(wid: int) -> Dict[str, float]:
            w = cur_wave[wid]
            b = wave_stats.get(w)
            if b is None:
                b = wave_stats[w] = {
                    "lock_acquires": 0,
                    "lock_failures": 0,
                    "contended_time": 0.0,
                    "spin_time": 0.0,
                }
            return b

        def find_cycle(start: int):
            """Walk worker → awaited key → holder …; return the cycle as
            ``[(worker, key, holder), ...]`` if the walk revisits a
            worker whose members are all past the deadlock window."""
            path: List[Tuple[int, Key, int]] = []
            seen: Dict[int, int] = {}
            w = start
            while True:
                key = waiting_for[w]
                if key is None:
                    return None
                holder = locks[key]
                if holder is None or holder == w:
                    return None
                if w in seen:
                    cycle = path[seen[w]:]
                    if all(
                        events - waiting_since[cw] >= self.deadlock_window
                        for cw, _k, _h in cycle
                    ):
                        return cycle
                    return None
                seen[w] = len(path)
                path.append((w, key, holder))
                w = holder

        def kill_worker(wid: int) -> int:
            """Remove a crashed worker: force-release its locks (robust-
            mutex semantics — survivors must not deadlock on the dead),
            drop it from the scheduler, count the orphans."""
            nonlocal alive, stall, heap
            orphaned = 0
            for k, h in locks.items():
                if h == wid:
                    locks[k] = None
                    orphaned += 1
            waiting_for[wid] = None
            alive -= 1
            stall = 0  # lock state (potentially) changed
            if random_sched:
                runnable.remove(wid)
            else:
                heap = [(c, w) for c, w in heap if w != wid]
                heapify(heap)
            if det is not None and hasattr(det, "on_fault"):
                det.on_fault(wid, CRASH, step=events)
            return orphaned

        def deadlock_state():
            holders = {
                k: h for k, h in locks.items() if h is not None
            }
            waiters = {
                w: k for w, k in enumerate(waiting_for)
                if k is not None and locks.get(k) is not None
            }
            return holders, waiters

        while alive:
            if random_sched:
                wid = runnable[rng.randrange(len(runnable))]
            else:
                wid = heap[0][1]
            gen = gens[wid]
            val, sendvals[wid] = sendvals[wid], None
            if det is not None:
                det.current = wid
                det.step = events
            try:
                ev = gen.send(val)
            except StopIteration:
                waiting_for[wid] = None
                alive -= 1
                if random_sched:
                    runnable.remove(wid)
                else:
                    heappop(heap)
                if det is not None:
                    det.current = None
                continue
            except Exception:
                if det is not None:
                    det.current = None
                if plane is None or not crashes:
                    raise
                # Downstream casualty: an injected crash corrupted shared
                # state and a *survivor* died of it.  The batch is doomed
                # either way (report.faulty), so record and march on —
                # the recovery layer discards this state wholesale.
                worker_errors += 1
                kill_worker(wid)
                continue
            except BaseException:
                if det is not None:
                    det.current = None
                raise
            if det is not None:
                det.current = None
            if plane is not None:
                fault = plane.decide(wid, ev[0])
                if fault is not None:
                    action, ticks = fault
                    if action == CRASH:
                        gen.close()
                        crashes += 1
                        locks_orphaned += kill_worker(wid)
                        continue
                    if action == STALL:
                        # burst of descheduled time, then the event is
                        # serviced normally below
                        cost = C.spin * ticks
                        clocks[wid] += cost
                        spin_time += cost
                        injected_stall_time += cost
                        stalls_injected += 1
                    else:  # TIMEOUT: force this ("try", key) CAS to fail
                        timeouts_injected += 1
                        cost = C.cas_fail
                        contended_time += cost
                        sendvals[wid] = False
                        clock = clocks[wid] + cost
                        clocks[wid] = clock
                        if not random_sched:
                            heapreplace(heap, (clock, wid))
                        events += 1
                        stall += 1
                        continue
            events += 1
            stall += 1
            kind = ev[0]
            if kind == "tick":
                cost = ev[1]
                clock = clocks[wid] + cost
                clocks[wid] = clock
                total_work += cost
                waiting_for[wid] = None
                if not random_sched:
                    heapreplace(heap, (clock, wid))
            elif kind == "try":
                key = ev[1]
                holder = locks.get(key)
                if holder is None:
                    locks[key] = wid
                    cost = C.lock_acquire
                    total_work += cost
                    lock_acquires += 1
                    sendvals[wid] = True
                    stall = 0
                    waiting_for[wid] = None
                    if track_waves:
                        wave_bucket(wid)["lock_acquires"] += 1
                    if det is not None:
                        det.on_acquire(wid, key)
                else:
                    if holder == wid:
                        raise RuntimeError(
                            f"worker {wid} re-acquiring its own lock {key!r}"
                        )
                    cost = C.cas_fail
                    contended_time += cost
                    lock_failures += 1
                    sendvals[wid] = False
                    if track_waves:
                        b = wave_bucket(wid)
                        b["lock_failures"] += 1
                        b["contended_time"] += cost
                    if waiting_for[wid] != key:
                        waiting_for[wid] = key
                        waiting_since[wid] = events
                    cycle = find_cycle(wid)
                    if cycle is not None:
                        holders, waiters = deadlock_state()
                        desc = " -> ".join(
                            f"worker {w} awaits {k!r} (held by worker {h})"
                            for w, k, h in cycle
                        )
                        raise SimDeadlockError(
                            f"deadlock: waits-for cycle [{desc}]",
                            holders=holders,
                            waiters=waiters,
                            cycle=cycle,
                        )
                clock = clocks[wid] + cost
                clocks[wid] = clock
                if not random_sched:
                    heapreplace(heap, (clock, wid))
            elif kind == "release":
                key = ev[1]
                if locks.get(key) != wid:
                    raise RuntimeError(
                        f"worker {wid} releasing lock {key!r} "
                        f"held by {locks.get(key)}"
                    )
                locks[key] = None
                cost = C.lock_release
                clock = clocks[wid] + cost
                clocks[wid] = clock
                total_work += cost
                stall = 0
                waiting_for[wid] = None
                if not random_sched:
                    heapreplace(heap, (clock, wid))
                if det is not None:
                    det.on_release(wid, key)
            elif kind == "spin":
                cost = C.spin
                clock = clocks[wid] + cost
                clocks[wid] = clock
                spin_time += cost
                if track_waves:
                    wave_bucket(wid)["spin_time"] += cost
                if not random_sched:
                    heapreplace(heap, (clock, wid))
            elif kind == "read":
                if det is not None:
                    det.current = wid
                    det.read(ev[1], site=ev[2] if len(ev) > 2 else "<event>")
                    det.current = None
            elif kind == "write":
                if det is not None:
                    det.current = wid
                    det.write(ev[1], site=ev[2] if len(ev) > 2 else "<event>")
                    det.current = None
            elif kind == "wave":
                # Free marker: attribute subsequent lock traffic to this
                # schedule wave.  Costs no simulated time, so the
                # accounting invariant is untouched.
                track_waves = True
                cur_wave[wid] = ev[1]
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown event {ev!r} from worker {wid}")

            if stall > self.max_stall_events and any(
                h is not None for h in locks.values()
            ):
                holders, waiters = deadlock_state()
                raise SimDeadlockError(
                    f"livelock: no lock-state change in {stall} events; "
                    f"held locks: {holders}; waiters: {waiters}",
                    holders=holders,
                    waiters=waiters,
                )

        report.events = events
        report.total_work = total_work
        report.spin_time = spin_time
        report.contended_time = contended_time
        report.lock_acquires = lock_acquires
        report.lock_failures = lock_failures
        if track_waves:
            report.wave_contention = {
                w: wave_stats[w] for w in sorted(wave_stats)
            }
        report.crashes = crashes
        report.worker_errors = worker_errors
        report.stalls_injected = stalls_injected
        report.timeouts_injected = timeouts_injected
        report.injected_stall_time = injected_stall_time
        report.locks_orphaned = locks_orphaned
        report.worker_clocks = clocks
        report.makespan = max(clocks, default=0.0)
        return report


# ----------------------------------------------------------------------
# lock protocol helpers (shared by the sim and thread drivers)
# ----------------------------------------------------------------------
def lock_pair(x: Key, y: Key):
    """Acquire two locks "together when both are not locked"
    (Algorithm 5/6 line 1): try-lock both, back off completely on failure.
    No hold-and-wait, hence no deadlock through this path."""
    while True:
        ok = yield ("try", x)
        if ok:
            ok2 = yield ("try", y)
            if ok2:
                return
            yield ("release", x)
        yield ("spin",)


def cond_acquire(key: Key, cond: Callable[[], bool]):
    """The conditional lock of Algorithm 2.

    Spin until either the condition is false (return ``False`` without the
    lock) or the lock is taken with the condition still true (``True``).
    A lock acquired under a now-false condition is released immediately.
    """
    while cond():
        ok = yield ("try", key)
        if ok:
            if cond():
                return True
            yield ("release", key)
            return False
        yield ("spin",)
    return False


def release_all(keys):
    """Release every lock in ``keys`` (end-of-operation cleanup)."""
    for k in keys:
        yield ("release", k)
