"""Stream driver: feed a mixed +/- edge stream through parallel batches.

The paper's batch algorithms require homogeneous batches (all insertions
or all removals — Algorithm 3's note that the two never run concurrently).
Real streams interleave both.  :class:`StreamProcessor` bridges the gap:
it buffers operations, cuts the stream into maximal homogeneous runs
(preserving order between a removal and a later insertion of the same
edge, and vice versa), and executes each run as one parallel batch.

Duplicate-within-run operations are coalesced: inserting an edge already
queued for insertion is dropped; removing an edge queued for insertion
cancels both (the paper's preprocessing would do the same).

>>> from repro import DynamicGraph
>>> from repro.parallel.stream import StreamProcessor
>>> sp = StreamProcessor(DynamicGraph([(0, 1), (1, 2)]), num_workers=4)
>>> sp.insert(0, 2)
>>> sp.remove(0, 1)
>>> reports = sp.flush()
>>> sp.core(2)
1
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.batch import BatchResult, ParallelOrderMaintainer
from repro.parallel.costs import CostModel

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["StreamProcessor"]


class StreamProcessor:
    """Buffers a mixed edge stream and applies it as homogeneous parallel
    batches through a :class:`ParallelOrderMaintainer`.

    Parameters
    ----------
    graph:
        Initial graph (ownership transfers to the maintainer).
    num_workers, costs, schedule, seed:
        Forwarded to the parallel maintainer.
    max_batch:
        Auto-flush threshold: a pending run reaching this size is executed
        immediately (keeps latency bounded on long streams).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 4,
        costs: Optional[CostModel] = None,
        schedule: str = "min-clock",
        seed: int = 0,
        max_batch: int = 10_000,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.maintainer = ParallelOrderMaintainer(
            graph, num_workers=num_workers, costs=costs,
            schedule=schedule, seed=seed,
        )
        self.max_batch = max_batch
        self._pending_kind: Optional[str] = None  # "+" | "-"
        self._pending: Dict[Edge, None] = {}
        self._reports: List[BatchResult] = []

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self.maintainer.graph

    def core(self, u: Vertex) -> int:
        """Core number of ``u`` (pending operations NOT yet applied —
        call :meth:`flush` first for exact answers)."""
        return self.maintainer.core(u)

    def cores(self) -> Dict[Vertex, int]:
        return self.maintainer.cores()

    def pending(self) -> int:
        """Number of buffered, un-flushed operations."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def insert(self, u: Vertex, v: Vertex) -> None:
        """Queue an edge insertion."""
        self._push("+", u, v)

    def remove(self, u: Vertex, v: Vertex) -> None:
        """Queue an edge removal."""
        self._push("-", u, v)

    def _push(self, kind: str, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise ValueError(f"self-loop: {u!r}")
        e = canonical_edge(u, v)
        if self._pending_kind not in (None, kind):
            if e in self._pending:
                # opposite op on a queued edge cancels both: the edge
                # returns to its pre-queue state
                del self._pending[e]
                if not self._pending:
                    self._pending_kind = None
                return
            self._flush_pending()
        self._pending_kind = kind
        if e in self._pending:
            return  # duplicate same-kind op coalesces
        # validate against the post-flush graph state
        has = self.graph.has_edge(*e)
        if kind == "+" and has:
            raise ValueError(f"edge already present: {e!r}")
        if kind == "-" and not has:
            raise KeyError(f"edge not present: {e!r}")
        self._pending[e] = None
        if len(self._pending) >= self.max_batch:
            self._flush_pending()

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        batch = list(self._pending)
        kind = self._pending_kind
        self._pending.clear()
        self._pending_kind = None
        if kind == "+":
            self._reports.append(self.maintainer.insert_edges(batch))
        else:
            self._reports.append(self.maintainer.remove_edges(batch))

    def flush(self) -> List[BatchResult]:
        """Apply everything buffered; return (and clear) the accumulated
        batch reports since the last flush."""
        self._flush_pending()
        out = self._reports
        self._reports = []
        return out

    def check(self) -> None:
        """Flush, then assert all invariants."""
        self.flush()
        self.maintainer.check()
