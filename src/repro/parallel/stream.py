"""Stream driver: feed a mixed +/- edge stream through parallel batches.

The paper's batch algorithms require homogeneous batches (all insertions
or all removals — Algorithm 3's note that the two never run concurrently).
Real streams interleave both.  :class:`StreamProcessor` bridges the gap:
it buffers operations, cuts the stream into maximal homogeneous runs
(preserving order between a removal and a later insertion of the same
edge, and vice versa), and executes each run as one parallel batch.

Duplicate-within-run operations are coalesced: inserting an edge already
queued for insertion is dropped; removing an edge queued for insertion
cancels both (the paper's preprocessing would do the same).

Since the serving engine landed, this class is a thin compatibility shim
over :class:`repro.service.Engine`: the coalescing/cancellation buffer
lives in :class:`repro.service.batcher.PendingOps`, the homogeneous-run
cut policy in :class:`~repro.service.batcher.AdaptiveBatcher`, and this
wrapper only restores the historical raise-on-bad-input surface
(``ValueError``/``KeyError`` instead of quarantine responses) and the
``flush() -> [BatchResult]`` signature.  New code should use the engine
directly — it adds snapshot reads, deadlines, admission control and
metrics.

>>> from repro import DynamicGraph
>>> from repro.parallel.stream import StreamProcessor
>>> sp = StreamProcessor(DynamicGraph([(0, 1), (1, 2)]), num_workers=4)
>>> sp.insert(0, 2)
>>> sp.remove(0, 1)
>>> reports = sp.flush()
>>> sp.core(2)
1
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import BatchResult
from repro.parallel.costs import CostModel
from repro.service.engine import Engine, EngineConfig
from repro.service.requests import (
    E_EDGE_MISSING,
    STATUS_QUARANTINED,
    Response,
)

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["StreamProcessor"]


class StreamProcessor:
    """Buffers a mixed edge stream and applies it as homogeneous parallel
    batches — compatibility shim over :class:`repro.service.Engine`.

    Parameters
    ----------
    graph:
        Initial graph (ownership transfers to the engine's maintainer).
    num_workers, costs, schedule, seed, policy:
        Forwarded to the parallel maintainer (``policy`` picks the batch
        scheduling policy, see :mod:`repro.parallel.scheduling`).
    max_batch:
        Auto-flush threshold: a pending run reaching this size is executed
        immediately (keeps latency bounded on long streams).
    faults:
        Optional :class:`~repro.faults.FaultSpec` /
        :class:`~repro.faults.FaultPlane`, forwarded to the engine — a
        crashed flush is recovered from the engine's journal and retried
        exactly as in direct engine use.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 4,
        costs: Optional[CostModel] = None,
        schedule: str = "min-clock",
        seed: int = 0,
        max_batch: int = 10_000,
        policy="fifo",
        faults=None,
    ) -> None:
        self.engine = Engine(
            graph,
            EngineConfig(
                max_batch=max_batch,
                num_workers=num_workers,
                costs=costs,
                schedule=schedule,
                seed=seed,
                policy=policy,
                faults=faults,
                # historical surface: no clock, no deadlines, no limits
                ingest_cost=0.0,
                query_cost=0.0,
            ),
        )

    # ------------------------------------------------------------------
    @property
    def maintainer(self):
        return self.engine.maintainer

    @property
    def graph(self) -> DynamicGraph:
        return self.engine.graph

    def core(self, u: Vertex) -> int:
        """Core number of ``u`` (pending operations NOT yet applied —
        call :meth:`flush` first for exact answers)."""
        return self.engine.maintainer.core(u)

    def cores(self) -> Dict[Vertex, int]:
        return self.engine.maintainer.cores()

    def pending(self) -> int:
        """Number of buffered, un-flushed operations."""
        return self.engine.pending_ops()

    # ------------------------------------------------------------------
    def insert(self, u: Vertex, v: Vertex) -> None:
        """Queue an edge insertion."""
        self._raise_on_quarantine(self.engine.insert(u, v))

    def remove(self, u: Vertex, v: Vertex) -> None:
        """Queue an edge removal."""
        self._raise_on_quarantine(self.engine.remove(u, v))

    @staticmethod
    def _raise_on_quarantine(resp: Response) -> None:
        if resp.status != STATUS_QUARANTINED:
            return
        code = (resp.error or {}).get("code")
        message = (resp.error or {}).get("message", "invalid operation")
        if code == E_EDGE_MISSING:
            raise KeyError(message)
        raise ValueError(message)

    def flush(self) -> List[BatchResult]:
        """Apply everything buffered; return (and clear) the accumulated
        batch reports since the last flush."""
        self.engine.flush()
        return self.engine.take_batch_results()

    def check(self) -> None:
        """Flush, then assert all invariants."""
        self.engine.check()
