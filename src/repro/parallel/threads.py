"""Real-thread backend: validate the synchronization protocol under
genuine preemption.

The exact same worker generators that run on the simulated machine are
driven here by ``threading.Thread``s: ``("try", key)`` maps to a
non-blocking ``threading.Lock`` acquire, ``("spin",)`` to a scheduler
yield, ``("tick", _)`` to nothing.  The GIL removes any wall-clock speedup
(the reproduction gate), but it does NOT serialize logical interleavings —
threads preempt between bytecodes, so stale reads, order flips between
lock attempts, t-protocol races and PQ staleness all genuinely occur and
must be survived by the paper's protocol.

Three shared facilities get real mutexes (each standing in for hardware
atomicity the C implementation gets for free):

* ``KOrder.mutex`` — serializes *structural* OM splices/relabels (the
  internal synchronization of the parallel OM structure [11]); order
  comparisons stay lock-free via the status-counter protocol;
* ``OrderState.t_mutex`` — makes the t-protocol's CAS/decrements atomic;
* a registry lock for creating per-vertex locks.

The graph's edge count needs no post-run repair: ``IntGraph`` derives
``num_edges`` from adjacency lengths instead of keeping a mutable counter,
so it cannot be corrupted by unsynchronized increments (adjacency
mutations themselves are always protected by the endpoint locks the
algorithms hold).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence

from repro.core.boundary import Boundary
from repro.core.state import InsertStats, OrderState, RemoveStats
from repro.faults.plane import CRASH, STALL, TIMEOUT, BatchCrashed
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.costs import CostModel
from repro.parallel.parallel_insert import insert_worker
from repro.parallel.parallel_remove import remove_worker
from repro.parallel.scheduling import get_policy

Key = Hashable

__all__ = ["ThreadMachine", "ThreadedOrderMaintainer", "ThreadReport",
           "ThreadBackedMaintainer", "ThreadBatchResult"]


@dataclass
class ThreadReport:
    """Outcome of one threaded run (correctness-oriented; no makespan)."""

    wall_s: float = 0.0
    workers: int = 0
    errors: List[BaseException] = field(default_factory=list)
    # fault-injection outcome (mirrors SimReport's fault block)
    crashes: int = 0
    worker_errors: int = 0
    stalls_injected: int = 0
    timeouts_injected: int = 0
    locks_orphaned: int = 0
    # SimReport-compatible accounting zeros, so the serving engine's
    # metrics fold (which speaks SimReport) accepts a thread report
    # unchanged; real threads have no simulated clock to fill them
    total_work: float = 0.0
    spin_time: float = 0.0
    contended_time: float = 0.0
    lock_acquires: int = 0
    lock_failures: int = 0

    @property
    def makespan(self) -> float:
        """The thread backend's "makespan" is real elapsed seconds —
        what the serving engine advances its clock by per batch."""
        return self.wall_s

    @property
    def faulty(self) -> bool:
        """True when the run lost a worker (state presumed corrupt)."""
        return bool(self.crashes or self.worker_errors)


class ThreadMachine:
    """Drive worker generators with real threads.

    When a :class:`repro.analysis.RaceDetector` is attached, the same
    read/write/acquire/release events the simulator reports are mirrored
    here — worker identity is resolved per thread (``register_thread``),
    and the detector's internal lock serializes its bookkeeping.
    """

    def __init__(self, num_workers: int, detector=None, faults=None) -> None:
        self.num_workers = num_workers
        self.detector = detector
        self.faults = faults
        self._locks: Dict[Key, threading.Lock] = {}
        self._registry = threading.Lock()

    def _lock_of(self, key: Key) -> threading.Lock:
        lk = self._locks.get(key)
        if lk is None:
            with self._registry:
                lk = self._locks.setdefault(key, threading.Lock())
        return lk

    #: faults armed: a worker burning this many *consecutive* spins is
    #: declared a casualty (corrupted state can make a conditional wait
    #: spin forever, and real threads have no livelock detector)
    SPIN_CAP = 1_000_000

    def _die(self, report: ThreadReport, wid: int, held: List[Key],
             crashed: bool) -> None:
        """Terminal bookkeeping for an injected crash or a casualty:
        release held locks (robust-mutex semantics — survivors must not
        spin forever on a dead worker's locks) and count the loss."""
        det = self.detector
        with self._registry:
            if crashed:
                report.crashes += 1
            else:
                report.worker_errors += 1
            report.locks_orphaned += len(held)
        if det is not None and hasattr(det, "on_fault"):
            det.on_fault(wid, CRASH)
        for k in held:
            self._lock_of(k).release()
        held.clear()

    def _drive(self, gen, report: ThreadReport, wid: int) -> None:
        det = self.detector
        plane = self.faults
        if det is not None:
            det.register_thread(wid)
        held: List[Key] = []
        spins = 0
        val = None
        try:
            while True:
                try:
                    ev = gen.send(val)
                except StopIteration:
                    return
                kind = ev[0]
                if plane is not None:
                    fault = plane.decide(wid, kind)
                    if fault is not None:
                        action, ticks = fault
                        if action == CRASH:
                            gen.close()
                            self._die(report, wid, held, crashed=True)
                            return
                        if action == STALL:
                            with self._registry:
                                report.stalls_injected += 1
                            for _ in range(ticks):
                                time.sleep(0)
                        elif action == TIMEOUT and kind == "try":
                            with self._registry:
                                report.timeouts_injected += 1
                            val = False
                            continue
                if kind == "tick":
                    val = None
                elif kind == "try":
                    spins = 0
                    val = self._lock_of(ev[1]).acquire(blocking=False)
                    if val:
                        held.append(ev[1])
                        if det is not None:
                            det.on_acquire(wid, ev[1])
                elif kind == "release":
                    if det is not None:
                        det.on_release(wid, ev[1])
                    self._lock_of(ev[1]).release()
                    try:
                        held.remove(ev[1])
                    except ValueError:  # pragma: no cover - protocol error
                        pass
                    val = None
                elif kind == "spin":
                    if plane is not None:
                        spins += 1
                        if spins > self.SPIN_CAP:
                            gen.close()
                            self._die(report, wid, held, crashed=False)
                            return
                    time.sleep(0)  # yield the GIL
                    val = None
                elif kind == "read":
                    if det is not None:
                        det.read(ev[1], site=ev[2] if len(ev) > 2 else "<event>")
                    val = None
                elif kind == "write":
                    if det is not None:
                        det.write(ev[1], site=ev[2] if len(ev) > 2 else "<event>")
                    val = None
                elif kind == "wave":
                    # schedule-wave marker: timing metadata only, nothing
                    # to do under real threads
                    val = None
                else:  # pragma: no cover - protocol error
                    raise RuntimeError(f"unknown event {ev!r}")
        except BaseException as exc:  # noqa: BLE001 - surface to the caller
            if plane is not None and report.crashes:
                # downstream casualty of an injected crash: corrupted
                # state killed a survivor — count it, free its locks
                self._die(report, wid, held, crashed=False)
                return
            report.errors.append(exc)

    def run(self, bodies: Sequence) -> ThreadReport:
        report = ThreadReport(workers=len(bodies))
        if self.detector is not None:
            self.detector.begin(len(bodies), threads=True)
        if self.faults is not None:
            self.faults.begin_run()
        threads = [
            threading.Thread(target=self._drive, args=(gen, report, wid))
            for wid, gen in enumerate(bodies)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report.wall_s = time.perf_counter() - t0
        if report.errors:
            raise report.errors[0]
        return report


class ThreadedOrderMaintainer:
    """OurI/OurR executed by real threads (protocol validation backend).

    Same interface as :class:`~repro.parallel.batch.ParallelOrderMaintainer`
    but returns :class:`ThreadReport` objects (wall time, no makespan).
    """

    def __init__(
        self, graph: DynamicGraph, num_workers: int = 4, detector=None,
        policy="fifo", faults=None,
    ) -> None:
        self.boundary = Boundary(graph)
        self.state = OrderState.from_graph(self.boundary.substrate)
        self.state.korder.mutex = threading.Lock()
        self.state.t_mutex = threading.Lock()
        self.num_workers = num_workers
        self.costs = CostModel.from_env()
        self.policy = get_policy(policy)
        self.detector = detector
        self.faults = faults
        if detector is not None:
            from repro.analysis.trace import instrument_state

            instrument_state(self.state, detector)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self.boundary.public

    def core(self, u) -> int:
        return self.state.korder.core[self.boundary.vertex_in(u)]

    def cores(self) -> Dict:
        return self.boundary.core_map_out(self.state.korder.core)

    def check(self) -> None:
        self.state.check_invariants()

    # ------------------------------------------------------------------
    def _plan(self, edges):
        return self.policy.plan(
            list(edges), self.num_workers, state=self.state, costs=self.costs
        )

    def _validate(self, edges, inserting: bool) -> None:
        seen = set()
        g = self.boundary.public
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop in batch: {u!r}")
            e = canonical_edge(u, v)
            if e in seen:
                raise ValueError(f"duplicate edge in batch: {e!r}")
            seen.add(e)
            if inserting and g.has_edge(u, v):
                raise ValueError(f"edge already in graph: {e!r}")
            if not inserting and not g.has_edge(u, v):
                raise KeyError(f"edge not in graph: {e!r}")

    def insert_edges(self, edges) -> ThreadReport:
        edges = list(edges)
        self._validate(edges, inserting=True)
        edges = self.boundary.edges_in(edges)
        for u, v in edges:
            self.state.ensure_vertex(u)
            self.state.ensure_vertex(v)
        plan = self._plan(edges)
        outs: List[List[InsertStats]] = []
        bodies = []
        for w, chunk in enumerate(plan.assignments):
            out: List[InsertStats] = []
            outs.append(out)
            bodies.append(
                insert_worker(self.state, chunk, self.costs, out, plan.waves_for(w))
            )
        return self._run(bodies)

    def remove_edges(self, edges) -> ThreadReport:
        edges = list(edges)
        self._validate(edges, inserting=False)
        edges = self.boundary.edges_in(edges)
        plan = self._plan(edges)
        outs: List[List[RemoveStats]] = []
        bodies = []
        for w, chunk in enumerate(plan.assignments):
            out: List[RemoveStats] = []
            outs.append(out)
            bodies.append(
                remove_worker(self.state, chunk, self.costs, out, plan.waves_for(w))
            )
        return self._run(bodies)

    def _run(self, bodies) -> ThreadReport:
        report = ThreadMachine(
            self.num_workers, detector=self.detector, faults=self.faults
        ).run(bodies)
        if report.faulty:
            raise BatchCrashed(
                f"threaded batch lost {report.crashes} worker(s) "
                f"(+{report.worker_errors} casualties); state corrupt",
                report=report,
            )
        return report


@dataclass
class ThreadBatchResult:
    """A threaded batch outcome shaped like
    :class:`~repro.parallel.batch.BatchResult` — report, per-edge stats
    and plan — so the serving engine can consume either backend through
    one code path (``EngineConfig.backend``)."""

    report: ThreadReport
    stats: list = field(default_factory=list)
    plan: object = None

    @property
    def makespan(self) -> float:
        """Real elapsed seconds (the thread backend's clock unit)."""
        return self.report.wall_s


class ThreadBackedMaintainer(ThreadedOrderMaintainer):
    """The thread backend behind the serving engine.

    Same protocol execution as :class:`ThreadedOrderMaintainer`, but the
    batch entry points return a :class:`ThreadBatchResult` carrying the
    per-edge ``InsertStats``/``RemoveStats`` (the engine's snapshot
    delta needs every ``v_star``) instead of discarding them, and the
    checkpoint-restore constructor matches
    :meth:`ParallelOrderMaintainer.from_checkpoint
    <repro.parallel.batch.ParallelOrderMaintainer.from_checkpoint>` so
    crash recovery is backend-agnostic.  Sim-only knobs (``costs``,
    ``schedule``, ``seed``) are accepted and ignored — real threads have
    no simulated clock.
    """

    def __init__(
        self, graph: DynamicGraph, num_workers: int = 4, costs=None,
        schedule: str = "min-clock", seed: int = 0, detector=None,
        policy="fifo", faults=None,
    ) -> None:
        super().__init__(graph, num_workers=num_workers, detector=detector,
                         policy=policy, faults=faults)
        if costs is not None:
            self.costs = costs

    @classmethod
    def from_checkpoint(cls, graph: DynamicGraph, cores: Dict, order,
                        **kwargs) -> "ThreadBackedMaintainer":
        """Rebuild with the k-order *exactly* ``order`` (recovery path).

        Delegates the order reconstruction to the sim facade (it is
        backend-independent state surgery) and re-arms the real mutexes
        the thread protocol needs.
        """
        from repro.parallel.batch import ParallelOrderMaintainer

        pm = ParallelOrderMaintainer.from_checkpoint(
            graph, cores, order,
            num_workers=kwargs.get("num_workers", 4),
            policy=kwargs.get("policy", "fifo"),
        )
        m = cls(DynamicGraph(),
                num_workers=kwargs.get("num_workers", 4),
                costs=kwargs.get("costs"),
                policy=kwargs.get("policy", "fifo"),
                faults=kwargs.get("faults"))
        m.boundary = pm.boundary
        m.state = pm.state
        m.state.korder.mutex = threading.Lock()
        m.state.t_mutex = threading.Lock()
        return m

    def order_sequence(self) -> List:
        """The full OM k-order as external ids (checkpoint payload)."""
        vout = self.boundary.vertex_out
        return [vout(u) for u in self.state.korder.full_sequence()]

    def insert_edges(self, edges) -> ThreadBatchResult:
        edges = list(edges)
        self._validate(edges, inserting=True)
        edges = self.boundary.edges_in(edges)
        for u, v in edges:
            self.state.ensure_vertex(u)
            self.state.ensure_vertex(v)
        plan = self._plan(edges)
        outs: List[List[InsertStats]] = []
        bodies = []
        for w, chunk in enumerate(plan.assignments):
            out: List[InsertStats] = []
            outs.append(out)
            bodies.append(
                insert_worker(self.state, chunk, self.costs, out, plan.waves_for(w))
            )
        report = self._run(bodies)
        stats = self.boundary.stats_out([s for out in outs for s in out])
        return ThreadBatchResult(report=report, stats=stats, plan=plan)

    def remove_edges(self, edges) -> ThreadBatchResult:
        edges = list(edges)
        self._validate(edges, inserting=False)
        edges = self.boundary.edges_in(edges)
        plan = self._plan(edges)
        outs: List[List[RemoveStats]] = []
        bodies = []
        for w, chunk in enumerate(plan.assignments):
            out: List[RemoveStats] = []
            outs.append(out)
            bodies.append(
                remove_worker(self.state, chunk, self.costs, out, plan.waves_for(w))
            )
        report = self._run(bodies)
        stats = self.boundary.stats_out([s for out in outs for s in out])
        return ThreadBatchResult(report=report, stats=stats, plan=plan)
