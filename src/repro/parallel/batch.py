"""Parallel-InsertEdges / Parallel-RemoveEdges (paper Algorithm 3).

:class:`ParallelOrderMaintainer` is the user-facing facade for OurI/OurR:
it owns the shared :class:`~repro.core.state.OrderState`, partitions each
batch ΔE across ``P`` workers, runs them on the simulated machine, and
returns both the per-edge instrumentation and the machine's timing report.

Insertions and removals never run concurrently with each other (Algorithm
3's note: "insertion and removal cannot run in parallel, which greatly
simplifies the synchronization"), so each batch is one homogeneous run.

One difference from a C implementation worth knowing: brand-new vertices
appearing in an insertion batch are registered *before* the parallel run
(a tiny sequential prologue) so workers never race on creating the same
vertex record — the paper's graphs preallocate all vertex slots, which is
the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.boundary import Boundary
from repro.core.korder import KOrder
from repro.core.state import InsertStats, OrderState, RemoveStats
from repro.faults.plane import BatchCrashed, as_plane
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.costs import CostModel
from repro.parallel.parallel_insert import insert_worker
from repro.parallel.parallel_remove import remove_worker
from repro.parallel.runtime import SimMachine, SimReport
from repro.parallel.scheduling import Schedule, chunk_contiguous, get_policy

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = [
    "ParallelOrderMaintainer",
    "BatchResult",
    "partition_batch",
    "validate_batch",
]


@dataclass
class BatchResult:
    """Outcome of one parallel batch."""

    report: SimReport
    stats: list = field(default_factory=list)
    #: the schedule that produced this run (worker assignments, waves,
    #: conflict counters) — None only for legacy constructions
    plan: Optional[Schedule] = None

    @property
    def makespan(self) -> float:
        """Simulated parallel running time (work units)."""
        return self.report.makespan

    def v_plus_sizes(self) -> List[int]:
        """``|V+|`` per processed edge — the paper's Figure 5 data."""
        return [len(s.v_plus) for s in self.stats]


def validate_batch(graph: DynamicGraph, edges: Sequence[Edge], inserting: bool) -> None:
    """Reject a malformed homogeneous batch before any mutation.

    Raises ``ValueError`` for self-loops, in-batch duplicates and
    insertions of present edges; ``KeyError`` for removals of absent
    edges.  Shared by the maintainer and by the serving engine's
    pre-apply guard (:mod:`repro.service.engine`), so both layers reject
    exactly the same inputs.
    """
    seen = set()
    for u, v in edges:
        if u == v:
            raise ValueError(f"self-loop in batch: {u!r}")
        e = canonical_edge(u, v)
        if e in seen:
            raise ValueError(f"duplicate edge in batch: {e!r}")
        seen.add(e)
        if inserting and graph.has_edge(u, v):
            raise ValueError(f"edge already in graph: {e!r}")
        if not inserting and not graph.has_edge(u, v):
            raise KeyError(f"edge not in graph: {e!r}")


# Contiguous chunking now lives in repro.parallel.scheduling (it is the
# fifo policy); re-exported here because it is Algorithm 3 line 1 and
# long-standing callers import it from this module.
partition_batch = chunk_contiguous


class ParallelOrderMaintainer:
    """OurI/OurR on the simulated multicore.

    Parameters
    ----------
    graph:
        Initial graph (the maintainer takes ownership).
    num_workers:
        ``P`` — the paper sweeps 1..64; we default to 4.
    costs:
        Cost model for the simulated machine.
    schedule:
        ``"min-clock"`` (timing) or ``"random"`` (interleaving stress).
    seed:
        Seed for the random schedule.
    policy:
        Batch scheduling policy — a name from
        :data:`repro.parallel.scheduling.POLICIES` (``"fifo"``, ``"lpt"``,
        ``"conflict-aware"``) or a :class:`SchedulingPolicy` instance.
        Decides which edges run concurrently; never affects the final
        cores (differential-tested).
    detector:
        Optional :class:`repro.analysis.RaceDetector`.  When given, the
        shared state is instrumented (``repro.analysis.trace``) and every
        batch feeds read/write/lock events to it; off by default so the
        timing path pays nothing.
    faults:
        Optional :class:`repro.faults.FaultSpec` or
        :class:`~repro.faults.FaultPlane`.  When armed, batches run on a
        hostile machine that can crash/stall/timeout workers; a batch
        that loses a worker raises :class:`~repro.faults.BatchCrashed`
        and the maintainer's state must be discarded (the serving
        engine rebuilds it from the journal).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 4,
        costs: Optional[CostModel] = None,
        schedule: str = "min-clock",
        seed: int = 0,
        strategy: str = "small-degree-first",
        capacity: int = 64,
        detector=None,
        policy="fifo",
        faults=None,
    ) -> None:
        # Intern-once boundary: external ids become dense ints here, the
        # workers and all shared state run int-natively underneath.
        self.boundary = Boundary(graph)
        self.state = OrderState.from_graph(
            self.boundary.substrate, strategy=strategy, capacity=capacity
        )
        self.num_workers = num_workers
        self.costs = costs or CostModel.from_env()
        self.schedule = schedule
        self.seed = seed
        self.policy = get_policy(policy)
        self.detector = detector
        self.faults = as_plane(faults, seed=seed)
        if detector is not None:
            from repro.analysis.trace import instrument_state

            instrument_state(self.state, detector)

    @classmethod
    def from_checkpoint(
        cls,
        graph: DynamicGraph,
        cores: Dict[Vertex, int],
        order: Sequence[Vertex],
        **kwargs,
    ) -> "ParallelOrderMaintainer":
        """Rebuild a maintainer whose k-order is *exactly* ``order``.

        This is the recovery path (:mod:`repro.service.journal`): a
        checkpoint stores the committed graph, its core numbers and the
        full OM order; restoring through here reproduces the pre-crash
        order structure bit-identically, where a fresh BZ bootstrap
        would only reproduce the cores.  ``d_out^+`` is recomputed from
        the order (it is a pure function of order + adjacency).
        """
        m = cls(DynamicGraph(), **kwargs)
        for u in order:
            # isolated vertices (core 0, no incident edges) are in the
            # order but not in the edge list the graph was rebuilt from
            graph.add_vertex(u)
        m.boundary = Boundary(graph)
        sub = m.boundary.substrate
        vin = m.boundary.vertex_in
        core_in = {vin(u): k for u, k in cores.items()}
        order_in = [vin(u) for u in order]
        korder = KOrder.from_decomposition(
            core_in, order_in, capacity=kwargs.get("capacity", 64), graph=sub
        )
        pos = {u: i for i, u in enumerate(order_in)}
        d_out = {
            u: sum(1 for v in sub.neighbors(u) if pos[v] > pos[u])
            for u in order_in
        }
        m.state = OrderState(sub, korder, d_out)
        if m.detector is not None:
            from repro.analysis.trace import instrument_state

            instrument_state(m.state, m.detector)
        return m

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self.boundary.public

    def core(self, u: Vertex) -> int:
        return self.state.korder.core[self.boundary.vertex_in(u)]

    def cores(self) -> Dict[Vertex, int]:
        return self.boundary.core_map_out(self.state.korder.core)

    def order_sequence(self) -> List[Vertex]:
        """The full OM k-order as external ids — non-decreasing in core.

        This is what a checkpoint stores (:mod:`repro.service.journal`):
        feeding it back through :meth:`from_checkpoint` reproduces the
        live order structure bit-identically.
        """
        vout = self.boundary.vertex_out
        return [vout(u) for u in self.state.korder.full_sequence()]

    def check(self) -> None:
        """Assert all steady-state invariants (differential vs. BZ)."""
        self.state.check_invariants()

    # ------------------------------------------------------------------
    def _validate_batch(self, edges: Sequence[Edge], inserting: bool) -> None:
        # validated against the public graph so error messages carry the
        # caller's external ids
        validate_batch(self.boundary.public, edges, inserting)

    def insert_edges(self, edges: Sequence[Edge]) -> BatchResult:
        """Parallel-InsertEdges(G, O, ΔE): insert a batch with P workers."""
        self._validate_batch(edges, inserting=True)
        edges = self.boundary.edges_in(edges)
        for u, v in edges:  # sequential prologue: register new vertices
            self.state.ensure_vertex(u)
            self.state.ensure_vertex(v)
        # Scheduling runs after the prologue so footprint estimation sees
        # every endpoint's slot.
        plan = self.policy.plan(
            edges, self.num_workers,
            state=self.state, costs=self.costs, seed=self.seed,
        )
        outs: List[List[InsertStats]] = [[] for _ in plan.assignments]
        bodies = [
            insert_worker(self.state, chunk, self.costs, out, plan.waves_for(w))
            for w, (chunk, out) in enumerate(zip(plan.assignments, outs))
        ]
        report = self._machine().run(bodies)
        self._check_faulty(report)
        stats = self.boundary.stats_out([s for out in outs for s in out])
        return BatchResult(report=report, stats=stats, plan=plan)

    def remove_edges(self, edges: Sequence[Edge]) -> BatchResult:
        """Parallel-RemoveEdges(G, O, ΔE): remove a batch with P workers."""
        self._validate_batch(edges, inserting=False)
        edges = self.boundary.edges_in(edges)
        plan = self.policy.plan(
            edges, self.num_workers,
            state=self.state, costs=self.costs, seed=self.seed,
        )
        outs: List[List[RemoveStats]] = [[] for _ in plan.assignments]
        bodies = [
            remove_worker(self.state, chunk, self.costs, out, plan.waves_for(w))
            for w, (chunk, out) in enumerate(zip(plan.assignments, outs))
        ]
        report = self._machine().run(bodies)
        self._check_faulty(report)
        stats = self.boundary.stats_out([s for out in outs for s in out])
        return BatchResult(report=report, stats=stats, plan=plan)

    # ------------------------------------------------------------------
    def _machine(self) -> SimMachine:
        return SimMachine(
            self.num_workers, self.costs, self.schedule, self.seed,
            detector=self.detector, faults=self.faults,
        )

    @staticmethod
    def _check_faulty(report: SimReport) -> None:
        if report.faulty:
            raise BatchCrashed(
                f"batch lost {report.crashes} worker(s) "
                f"(+{report.worker_errors} casualties, "
                f"{report.locks_orphaned} locks orphaned); state corrupt",
                report=report,
            )
