"""Parallel-Order edge insertion — OurI (paper Algorithm 5).

Worker coroutine for the simulated/threaded machine.  Faithful points:

* **lines 1-2** — the edge's endpoints are locked *together* (try-both,
  full back-off — no hold-and-wait) and the orientation re-checked after
  locking, because other workers may have flipped the k-order in between.
* **line 9** — the candidate in-degree ``d_in*`` of a dequeued vertex is
  *computed on use* by scanning its predecessors against this worker's
  private ``V*`` (unlike the sequential OI, which increments it in
  Forward), so unlocked successors never carry worker-private counters.
* **locking discipline** — only vertices entering ``V+`` are ever locked
  (the paper's headline design: neighbors stay unlocked).  Propagation
  locks are taken in k-order via the version-stamped queue, which is the
  deadlock-freedom argument of Appendix C: a worker whose candidate set
  would cross a vertex locked by another worker necessarily *blocks on
  that vertex first*, so Backward can never re-thread a vertex across a
  locked one.
* **dequeue** (Algorithm 13) — conditionally lock the recorded front with
  ``core == K`` (skip promoted vertices), then verify its status counter;
  a mismatch means it was re-threaded while queued: unlock, mark the
  queue version stale, re-snapshot (Algorithm 11) and retry.
* **end phase** — each surviving candidate is promoted with a single
  status window (delete + core bump + splice at the head of O_{K+1}),
  its ``d_out^+`` recomputed against the new order with concurrent-safe
  comparisons, and the affected mcd caches invalidated.

All shared-counter writes target locked vertices only; all reads of
unlocked vertices (core numbers during Forward, order comparisons during
scans) are the benign races the paper's Appendix C argues safe — the
random-schedule differential tests exercise them heavily.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.pqueue import VersionedPQ
from repro.core.state import InsertStats, OrderState
from repro.parallel.costs import CostModel
from repro.parallel.runtime import cond_acquire, lock_pair, release_all

Vertex = Hashable

__all__ = ["insert_edge_par", "insert_worker"]


def _relabel_count(state: OrderState) -> int:
    om = state.korder.om
    return om.n_splits + om.n_rebalances


def insert_edge_par(state: OrderState, a: Vertex, b: Vertex, C: CostModel):
    """Generator implementing InsertEdge_p for one edge.  Returns
    :class:`InsertStats` (via StopIteration value / ``yield from``)."""
    graph, ko = state.graph, state.korder
    yield ("tick", C.edge_overhead)

    # --- lines 1-2: lock the endpoints together, in k-order -----------
    while True:
        if ko.precedes_concurrent(a, b):
            u, v = a, b
        else:
            u, v = b, a
        yield ("tick", C.order_cmp)
        yield from lock_pair(u, v)
        yield ("tick", C.order_cmp)
        if ko.precedes(v, u):  # flipped before we got the locks: redo
            yield ("release", u)
            yield ("release", v)
            yield ("spin",)
            continue
        break
    locked: Set[Vertex] = {u, v}
    K = ko.core[u]

    # --- lines 3-4: insert the edge, charge u's d_out^+ ---------------
    # (a scan is only paid when the lazy d_out must actually be
    # rematerialized; the common case is a cached counter bump, as in the
    # paper where d_out^+ is a maintained field)
    if state.d_out.get(u) is None:
        yield ("tick", C.scan(graph.degree(u)))
    du = state.ensure_d_out(u) + 1
    graph.add_edge(u, v)
    if state.mcd.get(u) is not None and ko.core[v] >= K:
        state.mcd[u] += 1  # type: ignore[operator]
    if state.mcd.get(v) is not None and K >= ko.core[v]:
        state.mcd[v] += 1  # type: ignore[operator]
    state.d_out[u] = du
    yield ("tick", C.graph_mutate + C.counter_op)

    # --- lines 5-6 -----------------------------------------------------
    yield ("release", v)
    locked.discard(v)
    stats = InsertStats()
    if du <= K:
        yield ("release", u)
        return stats

    # --- lines 7-13: propagate in k-order ------------------------------
    pq = VersionedPQ(ko, K)
    d_in: Dict[Vertex, int] = {}
    v_star: Dict[Vertex, None] = {}
    v_plus: Set[Vertex] = set()

    def forward(w: Vertex):
        """Algorithm 5 lines 18-21 (w locked)."""
        v_star[w] = None
        v_plus.add(w)
        for x in list(graph.neighbors(w)):
            yield ("tick", C.per_neighbor() + C.order_cmp)
            # benign racy read of an unlocked neighbor's core; the
            # dequeuer's conditional lock re-validates it
            if ko.core_relaxed(x) == K and ko.precedes_concurrent(w, x):
                if x not in pq:
                    pq.enqueue(x)
                    yield ("tick", C.heap_op)

    def do_pre(w: Vertex, r: deque, in_r: Set[Vertex]):
        """Algorithm 5 lines 32-35."""
        for x in list(graph.neighbors(w)):
            yield ("tick", C.per_neighbor() + C.order_cmp)
            if x in v_star and ko.precedes_concurrent(x, w):
                state.d_out[x] -= 1  # type: ignore[operator]
                if d_in.get(x, 0) + state.d_out[x] <= K and x not in in_r:
                    r.append(x)
                    in_r.add(x)

    def do_post(w: Vertex, r: deque, in_r: Set[Vertex]):
        """Algorithm 5 lines 36-40."""
        for x in list(graph.neighbors(w)):
            yield ("tick", C.per_neighbor() + C.order_cmp)
            if (
                x in v_star
                and d_in.get(x, 0) > 0
                and ko.precedes_concurrent(w, x)
            ):
                d_in[x] -= 1
                if d_in[x] + state.d_out[x] <= K and x not in in_r:
                    r.append(x)
                    in_r.add(x)

    def backward(w: Vertex):
        """Algorithm 5 lines 22-31 (w and every re-threaded vertex are
        locked by this worker)."""
        v_plus.add(w)
        anchor = w
        r: deque = deque()
        in_r: Set[Vertex] = set()
        yield from do_pre(w, r, in_r)
        state.d_out[w] += d_in.get(w, 0)  # type: ignore[operator]
        d_in[w] = 0
        yield ("tick", C.counter_op)
        while r:
            x = r.popleft()
            in_r.discard(x)
            del v_star[x]
            yield from do_pre(x, r, in_r)
            yield from do_post(x, r, in_r)
            before = _relabel_count(state)
            ko.move_after_vertex(anchor, x)
            yield (
                "tick",
                C.om_move + (_relabel_count(state) - before) * C.om_relabel,
            )
            anchor = x
            state.d_out[x] += d_in.get(x, 0)  # type: ignore[operator]
            d_in[x] = 0
            yield ("tick", C.counter_op)

    def dequeue():
        """Algorithm 13: lock-and-validate the queue front in k-order."""
        while len(pq):
            if pq.ver is None:
                nrec = pq.update_version()
                yield ("tick", C.heap_op * max(1, nrec))
            w = pq.front()
            if w is None:
                return None
            if w in locked:
                # Re-processing one of our own V+ vertices (re-enqueued by
                # a later Forward); it is already locked and under our
                # control, so no CAS / status dance is needed.
                pq.remove(w)
                yield ("tick", C.heap_op)
                return w
            got = yield from cond_acquire(w, lambda ww=w: ko.core_relaxed(ww) == K)
            if not got:
                pq.remove(w)  # promoted meanwhile; skip (Alg. 13 line 5)
                yield ("tick", C.heap_op)
                continue
            if ko.status(w) != pq.recorded_status(w):
                # re-threaded while queued: stale order; re-version
                yield ("release", w)
                pq.ver = None
                continue
            pq.remove(w)
            yield ("tick", C.heap_op)
            locked.add(w)
            return w
        return None

    w: Vertex = u
    while w is not None:
        # line 9: compute d_in* on use
        din = 0
        for x in list(graph.neighbors(w)):
            yield ("tick", C.per_neighbor() + C.order_cmp)
            if x in v_star and ko.precedes_concurrent(x, w):
                din += 1
        d_in[w] = din
        if state.d_out.get(w) is None:
            yield ("tick", C.scan(graph.degree(w)))
        dw = state.ensure_d_out(w)
        yield ("tick", C.counter_op)
        if din + dw > K:
            yield from forward(w)
        elif din > 0:
            yield from backward(w)
        elif w not in v_plus:
            yield ("release", w)  # line 11: cannot be in V+
            locked.discard(w)
        # else: a re-processed V+ vertex with no current candidate
        # predecessors — keep it locked until the end phase.
        w = yield from dequeue()

    # --- lines 14-17: ending phase --------------------------------------
    winners: List[Vertex] = list(v_star)
    stats.v_star = winners
    stats.v_plus = list(v_plus)
    prev = None
    for x in winners:
        d_in[x] = 0
        before = _relabel_count(state)
        if prev is None:
            ko.promote_head(x, K + 1)
        else:
            ko.promote_after(prev, x, K + 1)
        prev = x
        yield (
            "tick",
            C.om_move + C.counter_op + (_relabel_count(state) - before) * C.om_relabel,
        )
    for x in winners:
        # d_out^+ recompute against the new order (w locked; neighbors
        # compared with the Algorithm 4 protocol)
        cnt = 0
        for y in list(graph.neighbors(x)):
            yield ("tick", C.per_neighbor() + C.order_cmp)
            if ko.precedes_concurrent(x, y):
                cnt += 1
        state.d_out[x] = cnt
        state.mcd[x] = None
        for y in graph.neighbors(x):
            # neighbors are unlocked: ∅-invalidate through the wipe
            # accessor (a relaxed write for the race detector)
            state.mcd_wipe(y)
        yield ("tick", C.counter_op)
    yield from release_all(locked)
    return stats


def insert_worker(
    state: OrderState,
    edges: Iterable[tuple],
    C: CostModel,
    out: List[InsertStats],
    waves: Optional[Sequence[int]] = None,
):
    """DoInsert_p (Algorithm 3): process this worker's share of ΔE.

    ``waves`` (from a :class:`~repro.parallel.scheduling.Schedule`) is the
    per-edge wave index; the worker emits a free ``("wave", i)`` marker
    whenever it changes so the machine can attribute contention per wave.
    Unscheduled callers pass ``None`` and pay nothing.
    """
    if waves is None:
        for a, b in edges:
            stats = yield from insert_edge_par(state, a, b, C)
            out.append(stats)
    else:
        cur = None
        for (a, b), w in zip(edges, waves):
            if w != cur:
                cur = w
                yield ("wave", w)
            stats = yield from insert_edge_par(state, a, b, C)
            out.append(stats)
