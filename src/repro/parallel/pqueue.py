"""Version-stamped min-priority queue over k-order labels (Appendix E).

Worker-private queue ``Q_p`` used by the parallel insertion (Algorithm 5)
to dequeue affected vertices in k-order while other workers concurrently
re-thread vertices and trigger OM relabels.  Each entry snapshots
``[L_b(v), L_t(v), v.s, ver]`` at enqueue time:

* an entry's *status* ``v.s`` detects that ``v`` moved after enqueueing
  (Algorithm 13 lines 6-7): the dequeuer unlocks and forces a re-version;
* the *version* stamp detects OM relabels, which may rewrite labels
  non-monotonically: whenever the queue's version is stale (``ver = ∅``),
  :meth:`update_version` re-snapshots every member (Algorithm 11) before
  the next ``front``.

The lock-and-check dance of Algorithm 13 itself lives in
``repro.parallel.parallel_insert`` because it owns lock bookkeeping; this
class provides the queue state and the version protocol.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

Vertex = Hashable

__all__ = ["VersionedPQ"]


class VersionedPQ:
    """Worker-private priority queue with the Appendix E version protocol."""

    __slots__ = ("ko", "k", "ver", "_heap", "_rec", "_seq")

    def __init__(self, korder, k: int) -> None:
        self.ko = korder
        self.k = k
        self.ver: Optional[int] = korder.version
        self._heap: List[Tuple[tuple, int, Vertex]] = []
        # member -> (labels, status, version) snapshot
        self._rec: Dict[Vertex, Tuple[tuple, int, int]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rec)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._rec

    def _push(self, v: Vertex, labels: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (labels, self._seq, v))

    # ------------------------------------------------------------------
    def _stable_labels(self, v: Vertex):
        """Read (labels, status) surviving concurrent moves.  Under the
        step-atomic simulator this returns first try; under threads it
        retries through torn reads (mover's status bump guarantees
        progress)."""
        while True:
            s = self.ko.status(v)
            if s % 2 == 1:
                continue
            try:
                labels = self.ko.labels(v)
            except AttributeError:
                continue
            if self.ko.status(v) == s:
                return labels, s

    def _version_relaxed(self) -> int:
        """Read ``O.ver`` — a designed racy read (Appendix E): staleness
        is detected by the re-read after snapshotting, so the race
        detector sees it as a relaxed ``("om", "version")`` access."""
        tr = self.ko.trace
        if tr is not None:
            tr.read(("om", "version"), relaxed=True)
        return self.ko.version

    def enqueue(self, v: Vertex) -> None:
        """Algorithm 12: snapshot and insert; go stale on any inconsistency."""
        if v in self._rec:
            return
        ver0 = self._version_relaxed()
        labels, s0 = self._stable_labels(v)
        self._rec[v] = (labels, s0, ver0)
        self._push(v, labels)
        if (
            s0 % 2 == 1
            or s0 != self.ko.status(v)
            or ver0 != self._version_relaxed()
            or self.ver is None
            or ver0 != self.ver
        ):
            self.ver = None  # delayed re-version at next dequeue

    def update_version(self) -> int:
        """Algorithm 11: bring every member to one consistent version.

        Returns the number of members re-snapshotted (the dequeuer charges
        that as heap-rebuild cost).  Spins while a relabel is in flight or
        a member is mid-move (only observable under the thread backend;
        in the step-atomic simulator each attempt succeeds first try).
        """
        while True:
            ver2 = self._version_relaxed()
            if self.ko.relabels_in_progress:
                continue
            fresh: Dict[Vertex, Tuple[tuple, int, int]] = {}
            ok = True
            for v in self._rec:
                labels, s = self._stable_labels(v)
                fresh[v] = (labels, s, ver2)
            if not ok or ver2 != self._version_relaxed() or self.ko.relabels_in_progress:
                continue
            self._rec = fresh
            self._heap = []
            self._seq = 0
            for v, (labels, _s, _ver) in fresh.items():
                self._push(v, labels)
            heapq.heapify(self._heap)
            self.ver = ver2
            return len(fresh)

    def front(self) -> Optional[Vertex]:
        """The member with the minimum snapshotted labels (no removal).

        Callers must have refreshed the version first (``ver`` not None).
        """
        while self._heap:
            labels, _seq, v = self._heap[0]
            rec = self._rec.get(v)
            if rec is None or rec[0] != labels:
                heapq.heappop(self._heap)  # superseded entry
                continue
            return v
        return None

    def remove(self, v: Vertex) -> None:
        """Drop ``v`` from the queue (entry removal is lazy)."""
        self._rec.pop(v, None)

    def recorded_status(self, v: Vertex) -> int:
        """The status snapshot taken when ``v`` was (re)recorded."""
        return self._rec[v][1]
