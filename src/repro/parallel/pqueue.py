"""Deprecated compatibility shim — use :mod:`repro.core.pqueue`.

:class:`~repro.core.pqueue.VersionedPQ` and the sequential
:class:`~repro.core.pqueue.KOrderPQ` share one lazy-rekey implementation
in :mod:`repro.core.pqueue`; this module re-exports the concurrent
variant so historical imports (``from repro.parallel.pqueue import
VersionedPQ``) keep working, but importing it now emits a
``DeprecationWarning``.  All in-repo code imports the real location.
"""

from __future__ import annotations

import warnings

from repro.core.pqueue import VersionedPQ

warnings.warn(
    "repro.parallel.pqueue is deprecated; import VersionedPQ from "
    "repro.core.pqueue instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["VersionedPQ"]
