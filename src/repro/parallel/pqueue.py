"""Compatibility shim: the version-stamped queue moved to ``repro.core.pqueue``.

:class:`~repro.core.pqueue.VersionedPQ` and the sequential
:class:`~repro.core.pqueue.KOrderPQ` now share one lazy-rekey
implementation; this module re-exports the concurrent variant so existing
imports (``from repro.parallel.pqueue import VersionedPQ``) keep working.
"""

from __future__ import annotations

from repro.core.pqueue import VersionedPQ

__all__ = ["VersionedPQ"]
