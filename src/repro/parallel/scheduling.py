"""Conflict-aware batch scheduling for the parallel maintainers.

The paper's whole advantage is that Parallel-Order workers contend only
on the tiny ``V+`` lock sets — but *which* edges run concurrently is the
dispatcher's choice, and feeding ΔE to workers in arrival order lets
edges with overlapping neighborhoods pile up on the same vertex locks at
the same simulated instant.  Batch-parallel k-core systems schedule
around exactly this structure (Liu & Shun's batched updates exploit
in-batch conflict structure; the matching baseline of Wang/Jin et al. is
a conflict-*avoidance* pre-pass taken to the extreme of one matching per
round).  This module is the middle ground: a cheap pre-pass that keeps
the paper's lock protocol untouched but orders the work so concurrent
edges rarely want the same locks.

Every policy implements one method::

    plan(edges, workers, *, state=None, costs=None, seed=0) -> Schedule

and returns per-worker edge lists in execution order.  Three policies
ship:

``fifo``
    Arrival order, contiguous chunks (Algorithm 3 line 1) — the
    historical behaviour and the baseline every benchmark compares
    against.

``lpt``
    Longest-estimated-cost-first greedy assignment onto the least
    loaded worker (the classic LPT heuristic, shared with the JE
    baseline's schedule in :mod:`repro.baselines.scheduling`).  Balances
    load but is conflict-blind.

``conflict-aware``
    The tentpole.  Its shape was fixed by measuring where simulated
    contention actually lives: instrumenting per-key lock failures on a
    hub-incident batch shows **every** contended lock is a batch
    endpoint that recurs across many edges of the batch — the
    speculative alternative (treating the core-``K`` neighborhoods that
    propagation may visit as part of the conflict footprint) colors the
    batch into hundreds of tiny waves whose neighbors all conflict, and
    *loses* to fifo.  Three steps survive the measurements:

    1. **Footprint estimation** — an endpoint is *hot* when it appears
       in at least :data:`HOT_THRESHOLD` batch edges; an edge's
       footprint is its hot endpoints (usually zero or one).  Costs are
       estimated off the interned adjacency arrays with the endpoint
       scan *amortized* over the vertex's batch incidence — the first
       edge at a vertex pays the ``mcd`` materialization scan and the
       rest hit the cache, so charging every hub edge the full hub
       degree (the naive estimate) overstates hub work by an order of
       magnitude and mis-balances everything downstream.
    2. **Greedy coloring** of the implicit conflict graph (edges
       conflict iff footprints intersect) into *waves*, cheapest-last.
       The coloring never materializes the conflict graph: each vertex
       carries a bitmask of the waves already using it, so an edge's
       forbidden set is the OR over its footprint and its wave is the
       lowest zero bit.  Waves order each worker's queue and key the
       per-wave contention metrics.
    3. **Hot-group dealing** — edges sharing a primary hot endpoint
       form a group; a group is dealt to a *team* of
       ``ceil(load / (SPLIT_FACTOR * ideal))`` least-loaded workers.
       One worker per team serializes the group's conflicts in program
       order (free), while capping the team size bounds the imbalance a
       heavy hub can cause; teams larger than one trade a little
       intra-team contention for balance, which measures strictly
       better than either extreme (pure affinity serializes a hub's
       whole pipeline; pure spreading recreates fifo's lock storms).
       Cold edges fill remaining capacity longest-first (LPT).

    Workers prefix each wave's edges with a ``("wave", i)`` event, which
    the simulated machine uses to attribute lock contention per wave
    (:attr:`~repro.parallel.runtime.SimReport.wave_contention`).  There
    is **no barrier** between waves — a barrier would trade contention
    for idle time; grouping already keeps cross-worker conflicts rare.

Scheduling is estimation, not synchronization: the lock protocol stays
exactly the paper's, so a mis-estimated footprint costs performance,
never correctness.  The differential tests drive every policy against
the sequential ground truth to pin that down.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = [
    "Schedule",
    "SchedulingPolicy",
    "FifoPolicy",
    "LptPolicy",
    "ConflictAwarePolicy",
    "POLICIES",
    "get_policy",
    "chunk_contiguous",
    "HOT_THRESHOLD",
    "SPLIT_FACTOR",
]

#: Batch-incidence threshold above which an endpoint counts as *hot*:
#: a vertex named by this many batch edges is a lock other workers will
#: queue on.  Vertices below the threshold are locked at most once
#: concurrently and never showed up in the contention instrumentation.
HOT_THRESHOLD = 2

#: Group-splitting reluctance: a hot group of estimated load ``L`` is
#: dealt across ``ceil(L / (SPLIT_FACTOR * total/workers))`` workers.
#: Smaller values favour balance (more intra-team contention), larger
#: values favour serialization (a heavy hub becomes the critical path).
SPLIT_FACTOR = 1.0


@dataclass
class Schedule:
    """A batch mapped onto workers, in execution order.

    ``assignments[w]`` is worker ``w``'s edge list; ``waves[w]`` (when
    the policy produces waves) is the parallel list of wave indices, and
    workers emit a ``("wave", i)`` event whenever the index changes.
    Empty per-worker lists are dropped, mirroring ``partition_batch``.
    """

    policy: str
    assignments: List[List[Edge]]
    waves: Optional[List[List[int]]] = None
    num_waves: int = 1
    #: conflict-graph degree sum observed while coloring (a cheap proxy
    #: for how contended the batch is; 0 for conflict-blind policies)
    conflicts: int = 0
    est_costs: Dict[Edge, float] = field(default_factory=dict)

    def waves_for(self, w: int) -> Optional[List[int]]:
        return self.waves[w] if self.waves is not None else None

    def all_edges(self) -> List[Edge]:
        return [e for chunk in self.assignments for e in chunk]


def chunk_contiguous(edges: Sequence[Edge], parts: int) -> List[List[Edge]]:
    """Split ΔE into ``parts`` contiguous, near-equal chunks (Algorithm 3
    line 1).  Shared by the fifo policy and ``batch.partition_batch``."""
    n = len(edges)
    if parts < 1:
        raise ValueError("parts must be >= 1")
    out: List[List[Edge]] = []
    base, extra = divmod(n, parts)
    i = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append(list(edges[i : i + size]))
        i += size
    return [c for c in out if c]


def _batch_incidence(edges: Sequence[Edge]) -> Dict[Vertex, int]:
    """How many batch edges name each vertex (the contention predictor)."""
    cnt: Dict[Vertex, int] = {}
    for u, v in edges:
        cnt[u] = cnt.get(u, 0) + 1
        cnt[v] = cnt.get(v, 0) + 1
    return cnt


def _estimate_costs(
    edges: Sequence[Edge], state, costs, cnt: Optional[Dict[Vertex, int]] = None
) -> List[float]:
    """Per-edge work estimate: dispatch overhead plus both endpoint
    neighborhood scans, *amortized* over each vertex's batch incidence.

    The scans (``mcd``/``d_out`` materialization) are cached per vertex
    for the duration of a batch, so only the first edge at a vertex pays
    the full degree; charging it to every edge overstates hub work ~10x
    and was measured to mis-balance every downstream assignment.  The
    constant term stands in for the per-edge propagation work the plan
    cannot see.  Callers that already computed the batch incidence map
    pass it via ``cnt`` to skip recounting."""
    if state is None:
        return [1.0] * len(edges)
    graph = state.graph
    per_nbr = costs.per_neighbor() if costs is not None else 1.0
    overhead = costs.edge_overhead if costs is not None else 3.0
    if cnt is None:
        cnt = _batch_incidence(edges)
    # batch endpoints are guaranteed present, so len(adj) == degree();
    # reading the array-backed adjacency directly skips a Python-level
    # presence check per endpoint (this runs 2x per batch edge)
    adj = getattr(graph, "_adj", None)
    if adj is not None:
        return [
            overhead
            + per_nbr * (len(adj[u]) / cnt[u] + len(adj[v]) / cnt[v] + 6.0)
            for u, v in edges
        ]
    degree = graph.degree
    return [
        overhead + per_nbr * (degree(u) / cnt[u] + degree(v) / cnt[v] + 6.0)
        for u, v in edges
    ]


class SchedulingPolicy:
    """Base class: a named strategy mapping a batch onto workers."""

    name = "abstract"

    def plan(
        self,
        edges: Sequence[Edge],
        workers: int,
        *,
        state=None,
        costs=None,
        seed: int = 0,
    ) -> Schedule:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class FifoPolicy(SchedulingPolicy):
    """Arrival order, contiguous chunks — the historical dispatcher."""

    name = "fifo"

    def plan(self, edges, workers, *, state=None, costs=None, seed=0):
        return Schedule(
            policy=self.name, assignments=chunk_contiguous(edges, workers)
        )


class LptPolicy(SchedulingPolicy):
    """Longest-estimated-cost-first onto the least loaded worker.

    Conflict-blind; exists as the load-balance-only ablation between
    ``fifo`` and ``conflict-aware`` (same greedy assignment the JE
    baseline's level schedule uses, via :func:`lpt_assign`)."""

    name = "lpt"

    def plan(self, edges, workers, *, state=None, costs=None, seed=0):
        # Imported lazily: repro.baselines pulls in the baseline
        # maintainers, which import repro.parallel.batch — a cycle at
        # module-import time, fine at call time.
        from repro.baselines.scheduling import lpt_assign

        if workers < 1:
            raise ValueError("workers must be >= 1")
        edges = list(edges)
        est = _estimate_costs(edges, state, costs)
        groups = lpt_assign(est, workers)
        assignments = [[edges[i] for i in g] for g in groups if g]
        return Schedule(
            policy=self.name,
            assignments=assignments,
            est_costs=dict(zip(edges, est)),
        )


class ConflictAwarePolicy(SchedulingPolicy):
    """Hot-endpoint footprints → greedy wave coloring → group dealing."""

    name = "conflict-aware"

    def __init__(
        self,
        hot_threshold: int = HOT_THRESHOLD,
        split_factor: float = SPLIT_FACTOR,
    ) -> None:
        self.hot_threshold = hot_threshold
        self.split_factor = split_factor

    # -- steps 1-3: footprints, coloring, assignment --------------------
    def plan(self, edges, workers, *, state=None, costs=None, seed=0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        edges = list(edges)
        if not edges:
            return Schedule(policy=self.name, assignments=[], waves=[])
        cnt = _batch_incidence(edges)
        est = _estimate_costs(edges, state, costs, cnt=cnt)
        hot = {v for v, c in cnt.items() if c >= self.hot_threshold}
        footprints: List[List[Vertex]] = [
            [x for x in e if x in hot] for e in edges
        ]

        # Greedy coloring over the implicit conflict graph.  Color the
        # expensive edges first (Welsh–Powell flavour): they have the
        # most conflicts, so giving them low wave numbers keeps the
        # early, well-populated waves conflict-free.
        order = sorted(range(len(edges)), key=est.__getitem__, reverse=True)
        used_waves: Dict[Vertex, int] = {}  # vertex -> bitmask of waves
        wave_of = [0] * len(edges)
        conflicts = 0
        num_waves = 1
        for i in order:
            forbidden = 0
            for x in footprints[i]:
                m = used_waves.get(x)
                if m:
                    forbidden |= m
            if forbidden:
                conflicts += forbidden.bit_count()
            # lowest zero bit of ``forbidden``
            wave = (~forbidden & (forbidden + 1)).bit_length() - 1
            wave_of[i] = wave
            if wave + 1 > num_waves:
                num_waves = wave + 1
            bit = 1 << wave
            for x in footprints[i]:
                used_waves[x] = used_waves.get(x, 0) | bit

        # Hot-group dealing: each group (edges sharing a primary hot
        # endpoint) goes to a load-proportional team of workers, heavy
        # groups first while placement is still free.  Cold edges then
        # fill remaining capacity longest-first.
        groups: Dict[Vertex, List[int]] = {}
        cold: List[int] = []
        for i, fp in enumerate(footprints):
            if fp:
                primary = max(fp, key=lambda v: cnt[v])
                groups.setdefault(primary, []).append(i)
            else:
                cold.append(i)
        ideal = sum(est) / workers
        chunk = max(self.split_factor * ideal, 1e-9)
        loads = [0.0] * workers
        picks: List[List[int]] = [[] for _ in range(workers)]
        group_loads = {v: sum(est[i] for i in mem) for v, mem in groups.items()}
        group_order = sorted(
            groups.items(), key=lambda kv: group_loads[kv[0]], reverse=True
        )
        # One persistent (load, worker) heap serves team selection and
        # the cold fill: every load update flows through it, so entries
        # are never stale.  (load, worker) tuples break load ties toward
        # the lowest worker id — the same order a stable sorted()[:k] or
        # linear min() scan over worker ids produces.
        wheap = [(0.0, p) for p in range(workers)]
        for primary, members in group_order:
            load = group_loads[primary]
            team_size = min(workers, max(1, -(-int(load) // max(int(chunk), 1))))
            # pop the team_size least-loaded workers off the shared heap
            team = [heapq.heappop(wheap) for _ in range(team_size)]
            members.sort(key=est.__getitem__, reverse=True)
            # deal within the team via a (load, team-position, worker)
            # heap: pops the least-loaded member, earliest team position
            # on ties — the same worker min() found by linear scan
            theap = [(ld, j, q) for j, (ld, q) in enumerate(team)]
            heapq.heapify(theap)
            for i in members:
                ld, j, q = theap[0]
                loads[q] = ld + est[i]
                picks[q].append(i)
                heapq.heapreplace(theap, (loads[q], j, q))
            for ld, _, q in theap:
                heapq.heappush(wheap, (ld, q))
        # cold fill onto the globally least-loaded worker
        cold.sort(key=est.__getitem__, reverse=True)
        for i in cold:
            ld, p = wheap[0]
            loads[p] = ld + est[i]
            picks[p].append(i)
            heapq.heapreplace(wheap, (loads[p], p))

        assignments: List[List[Edge]] = []
        waves: List[List[int]] = []
        for p in range(workers):
            if not picks[p]:
                continue
            # wave order within the queue: interleaves a worker's groups
            # and keeps the per-wave metrics attribution monotone
            picks[p].sort(key=lambda i: (wave_of[i], -est[i], i))
            assignments.append([edges[i] for i in picks[p]])
            waves.append([wave_of[i] for i in picks[p]])
        return Schedule(
            policy=self.name,
            assignments=assignments,
            waves=waves,
            num_waves=num_waves,
            conflicts=conflicts,
            est_costs=dict(zip(edges, est)),
        )


POLICIES: Dict[str, SchedulingPolicy] = {
    p.name: p for p in (FifoPolicy(), LptPolicy(), ConflictAwarePolicy())
}


def get_policy(policy) -> SchedulingPolicy:
    """Resolve a policy name or pass a :class:`SchedulingPolicy` through."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r} (known: {sorted(POLICIES)})"
        ) from None
