"""Parallel core maintenance: the paper's contribution (OurI / OurR).

Because CPython's GIL prevents genuine shared-memory speedups (the
reproduction gate called out in DESIGN.md), the "multicore machine" here is
a **discrete-event simulator** (:mod:`repro.parallel.runtime`): worker
coroutines yield timed events (compute ticks, lock attempts, releases) to a
conservative scheduler that advances whichever worker has the smallest
local clock.  Lock contention, blocking chains, spin-waiting and the
resulting makespan are modeled explicitly — precisely the quantities the
paper's evaluation is about — while every shared-state mutation stays
step-atomic and therefore analyzable.

The same worker generators can also be driven by real threads
(:mod:`repro.parallel.threads`) to validate the synchronization protocol
under genuine preemption, and the sharded serving engine escapes the GIL
entirely by hosting shard engines in real OS processes
(:mod:`repro.parallel.procs`) that cooperate over
``multiprocessing.shared_memory`` flat arrays
(:mod:`repro.parallel.hindex` is the shared refinement kernel).

Modules
-------
* :mod:`repro.parallel.costs`    — the work-unit cost model
* :mod:`repro.parallel.runtime`  — the simulated machine and lock primitives
* :mod:`repro.core.pqueue`       — version-stamped priority queue (Appendix E)
* :mod:`repro.parallel.scheduling` — conflict-aware batch scheduling policies
* :mod:`repro.parallel.parallel_insert` — OurI (Algorithm 5)
* :mod:`repro.parallel.parallel_remove` — OurR (Algorithm 6)
* :mod:`repro.parallel.batch`    — Parallel-InsertEdges / -RemoveEdges (Algorithm 3)
* :mod:`repro.parallel.hindex`   — synchronous H-index core refinement
* :mod:`repro.parallel.procs`    — process-backend shard workers
"""

from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimMachine, SimReport, SimDeadlockError
from repro.parallel.batch import ParallelOrderMaintainer
from repro.parallel.hindex import h_index, refine_cores
from repro.parallel.scheduling import (
    POLICIES,
    ConflictAwarePolicy,
    FifoPolicy,
    LptPolicy,
    Schedule,
    SchedulingPolicy,
    get_policy,
)

__all__ = [
    "CostModel",
    "SimMachine",
    "SimReport",
    "SimDeadlockError",
    "ParallelOrderMaintainer",
    "SchedulingPolicy",
    "Schedule",
    "FifoPolicy",
    "LptPolicy",
    "ConflictAwarePolicy",
    "POLICIES",
    "get_policy",
    "h_index",
    "refine_cores",
]
