"""True-parallel process backend: shard workers in real OS processes.

The ``sim`` and ``thread`` backends host every shard engine inside the
router's process.  This module is the third backend of
:class:`~repro.service.sharding.ShardedEngine`: each shard engine runs in
its **own OS process** (forked worker, one duplex pipe), so shards
execute with no shared interpreter state and no GIL coupling — the
shared-nothing scale-out the ISSUE's speedup acceptance measures.

Protocol
--------
The router speaks length-one request/reply frames over a
``multiprocessing.Pipe``: ``(op, *args)`` in, ``("ok", payload)`` or
``("err", repr)`` back.  Workers host a *thread-backed*
:class:`~repro.service.engine.Engine` (the worker process already
provides isolation, and the thread machine runs the maintainer without
the sim machine's virtual-time bookkeeping) and keep the same surface
as :class:`~repro.service.sharding.LocalShard`, so the router is
backend-agnostic.

Two parts of the protocol are not simple RPC:

* **Shutdown** (the torn-tail rule): ``quiesce`` makes the worker close
  its journal, reply with its checkpoint payload and exit; the client
  then **joins the process before** the router appends the final
  checkpoint record to the (now unowned) journal file.  Two writers
  never hold the file at once.

* **Distributed stitch**: :func:`refine_distributed` runs the epoch
  stitch's synchronous H-index rounds (:mod:`repro.parallel.hindex`)
  *inside the shard workers* over two ``multiprocessing.shared_memory``
  int64 arrays — every worker refines the vertices it owns, the router
  is the barrier between rounds, and the fixpoint is bit-identical to
  the in-process :func:`~repro.parallel.hindex.refine_cores` because
  the per-round kernel and the seed are the same.

Fault planes cannot cross the fork (they hold a mutex and live
counters), so a worker receives ``(FaultSpec, derived seed)`` and builds
its own independent plane — see
:func:`repro.faults.plane.derive_plane`.
"""

from __future__ import annotations

import multiprocessing as mp
from array import array
from dataclasses import replace
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plane import FaultPlane
from repro.graph.interning import stable_shard
from repro.graph.storage import INT64, int64_view
from repro.parallel.hindex import refine_round, seed_degrees

__all__ = ["ProcessShard", "refine_distributed", "fork_context"]


def fork_context():
    """The ``fork`` start method when the platform has it (Linux always
    does), else the platform default — the worker target and its args
    are picklable, so ``spawn`` works too, just slower to start."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a router-owned segment without adopting it: before
    3.13, ``SharedMemory(name=...)`` registers the segment with the
    attaching process's resource tracker too, which then warns about (or
    double-unlinks) blocks the router already cleaned up.  Only the
    router creates, so only the router tracks.  Registration is
    suppressed (rather than undone after the fact) because forked
    workers may share the router's tracker process: a post-hoc
    unregister from several workers would race the router's own
    unlink-time unregister on the shared tracker."""
    try:
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig
    except ImportError:  # pragma: no cover - tracker API drift
        return shared_memory.SharedMemory(name=name)


def _build_refine(eng, extgid: Dict, shard_id: int, nshards: int, n: int):
    """CSR over router gids for this worker's subgraph, plus the owned
    slots.  Maintained edges plus foreign-tracked cross edges together
    give an owned vertex its *full* global adjacency — which is what
    makes the local degree seed and the local H-index correct."""
    adj: Dict[int, List[int]] = {}
    for u, v in _shard_edges(eng):
        gu, gv = extgid[u], extgid[v]
        adj.setdefault(gu, []).append(gv)
        adj.setdefault(gv, []).append(gu)
    indptr = array("q", [0])
    targets = array("q")
    for g in range(n):
        targets.extend(adj.get(g, ()))
        indptr.append(len(targets))
    owned = sorted(
        extgid[x] for x in _shard_vertices(eng)
        if stable_shard(x, nshards) == shard_id
    )
    return indptr, targets, owned


def _shard_edges(eng) -> List:
    """Every edge the shard co-owns: maintained plus foreign-tracked."""
    return list(eng.graph.edges()) + eng.foreign_edges()


def _shard_vertices(eng) -> List:
    """Present vertices including endpoints only foreign edges name."""
    out = list(eng.graph.vertices())
    seen = set(out)
    for u, v in eng.foreign_edges():
        for x in (u, v):
            if x not in seen:
                seen.add(x)
                out.append(x)
    return out


def _shard_worker(conn, shard_id: int, nshards: int, spec: Dict,
                  init_edges, recover_from: Optional[str],
                  foreign=()) -> None:
    """Worker main loop: host one shard engine, serve pipe frames."""
    # imported here as well as lazily usable under spawn: the module is
    # re-imported in the child, and repro.service must finish importing
    # before we construct engines
    from repro.graph.dynamic_graph import DynamicGraph
    from repro.service.engine import Engine

    cfg = spec["config"]
    fs = spec["fault_spec"]
    if fs is not None and fs.active:
        cfg = replace(cfg, faults=FaultPlane(fs, seed=spec["fault_seed"]))
    if recover_from is not None:
        eng = Engine.from_journal(recover_from, cfg)
    else:
        eng = Engine(DynamicGraph(list(init_edges or [])), cfg,
                     foreign=list(foreign or ()))

    shm_a = shm_b = None
    views: List = []
    refine = None  # (indptr, targets, owned, n)
    qp = None  # worker-owned query-plane publisher (docs/queryplane.md)
    while True:
        try:
            msg = conn.recv()
        except EOFError:  # router died / abandoned us
            break
        op = msg[0]
        try:
            if op == "submit":
                out = eng.submit(msg[1])
            elif op == "submit_many":
                out = [eng.submit(r) for r in msg[1]]
            elif op == "flush":
                out = eng.flush()
            elif op == "take":
                out = eng.take_completed()
            elif op == "prepare":
                out = eng.prepare_cross(*msg[1:])
            elif op == "commit2":
                out = eng.commit_cross(msg[1])
            elif op == "abort2":
                out = eng.abort_cross(msg[1])
            elif op == "prepare_group":
                out = [eng.prepare_cross(tx, kind, edge, rid, shard_id,
                                         peer, role=role)
                       for tx, kind, edge, rid, peer, role in msg[1]]
            elif op == "commit_group":
                out = eng.commit_cross_group(msg[1])
            elif op == "abort_group":
                for tx in msg[1]:
                    eng.abort_cross(tx)
                out = None
            elif op == "epoch":
                out = eng.epoch
            elif op == "pending":
                out = eng.pending_ops()
            elif op == "edges":
                out = _shard_edges(eng)
            elif op == "present":
                out = _shard_vertices(eng)
            elif op == "metrics":
                out = eng.metrics()
            elif op == "check":
                out = eng.check()
            elif op == "refine_begin":
                _, name_a, name_b, n, extgid = msg
                shm_a = _attach(name_a)
                shm_b = _attach(name_b)
                va = int64_view(shm_a.buf, n)
                vb = int64_view(shm_b.buf, n)
                views = [va, vb]
                refine = (*_build_refine(eng, extgid, shard_id, nshards, n), n)
                seed_degrees(refine[0], refine[2], va)
                out = refine[2]  # owned gids (the router's presence set)
            elif op == "refine_round":
                r = msg[1]
                indptr, targets, owned, _n = refine
                cur, nxt = views[r % 2], views[1 - r % 2]
                out = refine_round(indptr, targets, owned, cur, nxt)
            elif op == "refine_end":
                for v in views:
                    v.release()
                views = []
                refine = None
                for shm in (shm_a, shm_b):
                    if shm is not None:
                        shm.close()
                shm_a = shm_b = None
                out = None
            elif op == "qp_enable":
                # publish this shard's epochs into worker-owned shared
                # memory; the router (or any process) attaches readers
                # by the returned ctrl name.  The engine publishes on
                # every commit from here on — no extra frames needed.
                qp = eng.enable_queryplane(**(msg[1] or {}))
                out = qp.ctrl_name
            elif op == "quiesce":
                payload = {
                    "epoch": eng.epoch,
                    "edges": eng._graph_edges(),
                    "cores": eng.maintainer.cores(),
                    "order": eng.maintainer.order_sequence(),
                    "foreign": eng.foreign_edges(),
                }
                eng.close()
                if qp is not None:
                    qp.close()
                conn.send(("ok", payload))
                break
            elif op == "abandon":
                eng.journal.close()
                if qp is not None:
                    qp.close()
                conn.send(("ok", None))
                break
            else:
                raise ValueError(f"unknown frame {op!r}")
        except BaseException as exc:  # never let the pipe go silent
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            continue
        conn.send(("ok", out))
    conn.close()


# ----------------------------------------------------------------------
# router side
# ----------------------------------------------------------------------
class ProcessShard:
    """Pipe client for one shard worker; LocalShard-shaped surface."""

    def __init__(self, shard_id: int, process, conn,
                 journal_path: Optional[str]) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.journal_path = journal_path

    @classmethod
    def start(cls, shard_id: int, spec: Dict, init_edges,
              nshards: int, recover_from: Optional[str] = None,
              foreign=()) -> "ProcessShard":
        ctx = fork_context()
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_shard_worker,
            args=(child, shard_id, nshards, spec, init_edges, recover_from,
                  foreign),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        proc.start()
        child.close()
        return cls(shard_id, proc, parent,
                   spec["config"].journal_path)

    # -- framing -------------------------------------------------------
    def send(self, *msg) -> None:
        self.conn.send(msg)

    def recv(self):
        tag, payload = self.conn.recv()
        if tag == "err":
            raise RuntimeError(f"shard {self.shard_id}: {payload}")
        return payload

    def rpc(self, *msg):
        self.send(*msg)
        return self.recv()

    # -- op plane ------------------------------------------------------
    def submit(self, request):
        return self.rpc("submit", request)

    def submit_many(self, requests):
        return self.rpc("submit_many", requests)

    def enable_queryplane(self, **kwargs) -> str:
        """Enable the worker-side epoch publisher; returns the ctrl
        segment name any process can attach a SnapshotReader to."""
        return self.rpc("qp_enable", kwargs)

    def flush(self):
        return self.rpc("flush")

    def take_completed(self):
        return self.rpc("take")

    # -- 2PC participant ----------------------------------------------
    def prepare_cross(self, tx, kind, edge, rid, peer, role="apply"):
        return self.rpc("prepare", tx, kind, edge, rid, self.shard_id,
                        peer, role)

    def commit_cross(self, tx):
        return self.rpc("commit2", tx)

    def abort_cross(self, tx):
        return self.rpc("abort2", tx)

    def prepare_group(self, items):
        return self.rpc("prepare_group", items)

    def commit_group(self, txs):
        return self.rpc("commit_group", txs)

    def abort_group(self, txs):
        return self.rpc("abort_group", txs)

    # -- stitch inputs -------------------------------------------------
    def epoch(self):
        return self.rpc("epoch")

    def pending_ops(self):
        return self.rpc("pending")

    def edges(self):
        return self.rpc("edges")

    def present_vertices(self):
        return self.rpc("present")

    def metrics(self):
        return self.rpc("metrics")

    def check(self):
        return self.rpc("check")

    # -- shutdown ------------------------------------------------------
    def quiesce(self) -> Dict:
        """Stop the worker: it closes its journal, hands back its
        checkpoint payload and exits; we *join* it here so the journal
        file has no writer left by the time :meth:`final_checkpoint`
        appends to it."""
        payload = self.rpc("quiesce")
        self.process.join(timeout=60)
        return payload

    def final_checkpoint(self, payload: Dict) -> None:
        if self.journal_path is None:
            return  # worker's journal was in-memory: nothing outlived it
        from repro.service.journal import EdgeJournal

        j = EdgeJournal.load(self.journal_path)
        j.log_checkpoint(payload["epoch"], payload["edges"],
                         payload["cores"], payload["order"],
                         foreign=payload.get("foreign", ()))
        j.close()

    def close(self) -> None:
        self.conn.close()
        if self.process.is_alive():  # quiesce already joined it normally
            self.process.terminate()
            self.process.join(timeout=10)

    def abandon(self) -> None:
        """Crash-stop: kill the worker where it stands (between frames,
        so the journal tail is whole — torn-write tails are the
        journal's committed-prefix department, not ours)."""
        try:
            self.rpc("abandon")
        except (RuntimeError, EOFError, OSError, BrokenPipeError):
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=10)
        self.conn.close()


def refine_distributed(shards: List[ProcessShard], interner
                       ) -> Tuple[List[int], Set[int]]:
    """Run the epoch stitch's H-index refinement inside the workers.

    Allocates the two shared double-buffer arrays, has every worker
    seed degrees for the vertices it owns (round 0 reads buffer A), then
    drives synchronous rounds — all workers compute round ``r`` before
    any sees ``r+1`` — until no slot changed anywhere.  Returns the
    final per-gid values and the set of present (owned-by-someone) gids.
    """
    # each worker refines against router gids; ship it the ext->gid map
    # for exactly the vertices it holds (owned + ghost replicas)
    maps: List[Dict] = []
    for sh in shards:
        sh.send("present")
    for sh in shards:
        maps.append({x: interner.intern(x) for x in sh.recv()})
    n = len(interner)
    if n == 0:
        return [], set()
    size = n * INT64
    shm_a = shared_memory.SharedMemory(create=True, size=size)
    shm_b = shared_memory.SharedMemory(create=True, size=size)
    try:
        shm_a.buf[:size] = bytes(size)
        shm_b.buf[:size] = bytes(size)
        present: Set[int] = set()
        for sh, m in zip(shards, maps):
            sh.send("refine_begin", shm_a.name, shm_b.name, n, m)
        for sh in shards:
            present.update(sh.recv())   # barrier: all seeds written
        r = 0
        while True:
            for sh in shards:
                sh.send("refine_round", r)
            changed = sum(sh.recv() for sh in shards)  # round barrier
            if changed == 0:
                break
            r += 1
        # round r wrote the buffer opposite its read buffer (A on even)
        final = int64_view((shm_b if r % 2 == 0 else shm_a).buf, n)
        vals = list(final)
        final.release()
        for sh in shards:
            sh.send("refine_end")
        for sh in shards:
            sh.recv()
        return vals, present
    finally:
        shm_a.close()
        shm_b.close()
        shm_a.unlink()
        shm_b.unlink()
