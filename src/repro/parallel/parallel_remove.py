"""Parallel-Order edge removal — OurR (paper Algorithm 6).

Worker coroutine for the simulated/threaded machine.  Faithful points:

* **conditional locks** (Algorithm 2) everywhere: a propagation only waits
  on a neighbor while that neighbor still has core ``K``; the moment
  another worker drops it to ``K-1`` the waiter gives up — this is the
  deadlock-freedom mechanism of Appendix D (two workers whose propagation
  fronts meet each stop at the other's already-dropped vertices).
* **the ``t`` status protocol** — a dropped vertex carries
  ``t = 2`` (queued) → ``1`` (propagating) → ``0`` (done); a concurrent
  ``CheckMCD`` that counted a ``t = 1`` vertex as still-pending support
  CASes it to ``3``, forcing the owner to re-scan its neighborhood
  (``A_p`` suppresses re-visiting) so the count is eventually repaid.
* **CheckMCD without neighbor locks** — the paper's headline: mcd is
  recomputed from racy reads of neighbor cores plus the ``t`` protocol,
  never by locking the neighborhood.
* **mcd laziness** — a dropped vertex's mcd is wiped (``∅``) and only
  recomputed on demand, possibly by a different worker in a later
  operation.

Unlike insertion, removal never consults the k-order during propagation;
dropped vertices are unlinked from the order at drop time and appended to
the tail of ``O_{K-1}`` in the end phase (insertions never run
concurrently with removals — paper Section 4 — so a temporarily unlinked
vertex is never compared against).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.state import OrderState, RemoveStats
from repro.parallel.costs import CostModel
from repro.parallel.runtime import cond_acquire, lock_pair, release_all

Vertex = Hashable

__all__ = ["remove_edge_par", "remove_worker"]


def _relabel_count(state: OrderState) -> int:
    om = state.korder.om
    return om.n_splits + om.n_rebalances


def remove_edge_par(state: OrderState, a: Vertex, b: Vertex, C: CostModel):
    """Generator implementing RemoveEdge_p for one edge.  Returns
    :class:`RemoveStats`."""
    graph, ko = state.graph, state.korder
    yield ("tick", C.edge_overhead)

    # --- line 1: lock the endpoints together ---------------------------
    yield from lock_pair(a, b)
    locked: Set[Vertex] = {a, b}
    ca, cb = ko.core[a], ko.core[b]
    K = min(ca, cb)

    stats = RemoveStats()
    r: deque = deque()
    v_star: List[Vertex] = []

    # ------------------------------------------------------------------
    def check_mcd(x: Vertex, visitor):
        """CheckMCD_p (Algorithm 6 lines 26-34): materialize mcd[x] from
        unlocked neighbor reads + the t protocol.  x is locked by us."""
        if state.mcd.get(x) is not None:
            return
        cu = ko.core[x]
        cnt = 0
        for y in list(graph.neighbors(x)):
            yield ("tick", C.per_neighbor() + C.counter_op)
            cy = ko.core_relaxed(y, 0)
            if cy >= cu:
                cnt += 1
            elif cy == cu - 1:
                ty = state.t_relaxed(y)
                if ty > 0:
                    cnt += 1
                    if y != visitor and ty == 1:
                        # CAS(y.t, 1, 3): force y's owner to re-propagate
                        # so the support we just counted gets repaid.
                        state.t_cas(y, 1, 3)
                    if state.t_relaxed(y) == 0:
                        cnt -= 1  # dropped to done mid-read (threads only)
        state.mcd[x] = cnt

    def drop(x: Vertex) -> float:
        """DoMCD success branch: core K -> K-1 with t=2, and the move to
        the tail of O_{K-1} *at drop time* (causally ordered across
        workers — see KOrder.demote_tail).  Returns the relabel cost."""
        before = _relabel_count(state)
        # t is published *before* the core drop so concurrent CheckMCD
        # readers never observe (core=K-1, t=0) for an unfinished drop.
        state.t_set(x, 2)
        ko.demote_tail(x, K - 1)
        state.mcd[x] = None
        r.append(x)
        v_star.append(x)
        return C.om_move + (_relabel_count(state) - before) * C.om_relabel

    def do_mcd(x: Vertex):
        """DoMCD_p (Algorithm 6 lines 19-25): x locked, loses one support."""
        state.mcd[x] -= 1  # type: ignore[operator]
        yield ("tick", C.counter_op)
        if state.mcd[x] < K:  # type: ignore[operator]
            cost = drop(x)
            yield ("tick", cost)
        else:
            yield ("release", x)
            locked.discard(x)

    # --- lines 2-7: seed from the endpoints ----------------------------
    yield from check_mcd(a, None)
    yield from check_mcd(b, None)
    # d_out^+ upkeep for the removed edge (both endpoints locked, so the
    # order comparison is stable); laziness tolerates unknown values.
    first = a if ko.precedes(a, b) else b
    if state.d_out.get(first) is not None:
        state.d_out[first] -= 1  # type: ignore[operator]
    yield ("tick", C.order_cmp + C.counter_op)
    graph.remove_edge(a, b)
    yield ("tick", C.graph_mutate)
    for x in (a, b):
        if ko.core[x] == K:
            # the other endpoint had core >= K, so it supported x
            yield from do_mcd(x)
        else:
            yield ("release", x)
            locked.discard(x)

    # --- lines 8-16: propagate ------------------------------------------
    while r:
        w = r.popleft()
        a_set: Set[Vertex] = set()
        while True:
            state.t_add(w, -1)  # line 10 (2->1, or 2->1 again after a CAS)
            yield ("tick", C.counter_op)
            for x in list(graph.neighbors(w)):
                yield ("tick", C.per_neighbor())
                if x in a_set or ko.core_relaxed(x) != K:
                    continue
                got = yield from cond_acquire(x, lambda xx=x: ko.core_relaxed(xx) == K)
                if not got:
                    continue  # dropped by another worker meanwhile
                locked.add(x)
                yield from check_mcd(x, w)
                yield from do_mcd(x)
                a_set.add(x)
            if state.t_add(w, -1) <= 0:  # line 15 (1->0, or 3->2 when CASed)
                yield ("tick", C.counter_op)
                break  # done; t stays 0
            yield ("tick", C.counter_op)

    # --- end phase (the O_{K-1} appends already happened at drop time) ---
    for w in v_star:
        # d_out^+ of dropped vertices and their level-K neighbors depends
        # on the new positions: invalidate (lazy recompute under lock by
        # whichever insertion needs it next).
        state.d_out[w] = None
        for x in list(graph.neighbors(w)):
            yield ("tick", C.per_neighbor())
            if ko.core_relaxed(x) == K:
                # x is unlocked: ∅-invalidate through the wipe accessor
                # (a relaxed write for the race detector)
                state.d_out_wipe(x)
    stats.v_star = v_star
    yield from release_all(locked)
    return stats


def remove_worker(
    state: OrderState,
    edges: Iterable[tuple],
    C: CostModel,
    out: List[RemoveStats],
    waves: Optional[Sequence[int]] = None,
):
    """DoRemove_p (Algorithm 3's removal counterpart).

    ``waves`` works exactly as in
    :func:`~repro.parallel.parallel_insert.insert_worker`: per-edge wave
    indices from a schedule, surfaced to the machine as free
    ``("wave", i)`` markers.
    """
    if waves is None:
        for a, b in edges:
            stats = yield from remove_edge_par(state, a, b, C)
            out.append(stats)
    else:
        cur = None
        for (a, b), w in zip(edges, waves):
            if w != cur:
                cur = w
                yield ("wave", w)
            stats = yield from remove_edge_par(state, a, b, C)
            out.append(stats)
