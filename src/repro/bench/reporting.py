"""ASCII renderers for benchmark output (tables and log-scale series).

The benchmark suite prints paper-style rows with these helpers; the same
strings go into EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "render_table",
    "render_series",
    "render_histogram",
    "render_log_plot",
    "render_analysis_stats",
    "render_service_metrics",
    "render_chaos",
    "render_replication",
    "render_failover",
    "render_queryplane",
    "render_sharding",
    "render_traffic",
]


def render_table(rows: Sequence[Mapping], columns: Optional[List[str]] = None) -> str:
    """Render dict-rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    cols = columns or list(rows[0].keys())
    cells = [[str(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping],
    title: str = "",
    value_fmt: str = "{:.0f}",
) -> str:
    """Render ``{line_name: {x: y}}`` as a small text matrix (x across)."""
    xs = sorted({x for line in series.values() for x in line})
    header = [title.ljust(12)] + [str(x).rjust(10) for x in xs]
    lines = ["".join(header)]
    for name, line in series.items():
        row = [name.ljust(12)]
        for x in xs:
            v = line.get(x)
            row.append((value_fmt.format(v) if v is not None else "-").rjust(10))
        lines.append("".join(row))
    return "\n".join(lines)


def render_log_plot(
    series: Mapping[str, Mapping],
    height: int = 12,
    title: str = "",
) -> str:
    """Render ``{line: {x: y}}`` as an ASCII scatter with a log-10 y-axis —
    the shape of the paper's Figure 4 panels.  Each line gets a letter
    marker; collisions show ``*``."""
    pts = [
        (x, y) for line in series.values() for x, y in line.items() if y > 0
    ]
    if not pts:
        return "(no data)"
    xs = sorted({x for x, _ in pts})
    lo = math.log10(min(y for _, y in pts))
    hi = math.log10(max(y for _, y in pts))
    span = (hi - lo) or 1.0
    markers = {}
    for i, name in enumerate(series):
        markers[name] = chr(ord("A") + i % 26)
    col_w = 6
    grid = [[" "] * (len(xs) * col_w) for _ in range(height)]
    for name, line in series.items():
        for x, y in line.items():
            if y <= 0:
                continue
            row = height - 1 - int((math.log10(y) - lo) / span * (height - 1))
            col = xs.index(x) * col_w + col_w // 2
            cell = grid[row][col]
            grid[row][col] = markers[name] if cell == " " else "*"
    lines = [title] if title else []
    for r, row in enumerate(grid):
        frac = 1 - r / (height - 1) if height > 1 else 1.0
        ylab = 10 ** (lo + frac * span)
        lines.append(f"{ylab:>10.0f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * (len(xs) * col_w))
    lines.append(
        " " * 12 + "".join(str(x).center(col_w) for x in xs) + "   (workers)"
    )
    legend = "  ".join(f"{m}={name}" for name, m in markers.items())
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def render_analysis_stats(cells: Sequence[Mapping]) -> str:
    """Render the race-detector counters of benchmark cells run with
    ``trace_races=True`` (see :func:`repro.bench.harness.run_remove_insert`).

    One row per cell: races found (0 is the expected steady state),
    accesses traced and how many were annotated relaxed, plus the
    synchronization-event count the happens-before clocks were built
    from.  Cells without an ``analysis`` key are skipped."""
    rows = []
    for cell in cells:
        a = cell.get("analysis")
        if a is None:
            continue
        rows.append(
            {
                "dataset": cell.get("dataset", "?"),
                "P": cell.get("workers", "?"),
                "races": a["races"],
                "accesses": a["accesses_traced"],
                "relaxed": a["relaxed_accesses"],
                "sync_ops": a["sync_ops"],
                "locations": a["locations"],
            }
        )
    if not rows:
        return "(no analysis data — run with trace_races=True)"
    return render_table(rows)


def render_service_metrics(metrics: Mapping, max_epochs: int = 8) -> str:
    """Render the serving engine's metrics dict (see
    ``repro.service.metrics``) as the paper-style text block the
    ``service`` bench experiment and ``repro-serve`` print.

    Shows the request accounting (with the quiescence invariant spelled
    out), cut-reason counters, queue depths, latency percentiles per
    request class, the folded simulation totals, and the head of the
    per-epoch commit log."""
    c = metrics["counters"]
    lines = [
        f"simulated time {metrics['now']:.0f}  epochs {metrics['epoch']}",
        (
            f"admitted {c['admitted']} == committed {c['committed']} "
            f"+ quarantined {c['quarantined']} + timed_out {c['timed_out']} "
            f"+ abandoned {c.get('abandoned', 0)} "
            f"(in flight {c['in_flight']}, rejected {c['rejected']})"
        ),
        (
            f"updates committed {c['committed_updates']}  "
            f"queries answered {c['committed_queries']}  "
            f"coalesced {c['coalesced']}  cancelled {c['cancelled']}"
        ),
        "cuts: " + "  ".join(f"{k}={v}" for k, v in metrics["cuts"].items()),
        (
            f"queue: pending {metrics['queues']['pending_depth']}  "
            f"max {metrics['queues']['max_pending_depth']}  "
            f"capacity {metrics['queues']['ingress_capacity']}"
        ),
    ]
    for cls in ("update", "query"):
        lat = metrics["latency"][cls]
        lines.append(
            f"{cls} latency (sim units): n={lat['count']} mean={lat['mean']:.1f} "
            f"p50={lat['p50']:.1f} p90={lat['p90']:.1f} p99={lat['p99']:.1f} "
            f"max={lat['max']:.1f}"
        )
    sim = metrics["sim"]
    lines.append(
        f"sim: batches={sim['batches']} makespan={sim['makespan']:.0f} "
        f"work={sim['total_work']:.0f} spin={sim['spin_time']:.0f} "
        f"contended={sim['contended_time']:.0f} "
        f"locks={sim['lock_acquires']}/{sim['lock_failures']} (ok/failed)"
    )
    flt = metrics.get("faults")
    if flt and any(flt.values()):
        lines.append(
            "faults: "
            + "  ".join(f"{k}={v}" for k, v in flt.items() if v)
        )
    epochs = metrics.get("epochs", [])
    if epochs:
        rows = [
            {
                "epoch": e["epoch"],
                "kind": e["kind"],
                "batch": e["batch_size"],
                "makespan": f"{e['makespan']:.0f}",
                "p50": f"{e['latency']['p50']:.0f}",
                "p99": f"{e['latency']['p99']:.0f}",
            }
            for e in epochs[:max_epochs]
        ]
        lines.append(render_table(rows))
        if len(epochs) > max_epochs:
            lines.append(f"... and {len(epochs) - max_epochs} more epochs")
    return "\n".join(lines)


def render_chaos(cell: Mapping) -> str:
    """Render one ``run_chaos`` cell (see ``repro.bench.harness``): the
    fault schedule, the recovery verdicts, and the engine metrics block."""
    spec = cell["spec"]
    f = cell["faults"]
    verdict = "RECOVERED" if cell["ok"] else "DIVERGED"
    lines = [
        (
            f"{cell['dataset']}: {cell['ops']} ops, seed {cell['seed']}, "
            f"{cell['restarts']} restart(s), "
            f"crash/stall/timeout rates "
            f"{spec['crash_rate']}/{spec['stall_rate']}/{spec['timeout_rate']}"
            f" (budget {spec['max_crashes']})"
        ),
        (
            f"injected: crashes={f['crashes']} stalls={f['stalls_injected']} "
            f"timeouts={f['timeouts_injected']} orphaned={f['locks_orphaned']}"
            f"  crashed_batches={f['crashed_batches']} "
            f"recoveries={f['recoveries']} retries={f['retries']}"
        ),
        (
            f"verdict: {verdict}  cores==clean {cell['recovered_ok']}  "
            f"cores==oracle {cell['oracle_ok']}  "
            f"query mismatches {cell['query_mismatches']}  "
            f"invariant {cell['invariant_ok']}  "
            f"deterministic {cell['determinism_ok']}"
        ),
        (
            f"journal: {cell['journal_records']} records "
            f"sha256 {cell['journal_digest'][:16]}  "
            f"schedule sha256 {(cell['schedule_digest'] or '')[:16]}"
        ),
        render_service_metrics(cell["metrics"], max_epochs=4),
    ]
    return "\n".join(lines)


def render_replication(repl: Mapping) -> str:
    """Render a :meth:`ReplicaSet.metrics
    <repro.replication.replicaset.ReplicaSet.metrics>` dict: topology
    state, shipping totals, the promotion log, and one row per replica
    (lag in records, applied epoch, generation)."""
    lines = [
        (
            f"replication: generation {repl['generation']}  "
            f"primary {'alive' if repl['primary_alive'] else 'DEAD'}  "
            f"crashes {repl['primary_crashes']}  "
            f"promotions {repl['promotions']}"
        ),
        (
            f"shipping: {repl['records_shipped']} records shipped  "
            f"{repl['records_replayed']} replayed  "
            f"{repl['submitted_updates']} updates submitted"
        ),
    ]
    for p in repl["promotion_log"]:
        lines.append(
            f"  promoted replica {p['replica']} -> generation "
            f"{p['generation']} at epoch {p['epoch']} "
            f"(prefix {p['prefix_records']} records, caught up "
            f"{p['catchup_records']}, truncated {p['truncated_records']}, "
            f"{p['wall_s'] * 1000:.1f} ms)"
        )
    rows = [
        {
            "replica": r["replica"],
            "lag": r["lag_records"],
            "epoch": r["epoch"],
            "gen": r["generation"],
            "applied": r["applied"],
            "queries": r["queries_served"],
            "shipped": r["shipper"]["records_shipped"],
        }
        for r in repl["replicas"]
    ]
    if rows:
        lines.append(render_table(rows))
    else:
        lines.append("(no followers left)")
    return "\n".join(lines)


def render_failover(cell: Mapping) -> str:
    """Render one ``run_failover`` cell (see ``repro.bench.harness``):
    the crash schedule, the loss/divergence verdicts, RTO stats, and the
    replication metrics block."""
    v = cell["verdicts"]
    verdict = "SURVIVED" if cell["ok"] else "FAILED"
    lines = [
        (
            f"{cell['dataset']}: {cell['ops']} ops, seed {cell['seed']}, "
            f"{cell['replicas']} replicas, ship-lag {cell['ship_lag']}, "
            f"primary crash rate {cell['primary_crash_rate']} "
            f"(budget {cell['primary_crash_budget']})"
        ),
        (
            f"verdict: {verdict}  committed-op loss "
            f"{cell['committed_op_loss']}  divergence violations "
            f"{cell['divergence_violations']}  "
            f"stale answers {cell['stale_answers']}/"
            f"{cell['replica_queries']}  max lag {cell['max_lag_records']}"
        ),
        (
            f"checks: zero-loss {v['zero_loss']}  "
            f"divergence-bounded {v['divergence_bounded']}  "
            f"promotions-verified {v['promotions_verified']}  "
            f"final-state {v['final_state_ok']}  "
            f"deterministic {v['determinism_ok']}"
        ),
        (
            f"failover: {cell['primary_crashes']} crash(es), "
            f"{cell['promotions']} promotion(s), RTO "
            + (
                f"median {cell['rto']['median_ms']:.1f} ms / "
                f"max {cell['rto']['max_ms']:.1f} ms, catch-up "
                f"median {cell['rto']['median_catchup_records']} records"
                if cell["promotions"]
                else "n/a"
            )
        ),
        (
            f"journal: {cell['journal_records']} records "
            f"sha256 {cell['journal_digest'][:16]}  "
            f"crash schedule sha256 {(cell['schedule_digest'] or '')[:16]}"
        ),
        render_replication(cell["replication"]),
    ]
    return "\n".join(lines)


def render_sharding(cell: Mapping) -> str:
    """Render one ``run_sharding`` cell (see ``repro.bench.harness``):
    the scale-out wall-clock comparison, the bit-identity verdict, and
    one line per exercised 2PC crash window."""
    verdict = "OK" if cell["ok"] else "FAILED"
    lines = [
        (
            f"sharding: {cell['ops']} ops over {cell['num_vertices']} "
            f"vertices ({cell['cross_ops']} cross-shard), "
            f"{cell['shards']} shards, seed {cell['seed']}"
        ),
        (
            f"wall-clock (best of {cell['repeats']}): "
            f"thread monolith {cell['mono_wall_s']:.3f} s  "
            f"process sharded {cell['shard_wall_s']:.3f} s  "
            f"-> {cell['speedup']:.2f}x"
        ),
        (
            f"verdict: {verdict}  bit-identical {cell['bit_identical']}  "
            f"crash windows exercised {cell['crash_windows_exercised']}"
        ),
    ]
    for name, r in sorted(cell["crash_recoveries"].items()):
        lines.append(
            f"  {name}: crashed {r['crashed']}  "
            f"resolutions {r['resolutions']}  identical {r['identical']}"
        )
    return "\n".join(lines)


def render_queryplane(cell: Mapping) -> str:
    """Render one ``run_queryplane`` cell (see ``repro.bench.harness``):
    the in-engine baseline, one line per reader-pool size, and the
    bit-identity / recovery verdicts."""
    verdict = "OK" if cell["ok"] else "FAILED"
    lines = [
        (
            f"queryplane: {cell['queries']} queries / {cell['updates']} "
            f"updates over {cell['num_vertices']} vertices "
            f"(rate {cell['update_rate']}, frame {cell['frame']}, "
            f"seed {cell['seed']})"
        ),
        (
            f"in-engine baseline (best of {cell.get('repeats', 1)} per "
            f"phase): {cell['engine_wall_s']:.3f} s  "
            f"{cell['engine_qps']:,.0f} q/s"
        ),
    ]
    for n in sorted(cell["readers"]):
        r = cell["readers"][n]
        lines.append(
            f"  {n} reader(s): {r['wall_s']:.3f} s  {r['qps']:,.0f} q/s  "
            f"-> {r['speedup']:.2f}x  ({r['samples']} samples verified)"
        )
    rec = cell["recovery"]
    if rec.get("ran"):
        lines.append(
            f"recovery: min_epoch {rec['min_epoch']}  "
            f"truncated {rec['truncated']}  "
            f"bit-identical {rec['bit_identical']}  "
            f"refused-below-min {rec['refused_below_min']}"
        )
    lines.append(
        f"verdict: {verdict}  bit-identical {cell['bit_identical']}  "
        f"headline speedup {cell['speedup']:.2f}x"
    )
    return "\n".join(lines)


def render_traffic(cell: Mapping) -> str:
    """Render one ``run_traffic`` cell (see ``repro.bench.harness``): the
    trace identity, per-class SLO attainment (p50/p99 user-perceived
    latency and deadline hit-rate), the sliding-window counters, and the
    determinism / boundary-oracle verdicts."""
    verdict = "OK" if cell["ok"] else "FAILED"
    c = cell["counters"]
    lines = [
        (
            f"{cell['shape']}: {cell['records']} records over "
            f"{cell['vertices']} vertices, window {cell['window']:.0f}, "
            f"seed {cell['seed']}  trace sha256 {cell['trace_digest'][:16]}"
        ),
        (
            f"admitted {c['admitted']} == committed {c['committed']} "
            f"+ quarantined {c['quarantined']} + timed_out {c['timed_out']} "
            f"+ abandoned {c.get('abandoned', 0)} "
            f"(rejected {c['rejected']}, coalesced {c['coalesced']})"
        ),
    ]
    for cls in ("update", "query"):
        s = cell["slo"].get(cls)
        if s is None or s["count"] == 0:
            continue
        lat = s["latency"]
        lines.append(
            f"{cls}: n={s['count']} hit-rate {s['hit_rate']:.3f} "
            f"(budget {s['budget']})  "
            f"p50={lat['p50']:.0f} p99={lat['p99']:.0f} max={lat['max']:.0f}  "
            f"late={s['late']} rejected={s['rejected']} "
            f"timed_out={s['timed_out']} abandoned={s['abandoned']}"
        )
    w = cell.get("window_metrics") or {}
    if w:
        lines.append(
            f"window: scheduled={w.get('scheduled', 0)} "
            f"fired={w.get('fired', 0)} rebuffered={w.get('rebuffered', 0)} "
            f"armed={w.get('armed', 0)}  expiry {cell['expiry']}"
        )
    nb = len(cell.get("boundaries", ()))
    lines.append(
        f"verdict: {verdict}  invariant {cell['invariant_ok']}  "
        f"deterministic {cell['determinism_ok']}  "
        f"boundaries {cell['boundaries_ok']} ({nb} checked)  "
        f"engine-mode==model-mode {cell['engine_mode_ok']}"
    )
    return "\n".join(lines)


def render_histogram(
    hist: Mapping[int, int], width: int = 40, log: bool = True
) -> str:
    """Render ``{bucket: count}`` as horizontal ASCII bars."""
    if not hist:
        return "(empty)"
    max_count = max(hist.values())
    scale = (math.log1p(max_count) if log else max_count) or 1
    lines = []
    for k in sorted(hist):
        v = hist[k]
        mag = math.log1p(v) if log else v
        bar = "#" * max(1, int(width * mag / scale)) if v else ""
        lines.append(f"{k:>6}  {v:>8}  {bar}")
    return "\n".join(lines)
