"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Regenerates the paper's tables and figures without pytest:

    python -m repro.bench table1
    python -m repro.bench fig3  --datasets BA roadNet-CA
    python -m repro.bench fig4  --datasets BA --workers 1 4 16 --batch 300
    python -m repro.bench table2 --datasets BA RMAT
    python -m repro.bench fig5 fig6 fig7
    python -m repro.bench service --datasets BA --ops 500 --query-rate 0.3
    python -m repro.bench chaos --datasets BA --seed 7 --assert-recovered
    python -m repro.bench failover --datasets BA --replicas 3 --assert-failover
    python -m repro.bench representation --datasets BA ER --assert-speedup 0.9
    python -m repro.bench scheduling --datasets BA --assert-speedup 1.2
    python -m repro.bench sharding --shards 4 --assert-speedup 1.5
    python -m repro.bench all   --batch 200

``--profile`` wraps the run in :mod:`cProfile` and prints the top 25
functions by cumulative time — the first stop for any hot-path pass.

Output is the same paper-style text the benchmark suite writes to
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.bench import harness
from repro.bench.reporting import (
    render_chaos,
    render_failover,
    render_histogram,
    render_queryplane,
    render_series,
    render_service_metrics,
    render_sharding,
    render_table,
    render_traffic,
)

DEFAULT_DATASETS = ["roadNet-CA", "ER", "BA", "RMAT"]
EXPERIMENTS = (
    "table1", "fig3", "fig4", "table2", "fig5", "fig6", "fig7", "service",
    "chaos", "failover", "representation", "scheduling", "sharding",
    "queryplane", "traffic",
)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    p.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="which experiments to run",
    )
    p.add_argument("--datasets", nargs="+", default=DEFAULT_DATASETS)
    p.add_argument("--workers", nargs="+", type=int, default=[1, 4, 16])
    p.add_argument("--batch", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ops", type=int, default=500,
                   help="service workload: trace length")
    p.add_argument("--query-rate", type=float, default=0.25,
                   help="service workload: fraction of queries in the trace")
    p.add_argument("--repeats", type=int, default=3,
                   help="representation/scheduling: wall-clock best-of repeats")
    p.add_argument("--hubs", type=int, default=8,
                   help="scheduling workload: number of hub vertices whose "
                        "incident edges form the contended batch")
    p.add_argument("--assert-speedup", type=float, default=None, metavar="X",
                   help="representation/scheduling/sharding/queryplane: exit "
                        "1 unless the headline speedup is >= X on every cell")
    p.add_argument("--shards", type=int, default=4,
                   help="sharding workload: shard count (process backend)")
    p.add_argument("--vertices", type=int, default=1200,
                   help="sharding workload: vertex universe size")
    p.add_argument("--shard-ops", type=int, default=12000,
                   help="sharding workload: update-trace length")
    p.add_argument("--queries", type=int, default=1_000_000,
                   help="queryplane workload: timed query count")
    p.add_argument("--update-rate", type=float, default=0.01,
                   help="queryplane workload: updates per query")
    p.add_argument("--reader-counts", nargs="+", type=int, default=[1, 2, 4],
                   help="queryplane workload: reader-pool sizes to sweep")
    p.add_argument("--qp-vertices", type=int, default=400,
                   help="queryplane workload: vertex universe size")
    p.add_argument("--frame", type=int, default=512,
                   help="queryplane workload: sample every Nth answer for "
                        "bit-identity verification")
    p.add_argument("--no-recovery", action="store_true",
                   help="queryplane workload: skip the mid-stream crash/"
                        "recovery leg")
    p.add_argument("--crash-rate", type=float, default=0.01,
                   help="chaos workload: per-event worker crash probability")
    p.add_argument("--stall-rate", type=float, default=0.01,
                   help="chaos workload: per-event stall probability")
    p.add_argument("--timeout-rate", type=float, default=0.01,
                   help="chaos workload: per-try acquire-timeout probability")
    p.add_argument("--max-crashes", type=int, default=8,
                   help="chaos workload: total crash budget per engine")
    p.add_argument("--restarts", type=int, default=2,
                   help="chaos workload: simulated process restarts "
                        "(journal reload) spread over the trace")
    p.add_argument("--assert-recovered", action="store_true",
                   help="chaos: exit 1 unless every dataset recovered "
                        "(cores match the uninterrupted run and the "
                        "from-scratch oracle, deterministically)")
    p.add_argument("--replicas", type=int, default=3,
                   help="failover workload: follower replicas per set")
    p.add_argument("--ship-lag", type=int, default=6,
                   help="failover workload: async shipping lag in records")
    p.add_argument("--primary-crash-rate", type=float, default=0.01,
                   help="failover workload: seeded primary-death "
                        "probability per update submission")
    p.add_argument("--primary-crashes", type=int, default=2,
                   help="failover workload: primary-death budget")
    p.add_argument("--assert-failover", action="store_true",
                   help="failover: exit 1 unless every dataset survived "
                        "(zero committed-op loss, divergence bounded by "
                        "replication lag, every promotion verified "
                        "bit-identical, deterministically)")
    p.add_argument("--shapes", nargs="+", default=None,
                   metavar="SHAPE",
                   help="traffic workload: which shapes to run "
                        "(default: all of repro.traffic.SHAPES)")
    p.add_argument("--traffic-ops", type=int, default=2000,
                   help="traffic workload: arrival-op count per shape "
                        "(the window roughly doubles the record count)")
    p.add_argument("--traffic-vertices", type=int, default=120,
                   help="traffic workload: vertex universe size")
    p.add_argument("--traces", nargs="+", default=None, metavar="PATH",
                   help="traffic workload: replay these trace files "
                        "instead of generating (one cell per file; "
                        "--shapes/--traffic-ops are then ignored)")
    p.add_argument("--no-boundary-verify", action="store_true",
                   help="traffic workload: skip the lossless window-"
                        "boundary oracle leg (SLO legs only)")
    p.add_argument("--assert-hit-rate", type=float, default=None,
                   metavar="X",
                   help="traffic: exit 1 unless the update deadline "
                        "hit-rate is >= X on every non-overload shape")
    p.add_argument("--json", type=str, default=None, metavar="PATH",
                   help="representation/scheduling/chaos: also write the "
                        "cells to PATH as JSON")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and print the top 25 functions "
                        "by cumulative time")
    return p


def _run(args: argparse.Namespace) -> int:
    wanted = list(EXPERIMENTS) if "all" in args.experiments else args.experiments

    fig4_cache = None

    def fig4_data():
        nonlocal fig4_cache
        if fig4_cache is None:
            fig4_cache = harness.fig4_running_time(
                args.datasets,
                worker_counts=tuple(args.workers),
                batch_size=args.batch,
                seed=args.seed,
            )
        return fig4_cache

    for exp in wanted:
        print(f"\n=== {exp} ===")
        if exp == "table1":
            print(render_table(harness.table1_datasets(args.datasets, seed=args.seed)))
        elif exp == "fig3":
            for name, hist in harness.fig3_core_distributions(
                args.datasets, seed=args.seed
            ).items():
                print(f"\n--- {name} ---")
                print(render_histogram(hist))
        elif exp == "fig4":
            for ds, algos in fig4_data().items():
                for phase in ("insert", "remove"):
                    series = {
                        f"{algo}{'I' if phase == 'insert' else 'R'}": {
                            p: cell[phase] for p, cell in per_p.items()
                        }
                        for algo, per_p in algos.items()
                    }
                    print(f"\n--- {ds} / {phase} ---")
                    print(render_series(series, title="algo \\ P"))
        elif exp == "table2":
            rows = harness.table2_speedups(fig4_data(), p_hi=max(args.workers))
            print(render_table(rows))
        elif exp == "fig5":
            out = harness.fig5_locked_vertices(
                args.datasets,
                batch_size=args.batch,
                workers=max(args.workers),
                seed=args.seed,
            )
            for ds, hists in out.items():
                for which, hist in hists.items():
                    print(f"\n--- {ds} / {which} ---")
                    print(render_histogram(hist))
        elif exp == "fig6":
            sizes = tuple(
                max(10, args.batch * f // 4) for f in (1, 2, 4)
            )
            out = harness.fig6_scalability(
                args.datasets[:2],
                batch_sizes=sizes,
                workers=max(args.workers),
                seed=args.seed,
            )
            for ds, algos in out.items():
                series = {
                    f"{algo}I": {b: c["insert_ratio"] for b, c in per_b.items()}
                    for algo, per_b in algos.items()
                }
                print(f"\n--- {ds} (insert-time ratios) ---")
                print(render_series(series, title="algo \\ batch", value_fmt="{:.2f}"))
        elif exp == "service":
            for ds in args.datasets:
                cell = harness.run_service(
                    ds,
                    ops=args.ops,
                    workers=max(args.workers),
                    query_rate=args.query_rate,
                    seed=args.seed,
                    max_batch=max(1, args.batch // 4),
                )
                print(f"\n--- {ds} ---")
                print(render_service_metrics(cell["metrics"]))
                if not cell["invariant_ok"]:
                    print("!! accounting invariant VIOLATED")
                    return 1
        elif exp == "chaos":
            import json as _json

            cells = [
                harness.run_chaos(
                    ds,
                    ops=args.ops,
                    workers=max(args.workers),
                    query_rate=args.query_rate,
                    seed=args.seed,
                    max_batch=max(1, args.batch // 16),
                    crash_rate=args.crash_rate,
                    stall_rate=args.stall_rate,
                    timeout_rate=args.timeout_rate,
                    max_crashes=args.max_crashes,
                    restarts=args.restarts,
                )
                for ds in args.datasets
            ]
            for cell in cells:
                print(f"\n--- {cell['dataset']} ---")
                print(render_chaos(cell))
            if args.json:
                slim = [
                    {k: v for k, v in c.items() if k != "metrics"}
                    | {"faults": c["faults"],
                       "counters": c["metrics"]["counters"]}
                    for c in cells
                ]
                with open(args.json, "w", encoding="utf-8") as fh:
                    _json.dump(slim, fh, indent=2)
                print(f"wrote {args.json}")
            if args.assert_recovered:
                bad = [c for c in cells if not c["ok"]]
                if bad:
                    for c in bad:
                        print(
                            f"!! {c['dataset']}: chaos run DIVERGED "
                            f"(recovered={c['recovered_ok']} "
                            f"oracle={c['oracle_ok']} "
                            f"deterministic={c['determinism_ok']} "
                            f"invariant={c['invariant_ok']})"
                        )
                    return 1
        elif exp == "failover":
            import json as _json

            cells = [
                harness.run_failover(
                    ds,
                    ops=args.ops,
                    workers=max(args.workers),
                    query_rate=args.query_rate,
                    seed=args.seed,
                    max_batch=max(1, args.batch // 16),
                    replicas=args.replicas,
                    ship_lag=args.ship_lag,
                    primary_crash_rate=args.primary_crash_rate,
                    primary_crashes=args.primary_crashes,
                    crash_rate=args.crash_rate,
                    stall_rate=args.stall_rate,
                    timeout_rate=args.timeout_rate,
                    max_crashes=args.max_crashes,
                )
                for ds in args.datasets
            ]
            for cell in cells:
                print(f"\n--- {cell['dataset']} ---")
                print(render_failover(cell))
            if args.json:
                slim = [
                    {k: v for k, v in c.items() if k != "replication"}
                    | {"replication": {
                        k: v for k, v in c["replication"].items()
                        if k != "replicas"
                    }}
                    for c in cells
                ]
                with open(args.json, "w", encoding="utf-8") as fh:
                    _json.dump(slim, fh, indent=2)
                print(f"wrote {args.json}")
            if args.assert_failover:
                bad = [c for c in cells if not c["ok"]]
                if bad:
                    for c in bad:
                        v = c["verdicts"]
                        print(
                            f"!! {c['dataset']}: failover run FAILED "
                            f"(zero_loss={v['zero_loss']} "
                            f"divergence_bounded={v['divergence_bounded']} "
                            f"promotions_verified={v['promotions_verified']} "
                            f"final_state={v['final_state_ok']} "
                            f"deterministic={v['determinism_ok']})"
                        )
                    return 1
        elif exp == "representation":
            import json as _json

            cells = [
                harness.run_representation(
                    ds,
                    batch_size=args.batch,
                    seed=args.seed,
                    repeats=args.repeats,
                )
                for ds in args.datasets
            ]
            rows = [
                {
                    "dataset": c["dataset"],
                    "n": c["n"],
                    "m": c["m"],
                    "dict decomp (s)": round(c["dict_decomp_s"], 4),
                    "array decomp (s)": round(c["array_decomp_s"], 4),
                    "decomp x": round(c["decomp_speedup"], 2),
                    "dict maint (s)": round(c["dict_maint_s"], 4),
                    "array maint (s)": round(c["array_maint_s"], 4),
                    "maint x": round(c["maint_speedup"], 2),
                    "speedup": round(c["speedup"], 2),
                }
                for c in cells
            ]
            print(render_table(rows))
            if args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    _json.dump(cells, fh, indent=2)
                print(f"wrote {args.json}")
            if args.assert_speedup is not None:
                slow = [
                    c for c in cells if c["speedup"] < args.assert_speedup
                ]
                if slow:
                    for c in slow:
                        print(
                            f"!! {c['dataset']}: array-over-dict speedup "
                            f"{c['speedup']:.2f} < {args.assert_speedup}"
                        )
                    return 1
        elif exp == "scheduling":
            import json as _json

            cells = [
                harness.run_scheduling(
                    ds,
                    batch_size=args.batch,
                    workers=max(args.workers),
                    hubs=args.hubs,
                    seed=args.seed,
                    thread_repeats=args.repeats,
                )
                for ds in args.datasets
            ]
            rows = []
            for c in cells:
                for policy, r in c["policies"].items():
                    rows.append(
                        {
                            "dataset": c["dataset"],
                            "policy": policy,
                            "makespan": round(r["makespan"], 1),
                            "lock fails": (
                                r["remove"]["lock_failures"]
                                + r["insert"]["lock_failures"]
                            ),
                            "contended": round(
                                r["remove"]["contended_time"]
                                + r["insert"]["contended_time"], 1
                            ),
                            "waves": r["insert"]["num_waves"],
                            "thread (s)": round(r["thread_wall_s"], 4),
                            "vs fifo": round(r["speedup_vs_fifo"], 2),
                        }
                    )
            print(render_table(rows))
            if args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    _json.dump(cells, fh, indent=2)
                print(f"wrote {args.json}")
            if args.assert_speedup is not None:
                slow = [
                    c for c in cells if c["speedup"] < args.assert_speedup
                ]
                if slow:
                    for c in slow:
                        print(
                            f"!! {c['dataset']}: conflict-aware-over-fifo "
                            f"speedup {c['speedup']:.2f} < {args.assert_speedup}"
                        )
                    return 1
        elif exp == "sharding":
            import json as _json

            cell = harness.run_sharding(
                num_vertices=args.vertices,
                ops=args.shard_ops,
                shards=args.shards,
                repeats=args.repeats,
                seed=args.seed,
            )
            print(render_sharding(cell))
            if args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    _json.dump(cell, fh, indent=2)
                print(f"wrote {args.json}")
            if not cell["ok"]:
                print("!! sharding: bit-identity or crash recovery failed")
                return 1
            if (args.assert_speedup is not None
                    and cell["speedup"] < args.assert_speedup):
                print(
                    f"!! sharding: process@{cell['shards']} speedup "
                    f"{cell['speedup']:.2f} < {args.assert_speedup}"
                )
                return 1
        elif exp == "queryplane":
            import json as _json

            cell = harness.run_queryplane(
                num_vertices=args.qp_vertices,
                queries=args.queries,
                update_rate=args.update_rate,
                readers=tuple(args.reader_counts),
                frame=args.frame,
                seed=args.seed,
                repeats=args.repeats,
                recovery=not args.no_recovery,
            )
            print(render_queryplane(cell))
            if args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    _json.dump(cell, fh, indent=2)
                print(f"wrote {args.json}")
            if not cell["ok"]:
                print("!! queryplane: bit-identity or recovery failed")
                return 1
            if (args.assert_speedup is not None
                    and cell["speedup"] < args.assert_speedup):
                print(
                    f"!! queryplane: {max(args.reader_counts)}-reader "
                    f"speedup {cell['speedup']:.2f} < {args.assert_speedup}"
                )
                return 1
        elif exp == "traffic":
            import json as _json

            from repro.traffic import SHAPES

            if args.traces:
                cells = [
                    harness.run_traffic(
                        "uniform",  # overridden by the trace header
                        trace_path=path,
                        workers=max(args.workers),
                        seed=args.seed,
                        verify_boundaries=not args.no_boundary_verify,
                    )
                    for path in args.traces
                ]
            else:
                cells = [
                    harness.run_traffic(
                        shape,
                        ops=args.traffic_ops,
                        vertices=args.traffic_vertices,
                        workers=max(args.workers),
                        seed=args.seed,
                        verify_boundaries=not args.no_boundary_verify,
                    )
                    for shape in (args.shapes or SHAPES)
                ]
            for cell in cells:
                print(f"\n--- {cell['shape']} ---")
                print(render_traffic(cell))
            if args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    _json.dump(cells, fh, indent=2)
                print(f"wrote {args.json}")
            bad = [c for c in cells if not c["ok"]]
            if bad:
                for c in bad:
                    print(
                        f"!! {c['shape']}: traffic run FAILED "
                        f"(invariant={c['invariant_ok']} "
                        f"deterministic={c['determinism_ok']} "
                        f"boundaries={c['boundaries_ok']} "
                        f"engine_mode={c['engine_mode_ok']})"
                    )
                return 1
            if args.assert_hit_rate is not None:
                slow = [
                    c for c in cells
                    if c["shape"] != "overload"
                    and c["slo"].get("update", {}).get("hit_rate", 1.0)
                    < args.assert_hit_rate
                ]
                if slow:
                    for c in slow:
                        print(
                            f"!! {c['shape']}: update hit-rate "
                            f"{c['slo']['update']['hit_rate']:.3f} "
                            f"< {args.assert_hit_rate}"
                        )
                    return 1
        elif exp == "fig7":
            out = harness.fig7_stability(
                args.datasets[:2],
                groups=4,
                batch_size=max(20, args.batch // 2),
                workers=max(args.workers),
                seed=args.seed,
            )
            for ds, algos in out.items():
                print(f"\n--- {ds} ---")
                for algo, cell in algos.items():
                    print(
                        f"{algo}: insert spread {cell['insert_rel_spread']:.2f} "
                        f"remove spread {cell['remove_rel_spread']:.2f}"
                    )
    return 0


def main(argv: List[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if not args.profile:
        return _run(args)
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        rc = _run(args)
    finally:
        prof.disable()
        print("\n=== profile (top 25 by cumulative time) ===")
        pstats.Stats(prof, stream=sys.stdout).sort_stats(
            "cumulative"
        ).print_stats(25)
    return rc


if __name__ == "__main__":
    sys.exit(main())
