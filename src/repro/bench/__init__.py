"""Benchmark harness regenerating the paper's evaluation.

* :mod:`repro.bench.workloads` — batch samplers (random sample for static
  graphs, latest window for temporal ones) following Section 5.2's
  protocol: the sampled edges are *first removed and then inserted*.
* :mod:`repro.bench.harness`  — experiment runners for every table and
  figure (Table 1, Figures 3-7, Table 2) plus the ablations.
* :mod:`repro.bench.reporting` — ASCII table/series renderers used by the
  ``benchmarks/`` suite and the EXPERIMENTS.md generator.
"""

from repro.bench.harness import (
    ALGORITHMS,
    fig3_core_distributions,
    fig4_running_time,
    fig5_locked_vertices,
    fig6_scalability,
    fig7_stability,
    run_remove_insert,
    table1_datasets,
    table2_speedups,
)
from repro.bench.workloads import sample_batch
from repro.bench.reporting import render_series, render_table

__all__ = [
    "ALGORITHMS",
    "run_remove_insert",
    "table1_datasets",
    "fig3_core_distributions",
    "fig4_running_time",
    "table2_speedups",
    "fig5_locked_vertices",
    "fig6_scalability",
    "fig7_stability",
    "sample_batch",
    "render_table",
    "render_series",
]
